//! Property-based tests for the statistics substrate.

use flower_stats::{
    correlation::{best_lag, pearson, spearman},
    descriptive::{mean, percentile, variance_sample},
    regression::SimpleOls,
    timeseries::{Agg, TimeSeries},
    Matrix,
};
use flower_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, len)
}

proptest! {
    #[test]
    fn pearson_is_bounded_and_symmetric(
        pair in finite_vec(3..50).prop_flat_map(|x| {
            let n = x.len();
            (Just(x), finite_vec(n..n + 1))
        })
    ) {
        let (x, y) = pair;
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&y, &x).unwrap();
            prop_assert!((r - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_invariant_to_affine_transform(x in finite_vec(4..40), a in 0.1..10.0f64, b in -100.0..100.0f64) {
        let y: Vec<f64> = x.iter().map(|&v| a * v + b).collect();
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {}", r);
        }
    }

    #[test]
    fn spearman_bounded(
        pair in finite_vec(3..30).prop_flat_map(|x| {
            let n = x.len();
            (Just(x), finite_vec(n..n + 1))
        })
    ) {
        let (x, y) = pair;
        if let Ok(rho) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        }
    }

    #[test]
    fn ols_residuals_orthogonal_to_regressor(
        pair in finite_vec(3..60).prop_flat_map(|x| {
            let n = x.len();
            (Just(x), finite_vec(n..n + 1))
        })
    ) {
        let (x, y) = pair;
        if let Ok(fit) = SimpleOls::fit(&x, &y) {
            // Normal equations: residuals sum to ~0 and are orthogonal to x.
            let resid: Vec<f64> = x.iter().zip(&y).map(|(&xi, &yi)| yi - fit.predict(xi)).collect();
            let scale = y.iter().map(|v| v.abs()).fold(1.0, f64::max);
            let sum: f64 = resid.iter().sum();
            prop_assert!(sum.abs() / (scale * x.len() as f64) < 1e-6);
            let dot: f64 = resid.iter().zip(&x).map(|(r, xi)| r * xi).sum();
            let xscale = x.iter().map(|v| v.abs()).fold(1.0, f64::max);
            prop_assert!(dot.abs() / (scale * xscale * x.len() as f64) < 1e-6);
            prop_assert!(fit.r_squared <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn mean_is_between_min_and_max(x in finite_vec(1..50)) {
        let m = mean(&x).unwrap();
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_is_nonnegative(x in finite_vec(2..50)) {
        prop_assert!(variance_sample(&x).unwrap() >= -1e-9);
    }

    #[test]
    fn percentile_monotone(x in finite_vec(1..50), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&x, lo).unwrap();
        let b = percentile(&x, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn solve_then_multiply_roundtrips(
        entries in prop::collection::vec(-10.0..10.0f64, 9),
        b in prop::collection::vec(-10.0..10.0f64, 3)
    ) {
        let m = Matrix::from_rows(&[
            entries[0..3].to_vec(),
            entries[3..6].to_vec(),
            entries[6..9].to_vec(),
        ]);
        if let Ok(x) = m.solve(&b) {
            // Verify A·x ≈ b.
            let xm = Matrix::column(&x);
            let prod = m.matmul(&xm);
            for i in 0..3 {
                prop_assert!((prod[(i, 0)] - b[i]).abs() < 1e-6,
                    "row {} mismatch: {} vs {}", i, prod[(i, 0)], b[i]);
            }
        }
    }

    #[test]
    fn resample_sum_preserves_total(vals in finite_vec(1..40)) {
        let ts = TimeSeries::from_points(
            vals.iter().enumerate()
                .map(|(i, &v)| (SimTime::from_secs(i as u64 * 13), v))
                .collect()
        );
        let resampled = ts.resample(SimDuration::from_secs(60), Agg::Sum);
        let total: f64 = vals.iter().sum();
        let rtotal: f64 = resampled.values().iter().sum();
        let scale = vals.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((total - rtotal).abs() / scale < 1e-9);
    }

    #[test]
    fn ewma_stays_within_value_range(vals in finite_vec(1..40), alpha in 0.01..1.0f64) {
        let ts = TimeSeries::from_points(
            vals.iter().enumerate()
                .map(|(i, &v)| (SimTime::from_secs(i as u64), v))
                .collect()
        );
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in ts.ewma(alpha).values() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn best_lag_on_shifted_copy_finds_shift(shift in 1usize..5) {
        // Deterministic pseudo-random base series.
        let base: Vec<f64> = (0..120u64)
            .map(|i| ((i * 2654435761) % 1000) as f64)
            .collect();
        let n = base.len() - shift;
        let x: Vec<f64> = base[..n].to_vec();
        let y: Vec<f64> = base[shift..shift + n].to_vec();
        // y[t] = base[t+shift] = x[t+shift] → best lag is -shift.
        let (lag, r) = best_lag(&x, &y, 8).unwrap();
        prop_assert_eq!(lag, -(shift as i64));
        prop_assert!(r > 0.99);
    }
}
