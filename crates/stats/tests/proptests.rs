// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Property-based tests for the statistics substrate, driven by the
//! deterministic `testkit` harness (seeded cases, reproducible replay).

use flower_sim::testkit::{forall, vec_f64};
use flower_sim::{SimDuration, SimTime};
use flower_stats::{
    correlation::{best_lag, pearson, spearman},
    descriptive::{mean, percentile, variance_sample},
    regression::SimpleOls,
    timeseries::{Agg, TimeSeries},
    Matrix,
};

#[test]
fn pearson_is_bounded_and_symmetric() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 3, 49);
        let y = vec_f64(rng, -1e6, 1e6, x.len(), x.len());
        if let Ok(r) = pearson(&x, &y) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&y, &x).expect("symmetric call succeeds");
            assert!((r - r2).abs() < 1e-9);
        }
    });
}

#[test]
fn pearson_invariant_to_affine_transform() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 4, 39);
        let a = rng.uniform(0.1, 10.0);
        let b = rng.uniform(-100.0, 100.0);
        let y: Vec<f64> = x.iter().map(|&v| a * v + b).collect();
        if let Ok(r) = pearson(&x, &y) {
            assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    });
}

#[test]
fn spearman_bounded() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 3, 29);
        let y = vec_f64(rng, -1e6, 1e6, x.len(), x.len());
        if let Ok(rho) = spearman(&x, &y) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        }
    });
}

#[test]
fn ols_residuals_orthogonal_to_regressor() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 3, 59);
        let y = vec_f64(rng, -1e6, 1e6, x.len(), x.len());
        if let Ok(fit) = SimpleOls::fit(&x, &y) {
            // Normal equations: residuals sum to ~0 and are orthogonal to x.
            let resid: Vec<f64> = x
                .iter()
                .zip(&y)
                .map(|(&xi, &yi)| yi - fit.predict(xi))
                .collect();
            let scale = y.iter().map(|v| v.abs()).fold(1.0, f64::max);
            let sum: f64 = resid.iter().sum();
            assert!(sum.abs() / (scale * x.len() as f64) < 1e-6);
            let dot: f64 = resid.iter().zip(&x).map(|(r, xi)| r * xi).sum();
            let xscale = x.iter().map(|v| v.abs()).fold(1.0, f64::max);
            assert!(dot.abs() / (scale * xscale * x.len() as f64) < 1e-6);
            assert!(fit.r_squared <= 1.0 + 1e-9);
        }
    });
}

#[test]
fn mean_is_between_min_and_max() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 1, 49);
        let m = mean(&x).expect("non-empty input");
        let lo = x.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    });
}

#[test]
fn variance_is_nonnegative() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 2, 49);
        assert!(variance_sample(&x).expect("n >= 2") >= -1e-9);
    });
}

#[test]
fn percentile_monotone() {
    forall(128, |rng| {
        let x = vec_f64(rng, -1e6, 1e6, 1, 49);
        let p1 = rng.uniform(0.0, 100.0);
        let p2 = rng.uniform(0.0, 100.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&x, lo).expect("valid percentile");
        let b = percentile(&x, hi).expect("valid percentile");
        assert!(a <= b + 1e-9);
    });
}

#[test]
fn solve_then_multiply_roundtrips() {
    forall(128, |rng| {
        let entries = vec_f64(rng, -10.0, 10.0, 9, 9);
        let b = vec_f64(rng, -10.0, 10.0, 3, 3);
        let m = Matrix::from_rows(&[
            entries[0..3].to_vec(),
            entries[3..6].to_vec(),
            entries[6..9].to_vec(),
        ]);
        if let Ok(x) = m.solve(&b) {
            // Verify A·x ≈ b.
            let xm = Matrix::column(&x);
            let prod = m.matmul(&xm);
            for i in 0..3 {
                assert!(
                    (prod[(i, 0)] - b[i]).abs() < 1e-6,
                    "row {i} mismatch: {} vs {}",
                    prod[(i, 0)],
                    b[i]
                );
            }
        }
    });
}

#[test]
fn resample_sum_preserves_total() {
    forall(128, |rng| {
        let vals = vec_f64(rng, -1e6, 1e6, 1, 39);
        let ts = TimeSeries::from_points(
            vals.iter()
                .enumerate()
                .map(|(i, &v)| (SimTime::from_secs(i as u64 * 13), v))
                .collect(),
        );
        let resampled = ts.resample(SimDuration::from_secs(60), Agg::Sum);
        let total: f64 = vals.iter().sum();
        let rtotal: f64 = resampled.values().iter().sum();
        let scale = vals.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        assert!((total - rtotal).abs() / scale < 1e-9);
    });
}

#[test]
fn ewma_stays_within_value_range() {
    forall(128, |rng| {
        let vals = vec_f64(rng, -1e6, 1e6, 1, 39);
        let alpha = rng.uniform(0.01, 1.0);
        let ts = TimeSeries::from_points(
            vals.iter()
                .enumerate()
                .map(|(i, &v)| (SimTime::from_secs(i as u64), v))
                .collect(),
        );
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in ts.ewma(alpha).values() {
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    });
}

#[test]
fn best_lag_on_shifted_copy_finds_shift() {
    for shift in 1usize..5 {
        // Deterministic pseudo-random base series.
        let base: Vec<f64> = (0..120u64)
            .map(|i| ((i * 2654435761) % 1000) as f64)
            .collect();
        let n = base.len() - shift;
        let x: Vec<f64> = base[..n].to_vec();
        let y: Vec<f64> = base[shift..shift + n].to_vec();
        // y[t] = base[t+shift] = x[t+shift] → best lag is -shift.
        let (lag, r) = best_lag(&x, &y, 8).expect("enough overlap");
        assert_eq!(lag, -(shift as i64));
        assert!(r > 0.99);
    }
}
