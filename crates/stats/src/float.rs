//! Total-order and tolerance helpers for `f64` comparisons.
//!
//! The flower-lint pass (`cargo xtask lint`) forbids `==`/`!=` against
//! float literals and `partial_cmp(..).unwrap()` in library crates:
//! bitwise float equality silently misfires after any rounding, and
//! `partial_cmp` panics the moment a NaN sneaks into a comparator.
//! These helpers are the sanctioned replacements. Exact-zero *sentinel*
//! checks (a value that is zero by construction, never by arithmetic)
//! may instead carry a justified `lint:allow(float-eq-typed)`.

/// Relative-plus-absolute tolerance equality.
///
/// Two values are approximately equal when they differ by at most
/// `tol` absolutely, or by `tol` relative to the larger magnitude.
/// NaN is equal to nothing, including itself.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        // Before the total_cmp fast path: total order ranks two NaNs
        // with the same bit pattern as equal, but approx_eq must not.
        return false;
    }
    if a.total_cmp(&b).is_eq() {
        // Bitwise fast path; also covers equal infinities.
        return true;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

/// Whether `x` is within `tol` of zero. The guard to use before
/// dividing by a computed quantity (variance, span, determinant).
#[must_use]
pub fn near_zero(x: f64, tol: f64) -> bool {
    x.abs() <= tol
}

/// Default tolerance used by the crate's own degenerate-denominator
/// guards: comfortably above f64 rounding noise for O(1)-scaled data,
/// far below any statistically meaningful variance.
pub const DEFAULT_TOL: f64 = 1e-12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-12));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-12));
    }

    #[test]
    fn approx_eq_is_relative_for_large_values() {
        assert!(approx_eq(1e15, 1e15 + 1.0, 1e-12));
        assert!(!approx_eq(1e15, 1.001e15, 1e-12));
    }

    #[test]
    fn nan_equals_nothing() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
    }

    #[test]
    fn near_zero_basic() {
        assert!(near_zero(0.0, DEFAULT_TOL));
        assert!(near_zero(-1e-13, DEFAULT_TOL));
        assert!(!near_zero(1e-6, DEFAULT_TOL));
        assert!(!near_zero(f64::NAN, DEFAULT_TOL), "NaN is not near zero");
    }
}
