//! A `(time, value)` series with the transformations the dependency
//! analyzer and sensors need: rolling windows, EWMA smoothing, periodic
//! resampling, and alignment of two series onto a shared clock (required
//! before cross-layer correlation/regression, since different services
//! publish metrics on different cadences).

use flower_sim::{SimDuration, SimTime};

use crate::descriptive;
use crate::StatsError;

/// How to aggregate datapoints that fall into the same resample bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Arithmetic mean of the bucket.
    Mean,
    /// Sum of the bucket.
    Sum,
    /// Minimum of the bucket.
    Min,
    /// Maximum of the bucket.
    Max,
    /// Last value in the bucket (sample-and-hold semantics).
    Last,
    /// Number of datapoints in the bucket.
    Count,
}

fn aggregate(values: &[f64], agg: Agg) -> f64 {
    match agg {
        Agg::Mean => descriptive::mean(values).unwrap_or(f64::NAN),
        Agg::Sum => values.iter().sum(),
        Agg::Min => descriptive::min(values).unwrap_or(f64::NAN),
        Agg::Max => descriptive::max(values).unwrap_or(f64::NAN),
        Agg::Last => values.last().copied().unwrap_or(f64::NAN),
        Agg::Count => values.len() as f64,
    }
}

/// A time-ordered series of `(SimTime, f64)` observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> TimeSeries {
        TimeSeries { points: Vec::new() }
    }

    /// Build from points, which must be in non-decreasing time order.
    pub fn from_points(points: Vec<(SimTime, f64)>) -> TimeSeries {
        assert!(
            points
                .iter()
                .zip(points.iter().skip(1))
                .all(|(a, b)| a.0 <= b.0),
            "time series points must be time-ordered"
        );
        TimeSeries { points }
    }

    /// Append an observation; time must not go backwards.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time went backwards: {last} then {t}");
        }
        self.points.push((t, value));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow the raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Just the values, in time order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Just the timestamps, in order.
    pub fn times(&self) -> Vec<SimTime> {
        self.points.iter().map(|&(t, _)| t).collect()
    }

    /// The sub-series with `from <= t < to`.
    pub fn window(&self, from: SimTime, to: SimTime) -> TimeSeries {
        let pts = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .copied()
            .collect();
        TimeSeries { points: pts }
    }

    /// The sub-series covering the last `span` before `now`
    /// (`now − span <= t < now`) — exactly a sensor's monitoring window.
    pub fn last_window(&self, now: SimTime, span: SimDuration) -> TimeSeries {
        self.window(now - span, now)
    }

    /// Resample onto a fixed `period` grid (buckets aligned at multiples
    /// of `period`), aggregating each bucket with `agg`. Empty buckets
    /// are omitted.
    pub fn resample(&self, period: SimDuration, agg: Agg) -> TimeSeries {
        assert!(!period.is_zero(), "resample period must be non-zero");
        let mut out = Vec::new();
        let mut bucket_start: Option<SimTime> = None;
        let mut bucket_vals: Vec<f64> = Vec::new();
        for &(t, v) in &self.points {
            let b = t.align_down(period);
            match bucket_start {
                Some(cur) if cur == b => bucket_vals.push(v),
                Some(cur) => {
                    out.push((cur, aggregate(&bucket_vals, agg)));
                    bucket_vals.clear();
                    bucket_vals.push(v);
                    bucket_start = Some(b);
                }
                None => {
                    bucket_start = Some(b);
                    bucket_vals.push(v);
                }
            }
        }
        if let Some(cur) = bucket_start {
            out.push((cur, aggregate(&bucket_vals, agg)));
        }
        TimeSeries { points: out }
    }

    /// Exponentially weighted moving average with smoothing factor
    /// `alpha ∈ (0, 1]` (1 = no smoothing).
    pub fn ewma(&self, alpha: f64) -> TimeSeries {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        let mut out = Vec::with_capacity(self.points.len());
        let mut state: Option<f64> = None;
        for &(t, v) in &self.points {
            let s = match state {
                None => v,
                Some(prev) => alpha * v + (1.0 - alpha) * prev,
            };
            state = Some(s);
            out.push((t, s));
        }
        TimeSeries { points: out }
    }

    /// Rolling mean over a count window of `k` observations (output point
    /// `i` averages points `i−k+1 ..= i`, truncated at the start).
    pub fn rolling_mean(&self, k: usize) -> TimeSeries {
        assert!(k > 0, "window size must be positive");
        let mut out = Vec::with_capacity(self.points.len());
        let mut sum = 0.0;
        for (i, &(t, v)) in self.points.iter().enumerate() {
            sum += v;
            if i >= k {
                sum -= self.points[i - k].1;
            }
            let denom = (i + 1).min(k) as f64;
            out.push((t, sum / denom));
        }
        TimeSeries { points: out }
    }

    /// First difference: `out[i] = v[i+1] − v[i]`, timestamped at the
    /// later point.
    pub fn diff(&self) -> TimeSeries {
        let pts = self
            .points
            .iter()
            .zip(self.points.iter().skip(1))
            .map(|(&(_, prev), &(t, next))| (t, next - prev))
            .collect();
        TimeSeries { points: pts }
    }

    /// Scale every value by `factor`.
    pub fn scale(&self, factor: f64) -> TimeSeries {
        TimeSeries {
            points: self.points.iter().map(|&(t, v)| (t, v * factor)).collect(),
        }
    }

    /// Align two series onto the intersection of their resampled clocks:
    /// both are bucketed at `period` with `agg`, and only buckets present
    /// in *both* are returned, as `(bucket_time, value_a, value_b)`.
    ///
    /// This is the preprocessing step before any cross-layer regression:
    /// Kinesis and the Storm cluster publish on different cadences, so raw
    /// samples never share timestamps.
    pub fn align(
        a: &TimeSeries,
        b: &TimeSeries,
        period: SimDuration,
        agg: Agg,
    ) -> Vec<(SimTime, f64, f64)> {
        let ra = a.resample(period, agg);
        let rb = b.resample(period, agg);
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < ra.points.len() && j < rb.points.len() {
            let (ta, va) = ra.points[i];
            let (tb, vb) = rb.points[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Equal => {
                    out.push((ta, va, vb));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        out
    }

    /// Summary statistics of the values; errors on an empty series.
    pub fn summary(&self) -> Result<descriptive::Summary, StatsError> {
        descriptive::Summary::of(&self.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(points: &[(u64, f64)]) -> TimeSeries {
        TimeSeries::from_points(
            points
                .iter()
                .map(|&(s, v)| (SimTime::from_secs(s), v))
                .collect(),
        )
    }

    #[test]
    fn push_maintains_order() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(1), 1.0);
        s.push(SimTime::from_secs(1), 2.0); // equal time allowed
        s.push(SimTime::from_secs(2), 3.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn push_rejects_time_travel() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(5), 1.0);
        s.push(SimTime::from_secs(4), 2.0);
    }

    #[test]
    #[should_panic(expected = "must be time-ordered")]
    fn from_points_rejects_disorder() {
        ts(&[(2, 1.0), (1, 2.0)]);
    }

    #[test]
    fn window_is_half_open() {
        let s = ts(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        let w = s.window(SimTime::from_secs(10), SimTime::from_secs(30));
        assert_eq!(w.values(), vec![2.0, 3.0]);
    }

    #[test]
    fn last_window_takes_recent_span() {
        let s = ts(&[(0, 1.0), (30, 2.0), (60, 3.0), (90, 4.0)]);
        let w = s.last_window(SimTime::from_secs(100), SimDuration::from_secs(60));
        assert_eq!(w.values(), vec![3.0, 4.0]);
    }

    #[test]
    fn resample_mean_and_sum() {
        let s = ts(&[(0, 1.0), (30, 3.0), (60, 10.0), (61, 20.0), (150, 5.0)]);
        let m = s.resample(SimDuration::from_secs(60), Agg::Mean);
        assert_eq!(
            m.points(),
            &[
                (SimTime::ZERO, 2.0),
                (SimTime::from_secs(60), 15.0),
                (SimTime::from_secs(120), 5.0)
            ]
        );
        let sm = s.resample(SimDuration::from_secs(60), Agg::Sum);
        assert_eq!(sm.values(), vec![4.0, 30.0, 5.0]);
        let c = s.resample(SimDuration::from_secs(60), Agg::Count);
        assert_eq!(c.values(), vec![2.0, 2.0, 1.0]);
        let mn = s.resample(SimDuration::from_secs(60), Agg::Min);
        assert_eq!(mn.values(), vec![1.0, 10.0, 5.0]);
        let mx = s.resample(SimDuration::from_secs(60), Agg::Max);
        assert_eq!(mx.values(), vec![3.0, 20.0, 5.0]);
        let l = s.resample(SimDuration::from_secs(60), Agg::Last);
        assert_eq!(l.values(), vec![3.0, 20.0, 5.0]);
    }

    #[test]
    fn resample_empty_is_empty() {
        let s = TimeSeries::new();
        assert!(s.resample(SimDuration::from_secs(60), Agg::Mean).is_empty());
    }

    #[test]
    fn ewma_smooths_and_converges() {
        let s = ts(&[(0, 0.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
        let e = s.ewma(0.5);
        let vals = e.values();
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[1], 5.0);
        assert_eq!(vals[2], 7.5);
        assert_eq!(vals[3], 8.75);
        // alpha = 1 is identity.
        assert_eq!(s.ewma(1.0).values(), s.values());
    }

    #[test]
    fn rolling_mean_truncates_at_start() {
        let s = ts(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        let r = s.rolling_mean(2);
        assert_eq!(r.values(), vec![1.0, 1.5, 2.5, 3.5]);
        let r3 = s.rolling_mean(3);
        assert_eq!(r3.values(), vec![1.0, 1.5, 2.0, 3.0]);
    }

    #[test]
    fn diff_produces_deltas() {
        let s = ts(&[(0, 1.0), (1, 4.0), (2, 2.0)]);
        let d = s.diff();
        assert_eq!(d.values(), vec![3.0, -2.0]);
        assert_eq!(
            d.times(),
            vec![SimTime::from_secs(1), SimTime::from_secs(2)]
        );
    }

    #[test]
    fn scale_multiplies_values() {
        let s = ts(&[(0, 1.0), (1, -2.0)]);
        assert_eq!(s.scale(3.0).values(), vec![3.0, -6.0]);
    }

    #[test]
    fn align_intersects_buckets() {
        let a = ts(&[(0, 1.0), (60, 2.0), (120, 3.0)]);
        let b = ts(&[(65, 20.0), (125, 30.0), (185, 40.0)]);
        let aligned = TimeSeries::align(&a, &b, SimDuration::from_secs(60), Agg::Mean);
        assert_eq!(
            aligned,
            vec![
                (SimTime::from_secs(60), 2.0, 20.0),
                (SimTime::from_secs(120), 3.0, 30.0)
            ]
        );
    }

    #[test]
    fn align_disjoint_is_empty() {
        let a = ts(&[(0, 1.0)]);
        let b = ts(&[(600, 2.0)]);
        assert!(TimeSeries::align(&a, &b, SimDuration::from_secs(60), Agg::Mean).is_empty());
    }

    #[test]
    fn summary_errors_on_empty() {
        assert!(TimeSeries::new().summary().is_err());
        let s = ts(&[(0, 2.0), (1, 4.0)]);
        let sum = s.summary().unwrap();
        assert_eq!(sum.count, 2);
        assert!((sum.mean - 3.0).abs() < 1e-12);
    }
}
