//! Online (recursive) least squares.
//!
//! The quasi-adaptive baseline controller the paper compares against
//! [Padala et al., *Adaptive control of virtualized resources in utility
//! computing environments*, 2007] estimates a low-order linear model of
//! the controlled system *online* and re-derives its control gain from the
//! current estimate each step. This module provides the standard RLS
//! estimator with exponential forgetting that such a controller needs.

use crate::matrix::Matrix;

/// Recursive least squares estimator for `y = θᵀx` with forgetting
/// factor `λ ∈ (0, 1]` (1 = ordinary RLS, smaller = faster forgetting).
#[derive(Debug, Clone)]
pub struct RecursiveLeastSquares {
    theta: Vec<f64>,
    /// Inverse covariance matrix `P`.
    p: Matrix,
    lambda: f64,
    updates: u64,
}

impl RecursiveLeastSquares {
    /// Create an estimator of dimension `dim` with the given forgetting
    /// factor. `P` is initialized to `delta·I`; a large `delta` (e.g.
    /// 1000) means "no confidence in the zero prior".
    pub fn new(dim: usize, lambda: f64, delta: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        assert!(delta > 0.0, "delta must be positive");
        let mut p = Matrix::zeros(dim, dim);
        for i in 0..dim {
            p[(i, i)] = delta;
        }
        RecursiveLeastSquares {
            theta: vec![0.0; dim],
            p,
            lambda,
            updates: 0,
        }
    }

    /// Current parameter estimate θ.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Number of updates folded so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Predicted output for regressor vector `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.theta.len(), "regressor dimension mismatch");
        x.iter().zip(&self.theta).map(|(a, b)| a * b).sum()
    }

    /// Fold one observation `(x, y)` and return the *a-priori* prediction
    /// error `y − θᵀx` (before the update).
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        let n = self.theta.len();
        assert_eq!(x.len(), n, "regressor dimension mismatch");
        // Px = P · x
        let mut px = vec![0.0; n];
        for (i, pxi) in px.iter_mut().enumerate() {
            for (j, &xj) in x.iter().enumerate() {
                *pxi += self.p[(i, j)] * xj;
            }
        }
        // denom = λ + xᵀ P x
        let denom = self.lambda + x.iter().zip(&px).map(|(a, b)| a * b).sum::<f64>();
        // Gain k = Px / denom
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();
        let err = y - self.predict(x);
        for (theta_i, &ki) in self.theta.iter_mut().zip(&k) {
            *theta_i += ki * err;
        }
        // P ← (P − k·(Px)ᵀ) / λ
        for (i, &ki) in k.iter().enumerate() {
            for (j, &pxj) in px.iter().enumerate() {
                let v = (self.p[(i, j)] - ki * pxj) / self.lambda;
                self.p[(i, j)] = v;
            }
        }
        self.updates += 1;
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_sim::SimRng;

    #[test]
    fn converges_to_true_parameters() {
        let mut rls = RecursiveLeastSquares::new(2, 1.0, 1_000.0);
        let mut rng = SimRng::seed(1);
        for _ in 0..500 {
            let x = [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)];
            let y = 3.0 * x[0] - 2.0 * x[1] + rng.normal(0.0, 0.01);
            rls.update(&x, y);
        }
        assert!(
            (rls.theta()[0] - 3.0).abs() < 0.02,
            "theta={:?}",
            rls.theta()
        );
        assert!(
            (rls.theta()[1] + 2.0).abs() < 0.02,
            "theta={:?}",
            rls.theta()
        );
        assert_eq!(rls.updates(), 500);
    }

    #[test]
    fn forgetting_tracks_parameter_drift() {
        let mut rls = RecursiveLeastSquares::new(1, 0.95, 1_000.0);
        let mut rng = SimRng::seed(2);
        // First regime: slope 1.
        for _ in 0..200 {
            let x = [rng.uniform(0.5, 1.5)];
            rls.update(&x, x[0]);
        }
        assert!((rls.theta()[0] - 1.0).abs() < 0.05);
        // Second regime: slope 5; with forgetting it should re-converge.
        for _ in 0..200 {
            let x = [rng.uniform(0.5, 1.5)];
            rls.update(&x, 5.0 * x[0]);
        }
        assert!(
            (rls.theta()[0] - 5.0).abs() < 0.1,
            "theta={:?}",
            rls.theta()
        );
    }

    #[test]
    fn prediction_error_shrinks() {
        let mut rls = RecursiveLeastSquares::new(1, 1.0, 100.0);
        let mut first_err = 0.0;
        let mut last_err = 0.0;
        for i in 0..100 {
            let x = [1.0 + (i % 7) as f64];
            let e = rls.update(&x, 4.0 * x[0]).abs();
            if i == 0 {
                first_err = e;
            }
            last_err = e;
        }
        assert!(
            last_err < first_err * 0.01,
            "first={first_err}, last={last_err}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut rls = RecursiveLeastSquares::new(2, 1.0, 10.0);
        rls.update(&[1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0, 1]")]
    fn invalid_lambda_panics() {
        RecursiveLeastSquares::new(1, 1.5, 10.0);
    }
}
