//! A small dense row-major matrix with just enough linear algebra for
//! normal-equation least squares: multiply, transpose, and a Gaussian
//! elimination solver with partial pivoting (plus inversion, used for
//! coefficient covariance in regression diagnostics).
//!
//! The dependency-analysis problems in Flower involve a handful of
//! regressors, so an O(n³) dense solver is the right tool — no external
//! linear-algebra crate needed.

use crate::StatsError;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from rows; every row must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows.first().map_or(0, Vec::len);
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Column vector from a slice.
    pub fn column(values: &[f64]) -> Matrix {
        assert!(!values.is_empty(), "column vector needs at least one entry");
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "shape mismatch: ({}, {}) · ({}, {})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // lint:allow(float-eq-typed): exact-zero sparsity fast path — skips only true zeros, bit-identical results
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Solve `A · x = b` for `x` via Gaussian elimination with partial
    /// pivoting, where `A` is `self` (must be square) and `b` is a column
    /// vector of matching height.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: find the largest |entry| at or below the
            // diagonal.
            #[allow(clippy::expect_used)] // invariant stated in the expect message
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
                .expect("col..n is non-empty because col < n");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 {
                return Err(StatsError::SingularSystem);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                // lint:allow(float-eq-typed): exact-zero sparsity fast path — skips only true zeros, bit-identical results
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Inverse of a square matrix (column-by-column solves).
    pub fn inverse(&self) -> Result<Matrix, StatsError> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Maximum absolute difference from another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
        assert_eq!(a.transpose().cols(), 2);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  → x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(StatsError::SingularSystem));
        assert_eq!(a.inverse(), Err(StatsError::SingularSystem));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 2.0],
            vec![3.0, 6.0, 1.0],
            vec![2.0, 5.0, 3.0],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn solve_3x3() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
