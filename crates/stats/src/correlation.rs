//! Correlation measures.
//!
//! Flower's dependency analyzer screens layer pairs by correlation before
//! fitting a regression (Fig. 2 of the paper reports r = 0.95 between the
//! ingestion arrival rate and the analytics-layer CPU). Besides Pearson's
//! r this module provides Spearman's rank correlation (robust to monotone
//! but non-linear couplings) and lagged cross-correlation, which exposes
//! the *delay* between layers — records ingested now hit the storage layer
//! a processing delay later.

use crate::{check_finite, StatsError};

/// Pearson product-moment correlation coefficient.
///
/// Returns an error for mismatched lengths, fewer than two observations,
/// non-finite input, or zero variance in either series.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: x.len(),
        });
    }
    check_finite(x)?;
    check_finite(y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx).powi(2);
        syy += (yi - my).powi(2);
        sxy += (xi - mx) * (yi - my);
    }
    // Sums of squares are non-negative, so `<= 0` is exact-zero detection
    // without a float equality.
    if sxx <= 0.0 || syy <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Ranks with ties sharing the average rank (1-based).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        // Exact tie detection: a zero difference (covering 0.0 vs -0.0)
        // marks members of the same tie group; NaNs never tie.
        while j + 1 < idx.len() && (xs[idx[j + 1]] - xs[idx[i]]).abs() <= 0.0 {
            j += 1;
        }
        // Average rank of the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient (Pearson of the rank vectors,
/// which handles ties correctly).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    check_finite(x)?;
    check_finite(y)?;
    pearson(&ranks(x), &ranks(y))
}

/// Cross-correlation of `y` against `x` at integer lags in
/// `[-max_lag, +max_lag]`.
///
/// A positive lag `k` correlates `x[t]` with `y[t + k]` — i.e. `x`
/// *leading* `y` by `k` samples. Returns `(lag, r)` pairs; lags with
/// fewer than three overlapping points or degenerate variance are
/// skipped.
pub fn cross_correlation(
    x: &[f64],
    y: &[f64],
    max_lag: usize,
) -> Result<Vec<(i64, f64)>, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 3 {
        return Err(StatsError::NotEnoughData {
            needed: 3,
            got: x.len(),
        });
    }
    check_finite(x)?;
    check_finite(y)?;
    let n = x.len();
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    for lag in -(max_lag as i64)..=(max_lag as i64) {
        let (xs, ys): (&[f64], &[f64]) = if lag >= 0 {
            let k = lag as usize;
            if k >= n {
                continue;
            }
            (&x[..n - k], &y[k..])
        } else {
            let k = (-lag) as usize;
            if k >= n {
                continue;
            }
            (&x[k..], &y[..n - k])
        };
        if xs.len() < 3 {
            continue;
        }
        if let Ok(r) = pearson(xs, ys) {
            out.push((lag, r));
        }
    }
    Ok(out)
}

/// Autocorrelation function of a series at lags `0..=max_lag`
/// (biased estimator, normalized so `acf[0] == 1`).
///
/// The dependency analyzer uses this to judge how long a monitoring
/// window must be before samples are effectively independent — an AR(1)
/// disturbance with a two-minute correlation time (like our simulated
/// CPU sensor noise) needs windows several times that.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if x.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: x.len(),
        });
    }
    check_finite(x)?;
    let n = x.len();
    let mean = x.iter().sum::<f64>() / n as f64;
    let var: f64 = x.iter().map(|v| (v - mean).powi(2)).sum();
    if var <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag.min(n - 1) {
        let cov: f64 = (0..n - lag)
            .map(|i| (x[i] - mean) * (x[i + lag] - mean))
            .sum();
        out.push(cov / var);
    }
    Ok(out)
}

/// The smallest lag at which the autocorrelation falls below `1/e`
/// — the series' empirical correlation time in samples. `None` when the
/// series stays correlated through `max_lag`.
pub fn correlation_time(x: &[f64], max_lag: usize) -> Result<Option<usize>, StatsError> {
    let acf = autocorrelation(x, max_lag)?;
    Ok(acf.iter().position(|&r| r < 1.0 / std::f64::consts::E))
}

/// The lag (within `±max_lag`) at which `|r|` is largest, with its r.
pub fn best_lag(x: &[f64], y: &[f64], max_lag: usize) -> Result<(i64, f64), StatsError> {
    let cc = cross_correlation(x, y, max_lag)?;
    cc.into_iter()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .ok_or(StatsError::NotEnoughData { needed: 3, got: 0 })
}

/// A symmetric matrix of pairwise Pearson correlations between named
/// series, as produced by the dependency analyzer across all layer
/// metrics.
#[derive(Debug, Clone)]
pub struct CorrelationMatrix {
    names: Vec<String>,
    /// Row-major `n × n`; `NaN` marks pairs whose correlation was
    /// undefined (zero variance).
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Compute pairwise correlations between equally-long series.
    pub fn compute(series: &[(String, Vec<f64>)]) -> Result<CorrelationMatrix, StatsError> {
        let n = series.len();
        let Some((_, first)) = series.first() else {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        };
        let len0 = first.len();
        for (_, s) in series {
            if s.len() != len0 {
                return Err(StatsError::LengthMismatch {
                    left: len0,
                    right: s.len(),
                });
            }
        }
        let mut values = vec![f64::NAN; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let r = pearson(&series[i].1, &series[j].1).unwrap_or(f64::NAN);
                values[i * n + j] = r;
                values[j * n + i] = r;
            }
        }
        Ok(CorrelationMatrix {
            names: series.iter().map(|(n, _)| n.clone()).collect(),
            values,
        })
    }

    /// Series names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Correlation between series `i` and `j` (NaN when undefined).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let n = self.names.len();
        assert!(i < n && j < n, "index out of bounds");
        self.values[i * n + j]
    }

    /// Correlation by series names; `None` when either name is unknown.
    pub fn by_name(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        Some(self.get(i, j))
    }

    /// All pairs with `|r| >= threshold`, strongest first — the
    /// candidate dependency set handed to the regression stage.
    pub fn strong_pairs(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let n = self.names.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let r = self.get(i, j);
                if r.is_finite() && r.abs() >= threshold {
                    out.push((self.names[i].clone(), self.names[j].clone(), r));
                }
            }
        }
        out.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_sim::SimRng;

    #[test]
    fn perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_series_near_zero() {
        let mut rng = SimRng::seed(10);
        let x: Vec<f64> = (0..5_000).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = (0..5_000).map(|_| rng.next_f64()).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.05, "r={r}");
    }

    #[test]
    fn pearson_errors() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert_eq!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x: Vec<f64> = (1..25).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| v.exp()).collect();
        let rho = spearman(&x, &y).unwrap();
        assert!((rho - 1.0).abs() < 1e-12, "rho={rho}");
        // Pearson is strictly below 1 for the convex transform.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn cross_correlation_finds_known_lag() {
        // y is x delayed by 3 samples.
        let mut rng = SimRng::seed(11);
        let base: Vec<f64> = (0..500).map(|_| rng.normal(0.0, 1.0)).collect();
        let x: Vec<f64> = base[..497].to_vec();
        let y: Vec<f64> = base[3..].iter().map(|v| v * 2.0 + 1.0).collect();
        // x[t] == base[t], y[t] == 2·base[t+3]+1 → x leads y by... actually
        // y[t] depends on base[t+3]; x[t+k]=base[t+k] matches y[t] when k=3,
        // i.e. correlating x[t] with y[t-3]: lag = -3.
        let (lag, r) = best_lag(&x, &y, 6).unwrap();
        assert_eq!(lag, -3);
        assert!(r > 0.99);
    }

    #[test]
    fn cross_correlation_zero_lag_matches_pearson() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [2.0, 6.0, 4.0, 10.0, 8.0];
        let cc = cross_correlation(&x, &y, 0).unwrap();
        assert_eq!(cc.len(), 1);
        assert_eq!(cc[0].0, 0);
        assert!((cc[0].1 - pearson(&x, &y).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn cross_correlation_skips_short_overlaps() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        // max_lag 3 leaves overlaps of 1 at the extremes — skipped.
        let cc = cross_correlation(&x, &y, 3).unwrap();
        assert!(cc.iter().all(|&(lag, _)| lag.abs() <= 1));
    }

    #[test]
    fn autocorrelation_of_white_noise_decays_immediately() {
        let mut rng = SimRng::seed(30);
        let x: Vec<f64> = (0..5_000).map(|_| rng.normal(0.0, 1.0)).collect();
        let acf = autocorrelation(&x, 10).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
        for &r in &acf[1..] {
            assert!(r.abs() < 0.05, "white noise lag correlation {r}");
        }
        assert_eq!(correlation_time(&x, 10).unwrap(), Some(1));
    }

    #[test]
    fn autocorrelation_of_ar1_matches_theory() {
        // AR(1) with rho = 0.9: acf[k] ≈ 0.9^k.
        let mut rng = SimRng::seed(31);
        let mut x = vec![0.0f64];
        for _ in 1..20_000 {
            let prev = *x.last().unwrap();
            x.push(0.9 * prev + rng.normal(0.0, 1.0));
        }
        let acf = autocorrelation(&x, 5).unwrap();
        for (k, &r) in acf.iter().enumerate().skip(1) {
            let expected = 0.9f64.powi(k as i32);
            assert!((r - expected).abs() < 0.05, "lag {k}: {r} vs {expected}");
        }
        // Correlation time: 0.9^k < 1/e at k = 10 → within max_lag 20.
        let ct = correlation_time(&x, 20).unwrap().expect("decorrelates");
        assert!((8..=13).contains(&ct), "correlation time {ct}");
    }

    #[test]
    fn autocorrelation_errors() {
        assert!(matches!(
            autocorrelation(&[1.0], 3),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert_eq!(
            autocorrelation(&[2.0, 2.0, 2.0], 2),
            Err(StatsError::ZeroVariance)
        );
        // max_lag longer than the series is truncated, not an error.
        let acf = autocorrelation(&[1.0, 2.0, 3.0], 99).unwrap();
        assert_eq!(acf.len(), 3);
    }

    #[test]
    fn correlation_time_none_when_persistent() {
        // A pure trend stays correlated at every short lag.
        let x: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        assert_eq!(correlation_time(&x, 5).unwrap(), None);
    }

    #[test]
    fn correlation_matrix_basics() {
        let m = CorrelationMatrix::compute(&[
            ("a".into(), vec![1.0, 2.0, 3.0, 4.0]),
            ("b".into(), vec![2.0, 4.0, 6.0, 8.0]),
            ("c".into(), vec![4.0, 3.0, 2.0, 1.0]),
        ])
        .unwrap();
        assert_eq!(m.names(), &["a", "b", "c"]);
        assert!((m.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((m.by_name("a", "b").unwrap() - 1.0).abs() < 1e-12);
        assert!((m.by_name("a", "c").unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(m.by_name("a", "zz"), None);
        let strong = m.strong_pairs(0.9);
        assert_eq!(strong.len(), 3); // all pairs are |r|=1 here
    }

    #[test]
    fn correlation_matrix_handles_constant_series() {
        let m = CorrelationMatrix::compute(&[
            ("flat".into(), vec![5.0, 5.0, 5.0]),
            ("ramp".into(), vec![1.0, 2.0, 3.0]),
        ])
        .unwrap();
        assert!(m.by_name("flat", "ramp").unwrap().is_nan());
        assert!(m.strong_pairs(0.5).is_empty());
    }

    #[test]
    fn correlation_matrix_length_mismatch() {
        let err = CorrelationMatrix::compute(&[
            ("a".into(), vec![1.0, 2.0]),
            ("b".into(), vec![1.0, 2.0, 3.0]),
        ]);
        assert!(matches!(err, Err(StatsError::LengthMismatch { .. })));
    }
}
