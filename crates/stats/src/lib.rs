// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-stats
//!
//! Statistical substrate for the Flower reproduction.
//!
//! Flower's *workload dependency analysis* (paper §3.1) fits linear
//! regression models between resource measures of different layers of a
//! data analytics flow — e.g. Eq. 2 of the paper,
//! `CPU ≈ 0.0002 · WriteCapacity + 4.8` — and screens candidate
//! dependencies by correlation strength (Fig. 2 reports a Pearson
//! coefficient of 0.95 between ingestion arrival rate and analytics CPU).
//!
//! This crate implements everything that analysis needs, from scratch:
//!
//! * [`descriptive`] — means, variances, percentiles, summaries.
//! * [`matrix`] — a small dense-matrix type with a Gaussian-elimination
//!   solver, enough for normal-equation least squares.
//! * [`regression`] — simple and multiple ordinary least squares with full
//!   diagnostics (R², standard errors, t statistics, confidence
//!   intervals).
//! * [`correlation`] — Pearson, Spearman, lagged cross-correlation, and
//!   correlation matrices.
//! * [`timeseries`] — a `(time, value)` series with rolling windows,
//!   EWMA smoothing, resampling, and alignment of two series on a shared
//!   clock (needed before any cross-layer regression).
//! * [`online`] — recursive least squares (RLS) with forgetting factor,
//!   the online estimator used by the quasi-adaptive baseline controller
//!   [Padala et al. 2007] that the paper compares against.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod correlation;
pub mod descriptive;
pub mod float;
pub mod matrix;
pub mod online;
pub mod regression;
pub mod timeseries;

pub use correlation::{
    autocorrelation, correlation_time, cross_correlation, pearson, spearman, CorrelationMatrix,
};
pub use descriptive::Summary;
pub use matrix::Matrix;
pub use online::RecursiveLeastSquares;
pub use regression::{MultipleOls, SimpleOls};
pub use timeseries::TimeSeries;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input had fewer observations than the routine requires.
    NotEnoughData {
        /// Observations required.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// Paired inputs had mismatched lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The regressor (or a regressor column) had zero variance, so the
    /// model is unidentifiable.
    ZeroVariance,
    /// The normal-equation system was singular (collinear regressors).
    SingularSystem,
    /// An input contained a NaN or infinite value.
    NonFiniteInput,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: need {needed} observations, got {got}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::ZeroVariance => write!(f, "regressor has zero variance"),
            StatsError::SingularSystem => {
                write!(f, "singular normal equations (collinear regressors)")
            }
            StatsError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for StatsError {}

pub(crate) fn check_finite(xs: &[f64]) -> Result<(), StatsError> {
    if xs.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(StatsError::NonFiniteInput)
    }
}
