//! Descriptive statistics over slices of `f64`.

use crate::{check_finite, StatsError};

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divide by `n`). Returns `None` for an empty slice.
pub fn variance_population(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divide by `n − 1`). Returns `None` when `n < 2`.
pub fn variance_sample(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation. Returns `None` when `n < 2`.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance_sample(xs).map(f64::sqrt)
}

/// Minimum value. Returns `None` for an empty slice; NaNs are ignored.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.min(x),
            })
        })
}

/// Maximum value. Returns `None` for an empty slice; NaNs are ignored.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.max(x),
            })
        })
}

/// Percentile in `[0, 100]` using linear interpolation between closest
/// ranks (the "linear" method used by NumPy's default). Returns an error
/// for empty or non-finite input.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    check_finite(xs)?;
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    percentile(xs, 50.0)
}

/// A one-pass summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `count < 2`).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Sum of observations.
    pub sum: f64,
}

impl Summary {
    /// Summarize a non-empty, finite sample.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn of(xs: &[f64]) -> Result<Summary, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        check_finite(xs)?;
        Ok(Summary {
            count: xs.len(),
            mean: mean(xs).expect("xs verified non-empty above"),
            std_dev: std_dev(xs).unwrap_or(0.0),
            min: min(xs).expect("xs verified non-empty and finite above"),
            max: max(xs).expect("xs verified non-empty and finite above"),
            sum: xs.iter().sum(),
        })
    }

    /// Coefficient of variation (`std_dev / mean`); `None` when the mean
    /// is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if crate::float::near_zero(self.mean, crate::float::DEFAULT_TOL) {
            None
        } else {
            Some(self.std_dev / self.mean)
        }
    }

    /// Range of the sample (`max − min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// An incrementally-updatable summary (Welford's online algorithm),
/// used by sensors that fold metric datapoints one at a time.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean; `None` when no observations have been folded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Current sample variance; `None` when fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Current sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation so far.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation so far.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((variance_population(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((variance_sample(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance_population(&[]), None);
        assert_eq!(variance_sample(&[1.0]), None);
        assert_eq!(std_dev(&[1.0]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 4.0);
        assert!((percentile(&xs, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0).unwrap() - 1.75).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_bad_input() {
        assert!(matches!(
            percentile(&[], 50.0),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert_eq!(
            percentile(&[1.0, f64::NAN], 50.0),
            Err(StatsError::NonFiniteInput)
        );
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.sum, 10.0);
        assert!((s.range() - 3.0).abs() < 1e-12);
        assert!(s.coefficient_of_variation().unwrap() > 0.0);
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0; 10]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn summary_cov_none_for_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert_eq!(s.coefficient_of_variation(), None);
    }

    #[test]
    fn running_stats_match_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((rs.variance().unwrap() - variance_sample(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(rs.min(), Some(2.0));
        assert_eq!(rs.max(), Some(9.0));
        assert!((rs.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), None);
        assert_eq!(rs.variance(), None);
        assert_eq!(rs.min(), None);
        assert_eq!(rs.max(), None);
        assert_eq!(rs.count(), 0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [f64::NAN, 2.0, 1.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(2.0));
    }
}
