//! Ordinary least squares regression with diagnostics.
//!
//! This is the machinery behind Flower's workload dependency analysis
//! (paper §3.1): the dependency between a resource measure of layer L1 and
//! one of layer L2 is modelled as `r(L1) = β0 + β1·r(L2) + ε` (Eq. 1).
//! [`SimpleOls`] fits that model; [`MultipleOls`] generalizes to several
//! regressors, which the share analyzer uses when a layer depends on more
//! than one upstream measure.

use crate::matrix::Matrix;
use crate::{check_finite, StatsError};

/// Result of fitting `y = β0 + β1·x + ε` by least squares.
///
/// ```
/// use flower_stats::SimpleOls;
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [4.8, 5.0, 5.2, 5.4]; // y = 0.2·x + 4.8
/// let fit = SimpleOls::fit(&x, &y).unwrap();
/// assert!((fit.slope - 0.2).abs() < 1e-9);
/// assert!((fit.intercept - 4.8).abs() < 1e-9);
/// assert!((fit.predict(10.0) - 6.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleOls {
    /// Intercept β0.
    pub intercept: f64,
    /// Slope β1.
    pub slope: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Pearson correlation between x and y.
    pub correlation: f64,
    /// Residual standard error `sqrt(SSE / (n − 2))`.
    pub residual_std_error: f64,
    /// Standard error of the slope estimate.
    pub slope_std_error: f64,
    /// t statistic of the slope (slope / slope_std_error).
    pub slope_t_stat: f64,
    /// Number of observations.
    pub n: usize,
}

impl SimpleOls {
    /// Fit the model to paired observations.
    ///
    /// Requires at least three observations (so the residual degrees of
    /// freedom are positive) and a regressor with non-zero variance.
    pub fn fit(x: &[f64], y: &[f64]) -> Result<SimpleOls, StatsError> {
        if x.len() != y.len() {
            return Err(StatsError::LengthMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
        if x.len() < 3 {
            return Err(StatsError::NotEnoughData {
                needed: 3,
                got: x.len(),
            });
        }
        check_finite(x)?;
        check_finite(y)?;

        let n = x.len() as f64;
        let mean_x = x.iter().sum::<f64>() / n;
        let mean_y = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mean_x;
            let dy = yi - mean_y;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
        // A sum of squares is non-negative, so `<= 0` is exact-zero
        // detection without a float equality.
        if sxx <= 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;

        let sse: f64 = x
            .iter()
            .zip(y)
            .map(|(&xi, &yi)| {
                let fitted = intercept + slope * xi;
                (yi - fitted).powi(2)
            })
            .sum();
        let r_squared = if syy <= 0.0 { 1.0 } else { 1.0 - sse / syy };
        let correlation = if syy <= 0.0 {
            0.0
        } else {
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        let dof = x.len() - 2;
        let residual_std_error = (sse / dof as f64).sqrt();
        let slope_std_error = residual_std_error / sxx.sqrt();
        let slope_t_stat = if slope_std_error <= 0.0 {
            f64::INFINITY
        } else {
            slope / slope_std_error
        };
        Ok(SimpleOls {
            intercept,
            slope,
            r_squared,
            correlation,
            residual_std_error,
            slope_std_error,
            slope_t_stat,
            n: x.len(),
        })
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Invert the fitted line: the `x` that predicts the given `y`.
    /// `None` when the slope is (numerically) zero.
    pub fn invert(&self, y: f64) -> Option<f64> {
        if self.slope.abs() < 1e-300 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }

    /// Approximate 95% confidence interval for the slope
    /// (normal-approximation `±1.96·SE`; adequate for the trace lengths
    /// the dependency analyzer operates on).
    pub fn slope_confidence_95(&self) -> (f64, f64) {
        let half = 1.96 * self.slope_std_error;
        (self.slope - half, self.slope + half)
    }

    /// Whether the slope is statistically significant at ~5% (|t| > 1.96).
    pub fn slope_is_significant(&self) -> bool {
        self.slope_t_stat.abs() > 1.96
    }
}

/// Result of fitting `y = β0 + β1·x1 + … + βk·xk + ε` by least squares
/// via the normal equations.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipleOls {
    /// Coefficients `[β0, β1, …, βk]` (first entry is the intercept).
    pub coefficients: Vec<f64>,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Adjusted R² (penalized for the number of regressors).
    pub adjusted_r_squared: f64,
    /// Residual standard error.
    pub residual_std_error: f64,
    /// Standard error of each coefficient (same order as `coefficients`).
    pub coefficient_std_errors: Vec<f64>,
    /// Number of observations.
    pub n: usize,
}

impl MultipleOls {
    /// Fit to `n` observations of `k` regressors.
    ///
    /// `xs` is row-major: `xs[i]` holds the `k` regressor values of
    /// observation `i`; an intercept column is added internally.
    pub fn fit(xs: &[Vec<f64>], y: &[f64]) -> Result<MultipleOls, StatsError> {
        if xs.len() != y.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: y.len(),
            });
        }
        let n = xs.len();
        if n == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let k = xs.first().map_or(0, Vec::len);
        if xs.iter().any(|row| row.len() != k) {
            return Err(StatsError::LengthMismatch {
                left: k,
                right: xs.iter().map(Vec::len).find(|&l| l != k).unwrap_or(k),
            });
        }
        let p = k + 1; // including intercept
        if n < p + 1 {
            return Err(StatsError::NotEnoughData {
                needed: p + 1,
                got: n,
            });
        }
        for row in xs {
            check_finite(row)?;
        }
        check_finite(y)?;

        // Design matrix with intercept column.
        let design_rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| {
                let mut r = Vec::with_capacity(p);
                r.push(1.0);
                r.extend_from_slice(row);
                r
            })
            .collect();
        let x = Matrix::from_rows(&design_rows);
        let xt = x.transpose();
        let xtx = xt.matmul(&x);
        let xty = xt.matmul(&Matrix::column(y));
        let rhs: Vec<f64> = (0..p).map(|i| xty[(i, 0)]).collect();
        let coefficients = xtx.solve(&rhs)?;

        // Residuals & diagnostics.
        let fitted: Vec<f64> = design_rows
            .iter()
            .map(|row| row.iter().zip(&coefficients).map(|(a, b)| a * b).sum())
            .collect();
        let mean_y = y.iter().sum::<f64>() / n as f64;
        let sse: f64 = y
            .iter()
            .zip(&fitted)
            .map(|(yi, fi)| (yi - fi).powi(2))
            .sum();
        let sst: f64 = y.iter().map(|yi| (yi - mean_y).powi(2)).sum();
        let r_squared = if sst <= 0.0 { 1.0 } else { 1.0 - sse / sst };
        let dof = n - p;
        let adjusted_r_squared = if sst <= 0.0 {
            1.0
        } else {
            1.0 - (1.0 - r_squared) * (n - 1) as f64 / dof as f64
        };
        let sigma2 = sse / dof as f64;
        let residual_std_error = sigma2.sqrt();
        let cov = xtx.inverse()?;
        let coefficient_std_errors: Vec<f64> = (0..p)
            .map(|i| (sigma2 * cov[(i, i)]).max(0.0).sqrt())
            .collect();

        Ok(MultipleOls {
            coefficients,
            r_squared,
            adjusted_r_squared,
            residual_std_error,
            coefficient_std_errors,
            n,
        })
    }

    /// Predicted value for one observation of regressors.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len() + 1,
            self.coefficients.len(),
            "regressor count mismatch"
        );
        #[allow(clippy::expect_used)] // invariant stated in the expect message
        let (intercept, betas) = self
            .coefficients
            .split_first()
            .expect("fit() always stores the intercept as the first coefficient");
        intercept + x.iter().zip(betas).map(|(a, b)| a * b).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_sim::SimRng;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 3.0 * xi + 7.0).collect();
        let fit = SimpleOls::fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept - 7.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!(fit.residual_std_error < 1e-8);
        assert!(fit.slope_is_significant());
    }

    #[test]
    fn noisy_line_recovered_approximately() {
        let mut rng = SimRng::seed(1);
        let x: Vec<f64> = (0..500).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 2.0 * xi + 5.0 + rng.normal(0.0, 1.0))
            .collect();
        let fit = SimpleOls::fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05, "slope={}", fit.slope);
        assert!(
            (fit.intercept - 5.0).abs() < 0.5,
            "intercept={}",
            fit.intercept
        );
        assert!(fit.r_squared > 0.98);
        assert!(fit.correlation > 0.99);
        let (lo, hi) = fit.slope_confidence_95();
        assert!(lo < 2.0 && 2.0 < hi, "95% CI [{lo}, {hi}] should cover 2.0");
    }

    #[test]
    fn paper_equation_2_shape() {
        // Synthetic data in the shape of the paper's Eq. 2:
        // CPU ≈ 0.0002·WriteCapacity + 4.8
        let mut rng = SimRng::seed(2);
        let wc: Vec<f64> = (0..550).map(|_| rng.uniform(0.0, 60_000.0)).collect();
        let cpu: Vec<f64> = wc
            .iter()
            .map(|&w| 0.0002 * w + 4.8 + rng.normal(0.0, 0.3))
            .collect();
        let fit = SimpleOls::fit(&wc, &cpu).unwrap();
        assert!((fit.slope - 0.0002).abs() < 2e-5, "slope={}", fit.slope);
        assert!(
            (fit.intercept - 4.8).abs() < 0.2,
            "intercept={}",
            fit.intercept
        );
        assert!(fit.correlation > 0.95);
    }

    #[test]
    fn predict_and_invert_are_consistent() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 4.0 * xi - 2.0).collect();
        let fit = SimpleOls::fit(&x, &y).unwrap();
        let p = fit.predict(5.0);
        assert!((fit.invert(p).unwrap() - 5.0).abs() < 1e-10);
    }

    #[test]
    fn invert_flat_line_is_none() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = vec![3.0; 10];
        let fit = SimpleOls::fit(&x, &y).unwrap();
        assert_eq!(fit.invert(10.0), None);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            SimpleOls::fit(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            SimpleOls::fit(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert_eq!(
            SimpleOls::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
        assert_eq!(
            SimpleOls::fit(&[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0]),
            Err(StatsError::NonFiniteInput)
        );
    }

    #[test]
    fn multiple_ols_recovers_plane() {
        let mut rng = SimRng::seed(3);
        let mut xs = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let a = rng.uniform(0.0, 10.0);
            let b = rng.uniform(0.0, 5.0);
            xs.push(vec![a, b]);
            y.push(1.5 + 2.0 * a - 3.0 * b + rng.normal(0.0, 0.1));
        }
        let fit = MultipleOls::fit(&xs, &y).unwrap();
        assert!((fit.coefficients[0] - 1.5).abs() < 0.1);
        assert!((fit.coefficients[1] - 2.0).abs() < 0.02);
        assert!((fit.coefficients[2] + 3.0).abs() < 0.02);
        assert!(fit.r_squared > 0.999);
        assert!(fit.adjusted_r_squared <= fit.r_squared);
        assert_eq!(fit.coefficient_std_errors.len(), 3);
        let pred = fit.predict(&[1.0, 1.0]);
        assert!((pred - 0.5).abs() < 0.1, "pred={pred}");
    }

    #[test]
    fn multiple_ols_collinear_is_singular() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(MultipleOls::fit(&xs, &y), Err(StatsError::SingularSystem));
    }

    #[test]
    fn multiple_ols_matches_simple_for_one_regressor() {
        let mut rng = SimRng::seed(4);
        let x: Vec<f64> = (0..100).map(|_| rng.uniform(0.0, 100.0)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 0.7 * xi + 2.0 + rng.normal(0.0, 0.5))
            .collect();
        let simple = SimpleOls::fit(&x, &y).unwrap();
        let multi = MultipleOls::fit(&x.iter().map(|&v| vec![v]).collect::<Vec<_>>(), &y).unwrap();
        assert!((simple.intercept - multi.coefficients[0]).abs() < 1e-8);
        assert!((simple.slope - multi.coefficients[1]).abs() < 1e-8);
        assert!((simple.r_squared - multi.r_squared).abs() < 1e-8);
    }

    #[test]
    fn multiple_ols_requires_enough_rows() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            MultipleOls::fit(&xs, &y),
            Err(StatsError::NotEnoughData { .. })
        ));
    }
}
