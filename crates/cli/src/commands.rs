//! The subcommand implementations.

use std::error::Error;

use flower_core::config::ControllerSpec;
use flower_core::dashboard::{Dashboard, Panel};
use flower_core::dependency::DependencyAnalyzer;
use flower_core::flow::{FlowBuilder, Layer, Platform};
use flower_core::monitor::CrossPlatformMonitor;
use flower_core::prelude::*;
use flower_core::replan::{ReplanConfig, Replanner};
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;
use flower_obs::{kind, JsonValue, Recorder};
use flower_sim::{SimDuration, SimTime};

use crate::args::Args;

type CmdResult = Result<(), Box<dyn Error>>;

/// Usage text for `flower help`.
pub fn usage() -> String {
    "\
flower — a data analytics flow elasticity manager (VLDB'17 reproduction)

USAGE:
  flower <command> [--option value]...

COMMANDS:
  run       run an elasticity episode on the click-stream flow
              --minutes N          episode length          [30]
              --seed N             RNG seed                [0]
              --workload KIND      constant|diurnal|step|flash|bursts [diurnal]
              --rate R             base arrival rate rec/s [1500]
              --controller KIND    adaptive|fixed-gain|quasi-adaptive|
                                   rule-based|static       [adaptive]
              --period SECS        monitoring period       [30]
              --csv PATH           write the per-tick trace as CSV
              --trace PATH         record structured events as JSONL
                                   (flower-trace/v1)
              --replan MINS        re-run share analysis every MINS min
              --faults NAME|PATH   inject faults: a scenario preset
                                   (none|flaky-actuator|stale-sensor|
                                   slow-resize|throttle-storm) or a TOML
                                   fault plan; enables the resilience
                                   policy (retries, timeouts, degraded
                                   mode) alongside
              --fast-forward true  skip quiet windows: when the workload
                                   is idle, jump the clock to the next
                                   scheduled event instead of simulating
                                   every second (long-horizon episodes)
              --config PATH        load a wizard config file (overrides
                                   the flags above; see flower_core::wizard)
  plan      resource share analysis under a budget (Fig. 4)
              --budget D           $/hour                  [0.75]
              --seed N             NSGA-II seed            [2017]
  analyze   learn cross-layer dependencies from a probe run (Fig. 2)
              --minutes N          probe length            [120]
              --seed N             RNG seed                [42]
  monitor   run briefly and print the all-in-one-place snapshot (Fig. 6)
              --minutes N          run length              [10]
              --seed N             RNG seed                [0]
  trace     summarize a JSONL trace written by `run --trace` (includes a
            fault/recovery timeline when the run injected faults)
              --in PATH            trace file to read      (required)
              --field NAME         also chart this numeric event field
              --follow true        tail a growing trace, printing events as
                                   their lines complete; exits at the summary
  serve     host a live episode behind the flower-wire/v1 socket protocol,
            streaming flower-obs events and accepting live commands
            (inject-fault, set-budget, force-replan, pause, resume,
            shutdown); takes the `run` episode flags, plus:
              --listen ADDR        bind address            [127.0.0.1:7733]
              --pace-ms N          wall-clock ms per 1 s sim tick [0: flat out]
              --hold true          start paused until a `resume` command
              --snapshot-secs N    counter/gauge snapshot grid     [60]
              --record PATH        record applied commands (flower-record/v1)
              --trace PATH         write the episode trace on completion
              --replay RECORD      no sockets: re-run a recorded session to a
                                   byte-identical trace (with --trace PATH)
  client    line-mode client for a running `flower serve`
              --connect HOST:PORT  daemon address          (required)
              --script PATH        frames to send, one per line (`!sleep MS`
                                   pauses, `#` comments); default: subscribe
  help      this text
"
    .to_owned()
}

fn flow() -> flower_core::flow::FlowSpec {
    FlowBuilder::new("clickstream-analytics")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .build()
        .expect("the reference flow is valid")
}

fn workload(kind: &str, rate: f64, seed: u64) -> Result<Workload, Box<dyn Error>> {
    Ok(match kind {
        "constant" => Workload::constant(rate),
        "diurnal" => Workload::diurnal(rate, rate * 0.8),
        "step" => Workload::step(rate * 0.3, rate * 2.0, SimTime::from_mins(10)),
        "flash" => Workload::flash_crowd(rate * 0.4, rate * 3.0, SimTime::from_mins(10)),
        "bursts" => Workload::custom(Box::new(flower_workload::MmppRate::new(
            rate * 0.3,
            rate * 2.5,
            SimDuration::from_mins(8),
            SimDuration::from_mins(4),
            flower_sim::SimRng::seed(seed ^ 0xB0B5),
        ))),
        other => return Err(format!("unknown workload '{other}'").into()),
    })
}

fn controller(kind: &str) -> Result<[ControllerSpec; 3], Box<dyn Error>> {
    Ok(match kind {
        "adaptive" => [
            ControllerSpec::adaptive(70.0),
            ControllerSpec::adaptive(60.0),
            ControllerSpec::adaptive_for_capacity(70.0),
        ],
        "fixed-gain" => [
            ControllerSpec::fixed_gain(70.0),
            ControllerSpec::fixed_gain(60.0),
            ControllerSpec::fixed_gain(70.0),
        ],
        "quasi-adaptive" => [
            ControllerSpec::quasi_adaptive(70.0),
            ControllerSpec::quasi_adaptive(60.0),
            ControllerSpec::quasi_adaptive(70.0),
        ],
        "rule-based" => [
            ControllerSpec::rule_based(70.0),
            ControllerSpec::rule_based(60.0),
            ControllerSpec::rule_based(70.0),
        ],
        "static" => [
            ControllerSpec::Static,
            ControllerSpec::Static,
            ControllerSpec::Static,
        ],
        other => return Err(format!("unknown controller '{other}'").into()),
    })
}

/// Resolve `--faults`: a scenario preset name, else a TOML plan file.
fn fault_plan(spec: &str) -> Result<FaultPlan, Box<dyn Error>> {
    if let Some(plan) = FaultPlan::preset(spec) {
        return Ok(plan);
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        format!(
            "--faults '{spec}' is neither a preset ({}) nor a readable file: {e}",
            PRESETS.join("|")
        )
    })?;
    FaultPlan::parse(&text).map_err(|e| format!("--faults {spec}: {e}").into())
}

/// One episode's construction flags, shared by `flower run`,
/// `flower serve`, and `flower serve --replay`. The spec round-trips
/// through a flat string map — the `episode` object of `flower-wire/v1`
/// hello frames and `flower-record/v1` headers — so a recorded live
/// session rebuilds the exact manager it ran against.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeSpec {
    /// Episode length in minutes.
    pub minutes: u64,
    /// RNG seed.
    pub seed: u64,
    /// Base arrival rate, records/s.
    pub rate: f64,
    /// Monitoring period in seconds.
    pub period: u64,
    /// Workload kind (`constant|diurnal|step|flash|bursts`).
    pub workload: String,
    /// Controller kind (see [`controller`]).
    pub controller: String,
    /// Replanning cadence in minutes, if replanning is on.
    pub replan: Option<u64>,
    /// `--faults` spec (preset name or plan file path), if any.
    pub faults: Option<String>,
    /// Skip quiet windows (`--fast-forward true`).
    pub fast_forward: bool,
}

impl EpisodeSpec {
    /// Read the spec from CLI flags (the same flags `flower run` takes,
    /// with the same defaults).
    pub fn from_args(args: &Args) -> Result<EpisodeSpec, Box<dyn Error>> {
        let replan = match args.get("replan") {
            Some(mins) => Some(mins.parse().map_err(|_| format!("bad --replan '{mins}'"))?),
            None => None,
        };
        Ok(EpisodeSpec {
            minutes: args.u64_or("minutes", 30)?,
            seed: args.u64_or("seed", 0)?,
            rate: args.f64_or("rate", 1_500.0)?,
            period: args.u64_or("period", 30)?,
            workload: args.str_or("workload", "diurnal"),
            controller: args.str_or("controller", "adaptive"),
            replan,
            faults: args.get("faults").map(str::to_owned),
            fast_forward: args.str_or("fast-forward", "false") == "true",
        })
    }

    /// Rebuild the spec from a recorded episode map (missing keys take
    /// the `flower run` defaults, so hand-written records stay terse).
    pub fn from_map(
        map: &std::collections::BTreeMap<String, String>,
    ) -> Result<EpisodeSpec, Box<dyn Error>> {
        fn parsed<T: std::str::FromStr>(
            map: &std::collections::BTreeMap<String, String>,
            key: &str,
            default: T,
        ) -> Result<T, Box<dyn Error>> {
            match map.get(key) {
                Some(raw) => raw
                    .parse()
                    .map_err(|_| format!("episode.{key}: bad value '{raw}'").into()),
                None => Ok(default),
            }
        }
        Ok(EpisodeSpec {
            minutes: parsed(map, "minutes", 30)?,
            seed: parsed(map, "seed", 0)?,
            rate: parsed(map, "rate", 1_500.0)?,
            period: parsed(map, "period", 30)?,
            workload: map
                .get("workload")
                .cloned()
                .unwrap_or_else(|| "diurnal".to_owned()),
            controller: map
                .get("controller")
                .cloned()
                .unwrap_or_else(|| "adaptive".to_owned()),
            replan: match map.get("replan") {
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| format!("episode.replan: bad value '{raw}'"))?,
                ),
                None => None,
            },
            faults: map.get("faults").cloned(),
            fast_forward: map.get("fast_forward").map(String::as_str) == Some("true"),
        })
    }

    /// The flat string map that [`Self::from_map`] reverses.
    pub fn to_map(&self) -> std::collections::BTreeMap<String, String> {
        let mut map = std::collections::BTreeMap::new();
        map.insert("minutes".to_owned(), self.minutes.to_string());
        map.insert("seed".to_owned(), self.seed.to_string());
        map.insert("rate".to_owned(), self.rate.to_string());
        map.insert("period".to_owned(), self.period.to_string());
        map.insert("workload".to_owned(), self.workload.clone());
        map.insert("controller".to_owned(), self.controller.clone());
        if let Some(mins) = self.replan {
            map.insert("replan".to_owned(), mins.to_string());
        }
        if let Some(faults) = &self.faults {
            map.insert("faults".to_owned(), faults.clone());
        }
        if self.fast_forward {
            map.insert("fast_forward".to_owned(), "true".to_owned());
        }
        map
    }

    /// Build the manager this spec describes. `with_recorder` attaches
    /// the standard 65 536-event flight recorder (`flower serve` always
    /// does; `flower run` only under `--trace`).
    pub fn build(&self, with_recorder: bool) -> Result<ElasticityManager, Box<dyn Error>> {
        let specs = controller(&self.controller)?;
        let mut builder = ElasticityManager::builder(flow())
            .workload(workload(&self.workload, self.rate, self.seed)?)
            .monitoring_period(SimDuration::from_secs(self.period))
            .fast_forward(self.fast_forward)
            .seed(self.seed);
        for (layer, spec) in Layer::ALL.into_iter().zip(specs) {
            builder = builder.controller(layer, spec);
        }
        if let Some(mins) = self.replan {
            builder = builder.replanner(Replanner::for_clickstream(
                ReplanConfig {
                    cadence: SimDuration::from_mins(mins),
                    analysis_window: SimDuration::from_mins(mins),
                    nsga2: Nsga2Config {
                        population: 40,
                        generations: 40,
                        seed: self.seed,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                "clicks",
                "counter",
                "aggregates",
                ShareProblem::worked_example(1.0),
            ));
        }
        if let Some(spec) = &self.faults {
            builder = builder.faults(fault_plan(spec)?);
        }
        if with_recorder {
            builder = builder.recorder(Recorder::with_capacity(65_536));
        }
        Ok(builder.build()?)
    }
}

/// `flower run`
pub fn run(args: &Args) -> CmdResult {
    let minutes = args.u64_or("minutes", 30)?;

    let mut manager = if let Some(path) = args.get("config") {
        if args.get("trace").is_some()
            || args.get("replan").is_some()
            || args.get("faults").is_some()
        {
            return Err(
                "--trace/--replan/--faults are not supported together with --config".into(),
            );
        }
        let text = std::fs::read_to_string(path)?;
        let config = flower_core::wizard::WizardConfig::from_text(&text)?;
        println!(
            "running {minutes} min from wizard config '{path}' (scenario {}, seed {})",
            config.scenario.name(),
            config.seed
        );
        config.build_manager()?
    } else {
        let spec = EpisodeSpec::from_args(args)?;
        if let Some(faults) = &spec.faults {
            let plan = fault_plan(faults)?;
            if !plan.is_empty() {
                println!(
                    "injecting faults from '{faults}' (seed {}, {} clauses) with the resilience policy enabled",
                    plan.seed,
                    plan.clauses.len()
                );
            }
        }
        println!(
            "running {minutes} min of '{}' at ~{} rec/s with the {} controller (seed {})",
            spec.workload, spec.rate, spec.controller, spec.seed
        );
        spec.build(args.get("trace").is_some())?
    };
    let report = manager.run_for_mins(minutes);

    let dashboard = Dashboard::new()
        .panel(Panel::new(
            "arrival rate (rec/s)",
            report.arrival_trace.clone(),
        ))
        .panel(
            Panel::new(
                "ingestion utilization (%)",
                report.measurements(Layer::INGESTION).to_vec(),
            )
            .with_reference(70.0),
        )
        .panel(Panel::new(
            "shards",
            report.actuators(Layer::INGESTION).to_vec(),
        ))
        .panel(
            Panel::new(
                "analytics CPU (%)",
                report.measurements(Layer::ANALYTICS).to_vec(),
            )
            .with_reference(60.0),
        )
        .panel(Panel::new(
            "VMs",
            report.actuators(Layer::ANALYTICS).to_vec(),
        ))
        .panel(Panel::new("WCU", report.actuators(Layer::STORAGE).to_vec()));
    println!("\n{}", dashboard.render(100));
    println!(
        "offered {} | accepted {} | loss {:.2}% | actions {} | cost ${:.4}",
        report.offered_records,
        report.accepted_records,
        report.ingest_loss_rate() * 100.0,
        report.total_actions(),
        report.total_cost_dollars
    );

    let slo = flower_core::slo::SloSpec::clickstream_default().evaluate(&report);
    print!("\n{}", slo.to_table());

    if let Some(path) = args.get("csv") {
        let file = std::fs::File::create(path)?;
        flower_core::export::episode_to_csv(&report, std::io::BufWriter::new(file))?;
        println!("trace written to {path}");
    }
    if let Some(path) = args.get("trace") {
        std::fs::write(path, manager.recorder().to_jsonl())?;
        println!("event trace written to {path}");
    }
    Ok(())
}

/// `flower trace`
pub fn trace(args: &Args) -> CmdResult {
    let path = args
        .get("in")
        .ok_or("trace needs --in PATH (a file written by `flower run --trace`)")?;
    if args.str_or("follow", "false") == "true" {
        return follow(path);
    }
    let text = std::fs::read_to_string(path)?;
    let trace = flower_obs::parse_trace(&text)?;

    println!(
        "{path}: {} events kept of {} emitted ({} dropped, capacity {})",
        trace.events.len(),
        trace.emitted,
        trace.dropped,
        trace.capacity
    );
    if trace.dropped > 0 {
        println!(
            "warning: the flight recorder overflowed — the {} oldest events were \
             evicted before export (ring capacity {}); re-run with a larger recorder \
             or treat kept-event history as truncated",
            trace.dropped, trace.capacity
        );
    }

    println!("\nevents by kind:");
    for (event_kind, count) in trace.counts_by_kind() {
        println!("  {event_kind:<20} {count:>6}");
    }

    if let Some(spans) = trace.summary.as_obj().and_then(|o| o.get("spans")) {
        if let Some(spans) = spans.as_obj().filter(|o| !o.is_empty()) {
            println!("\nspans:");
            for (name, stats) in spans {
                let field = |key: &str| {
                    stats
                        .as_obj()
                        .and_then(|o| o.get(key))
                        .and_then(JsonValue::as_num)
                        .unwrap_or(f64::NAN)
                };
                println!(
                    "  {name:<24} count {:>4}  total {:>9.1} ms  max {:>9.1} ms",
                    field("count"),
                    field("total_ms"),
                    field("max_ms")
                );
            }
        }
    }

    let alarms: Vec<&flower_obs::TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.kind == kind::ALARM_TRANSITION)
        .collect();
    if !alarms.is_empty() {
        println!("\nalarm timeline:");
        for e in alarms {
            println!(
                "  t={:>6}s  {:<24} {} -> {}",
                e.t_ms / 1000,
                e.str("alarm").unwrap_or("?"),
                e.str("from").unwrap_or("?"),
                e.str("to").unwrap_or("?")
            );
        }
    }

    let faults: Vec<&flower_obs::TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.kind.starts_with("chaos.") || e.kind.starts_with("resilience."))
        .collect();
    if !faults.is_empty() {
        println!("\nfault/recovery timeline:");
        for e in &faults {
            let layer = e.str("layer").unwrap_or("?");
            let accepted = e.fields.get("accepted") == Some(&JsonValue::Bool(true));
            let detail = match e.kind.as_str() {
                "chaos.fault" => format!("fault injected: {}", e.str("fault").unwrap_or("?")),
                "resilience.retry" => format!(
                    "retry #{:.0} {}",
                    e.f64("attempt").unwrap_or(0.0),
                    if accepted { "landed" } else { "rejected again" }
                ),
                "resilience.timeout" => format!(
                    "actuation timed out (target {:.0})",
                    e.f64("target").unwrap_or(f64::NAN)
                ),
                "resilience.degraded" => match e.str("phase") {
                    Some("enter") => format!(
                        "sensor stale -> degraded, holding {:.0} units",
                        e.f64("held").unwrap_or(f64::NAN)
                    ),
                    _ => format!(
                        "sensor recovered after {:.0} held round(s)",
                        e.f64("rounds").unwrap_or(0.0)
                    ),
                },
                other => other.to_owned(),
            };
            println!("  t={:>6}s  {layer:<12} {detail}", e.t_ms / 1000);
        }
        println!(
            "  ({} fault events, {} retries, {} timeouts, {} degraded transitions)",
            faults.iter().filter(|e| e.kind == "chaos.fault").count(),
            faults
                .iter()
                .filter(|e| e.kind == "resilience.retry")
                .count(),
            faults
                .iter()
                .filter(|e| e.kind == "resilience.timeout")
                .count(),
            faults
                .iter()
                .filter(|e| e.kind == "resilience.degraded")
                .count()
        );
    }

    let replans = replan_timeline_lines(&trace);
    if !replans.is_empty() {
        println!("\nreplan timeline (warm = seeded from the previous front):");
        for line in &replans {
            println!("{line}");
        }
    }

    if let Some(field) = args.get("field") {
        let points: Vec<(SimTime, f64)> = trace
            .events
            .iter()
            .filter_map(|e| Some((SimTime::from_millis(e.t_ms), e.f64(field)?)))
            .collect();
        if points.is_empty() {
            return Err(format!("no event carries a numeric field '{field}'").into());
        }
        let panel = Panel::new(format!("event field '{field}'"), points);
        println!("\n{}", Dashboard::new().panel(panel).render(100));
    }
    Ok(())
}

/// `flower trace --follow true`: tail a growing trace file, printing
/// each event as its line completes. Partial writes are carried by the
/// incremental parser until the rest of the line lands; the command
/// exits when the final summary line arrives.
fn follow(path: &str) -> CmdResult {
    let mut follower = flower_obs::TraceFollower::new();
    let mut offset = 0usize;
    while !follower.finished() {
        let data = std::fs::read(path)?;
        if data.len() < offset {
            return Err(format!("{path}: file shrank while following").into());
        }
        if data.len() > offset {
            let chunk = std::str::from_utf8(&data[offset..])
                .map_err(|e| format!("{path}: not UTF-8 at byte {offset}: {e}"))?;
            offset = data.len();
            for item in follower.feed(chunk)? {
                match item {
                    flower_obs::FollowItem::Header {
                        capacity, dropped, ..
                    } => {
                        print!("following {path} (flower-trace/v1, capacity {capacity})");
                        if dropped > 0 {
                            print!(" — warning: {dropped} events already evicted");
                        }
                        println!();
                    }
                    flower_obs::FollowItem::Event(event) => {
                        println!(
                            "t={:>6}s  seq {:>6}  {}",
                            event.t_ms / 1000,
                            event.seq,
                            event.kind
                        );
                    }
                    flower_obs::FollowItem::Summary(_) => {
                        println!(
                            "trace complete: {} event(s) followed",
                            follower.events_seen()
                        );
                    }
                }
            }
        } else {
            std::thread::sleep(std::time::Duration::from_millis(150));
        }
    }
    Ok(())
}

/// One line per re-planning round in `trace`, oldest first: the
/// warm/cold start marker (from the `warm` event field — traces from
/// replanners without warm starts predate the field and render
/// `cold*`), the confirmed dependency count, the Pareto front size and
/// the chosen plan's hourly cost. Failed rounds show the error.
/// Empty when the trace holds no replan events.
fn replan_timeline_lines(trace: &flower_obs::Trace) -> Vec<String> {
    trace
        .events
        .iter()
        .filter(|e| e.kind == kind::REPLAN_OUTCOME || e.kind == kind::REPLAN_FAILED)
        .map(|e| {
            if e.kind == kind::REPLAN_FAILED {
                return format!(
                    "  t={:>6}s  failed: {}",
                    e.t_ms / 1000,
                    e.str("error").unwrap_or("?")
                );
            }
            let start = match e.fields.get("warm") {
                Some(JsonValue::Bool(true)) => "warm",
                Some(JsonValue::Bool(false)) => "cold",
                _ => "cold*", // pre-warm-start trace: the field is absent
            };
            format!(
                "  t={:>6}s  {start:<5}  deps {:>2.0}  front {:>3.0}  ${:.4}/h",
                e.t_ms / 1000,
                e.f64("dependencies").unwrap_or(f64::NAN),
                e.f64("front_size").unwrap_or(f64::NAN),
                e.f64("hourly_cost").unwrap_or(f64::NAN)
            )
        })
        .collect()
}

/// `flower plan`
pub fn plan(args: &Args) -> CmdResult {
    let budget = args.f64_or("budget", 0.75)?;
    let seed = args.u64_or("seed", 2017)?;
    let problem = ShareProblem::worked_example(budget);
    println!("budget ${budget:.2}/h; constraints:");
    for c in &problem.constraints {
        println!("  {}", c.label);
    }
    let plans = ShareAnalyzer::new(problem)
        .with_config(Nsga2Config {
            seed,
            ..Default::default()
        })
        .solve()?;
    println!("\n{} Pareto-optimal plans (best spend first):", plans.len());
    println!("{:>8} {:>6} {:>8} {:>10}", "shards", "VMs", "WCU", "$/hour");
    for p in &plans {
        println!(
            "{:>8.0} {:>6.0} {:>8.0} {:>10.4}",
            p.shards(),
            p.vms(),
            p.wcu(),
            p.hourly_cost
        );
    }
    Ok(())
}

/// `flower analyze`
pub fn analyze(args: &Args) -> CmdResult {
    let minutes = args.u64_or("minutes", 120)?;
    let seed = args.u64_or("seed", 42)?;
    println!("probing the flow for {minutes} min (static over-provisioned deployment)...");
    let mut probe = ElasticityManager::builder(
        FlowBuilder::new("probe")
            .ingestion(Platform::kinesis("clicks", 8))
            .analytics(Platform::storm("counter", 6))
            .storage(Platform::dynamo("aggregates", 400.0))
            .build()?,
    )
    .workload(Workload::diurnal(2_500.0, 2_000.0))
    .all_controllers(ControllerSpec::Static)
    .seed(seed)
    .build()?;
    probe.run_for_mins(minutes);

    let analyzer = DependencyAnalyzer::for_clickstream("clicks", "counter", "aggregates");
    let deps = analyzer.dependencies(probe.engine().metrics(), SimTime::ZERO, probe.now())?;
    if deps.is_empty() {
        println!("no dependencies above the correlation threshold");
    } else {
        println!("learned cross-layer dependencies (strongest first):");
        for d in &deps {
            println!("  {}", d.equation());
        }
    }
    Ok(())
}

/// `flower monitor`
pub fn monitor(args: &Args) -> CmdResult {
    let minutes = args.u64_or("minutes", 10)?;
    let seed = args.u64_or("seed", 0)?;
    let mut manager = ElasticityManager::builder(flow())
        .workload(Workload::diurnal(1_500.0, 1_200.0))
        .seed(seed)
        .build()?;
    manager.run_for_mins(minutes);
    let monitor = CrossPlatformMonitor::for_clickstream("clicks", "counter", "aggregates");
    let snapshot = monitor.snapshot(
        manager.engine().metrics(),
        manager.now(),
        SimDuration::from_mins(minutes.min(5)),
    );
    print!("{}", snapshot.to_table());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(ToString::to_string)).expect("valid args")
    }

    #[test]
    fn usage_mentions_every_command() {
        let text = usage();
        for cmd in ["run", "plan", "analyze", "monitor", "trace", "help"] {
            assert!(text.contains(cmd), "usage missing {cmd}");
        }
    }

    #[test]
    fn replan_timeline_shows_warm_and_cold_rounds() {
        let recorder = flower_obs::Recorder::with_capacity(16);
        recorder.set_now(SimTime::from_mins(40));
        recorder.emit(
            kind::REPLAN_OUTCOME,
            &[
                ("dependencies", 3u32.into()),
                ("front_size", 12u32.into()),
                ("hourly_cost", 0.75.into()),
                ("warm", false.into()),
            ],
        );
        recorder.set_now(SimTime::from_mins(70));
        recorder.emit(
            kind::REPLAN_OUTCOME,
            &[
                ("dependencies", 3u32.into()),
                ("front_size", 11u32.into()),
                ("hourly_cost", 0.74.into()),
                ("warm", true.into()),
            ],
        );
        // A round from before the warm-start field existed.
        recorder.set_now(SimTime::from_mins(100));
        recorder.emit(
            kind::REPLAN_OUTCOME,
            &[
                ("dependencies", 2u32.into()),
                ("front_size", 9u32.into()),
                ("hourly_cost", 0.71.into()),
            ],
        );
        recorder.set_now(SimTime::from_mins(130));
        recorder.emit(kind::REPLAN_FAILED, &[("error", "no feasible plan".into())]);

        let trace = flower_obs::parse_trace(&recorder.to_jsonl()).unwrap();
        let lines = replan_timeline_lines(&trace);
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(
            lines[0].contains("cold ") && lines[0].contains("t=  2400s"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("warm ") && lines[1].contains("front  11"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("cold*"), "{}", lines[2]);
        assert!(
            lines[3].contains("failed: no feasible plan"),
            "{}",
            lines[3]
        );

        // A trace without replan events renders no timeline.
        let empty = flower_obs::Recorder::with_capacity(4);
        empty.emit(kind::ALARM_TRANSITION, &[("alarm", "x".into())]);
        let trace = flower_obs::parse_trace(&empty.to_jsonl()).unwrap();
        assert!(replan_timeline_lines(&trace).is_empty());
    }

    #[test]
    fn workload_kinds_build() {
        for kind in ["constant", "diurnal", "step", "flash", "bursts"] {
            assert!(workload(kind, 1_000.0, 1).is_ok(), "workload {kind}");
        }
        assert!(workload("nope", 1_000.0, 1).is_err());
    }

    #[test]
    fn controller_kinds_build() {
        for kind in [
            "adaptive",
            "fixed-gain",
            "quasi-adaptive",
            "rule-based",
            "static",
        ] {
            assert!(controller(kind).is_ok(), "controller {kind}");
        }
        assert!(controller("nope").is_err());
    }

    #[test]
    fn run_command_executes_and_writes_csv() {
        let dir = std::env::temp_dir().join("flower-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("episode.csv");
        let csv_str = csv.to_str().unwrap().to_owned();
        run(&args(&[
            "run",
            "--minutes",
            "2",
            "--workload",
            "constant",
            "--rate",
            "500",
            "--csv",
            &csv_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("t_seconds,"));
        assert_eq!(text.lines().count(), 1 + 120);
        std::fs::remove_file(csv).ok();
    }

    #[test]
    fn run_with_trace_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join("flower-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("episode.jsonl");
        let path_str = path.to_str().unwrap().to_owned();
        run(&args(&[
            "run",
            "--minutes",
            "3",
            "--workload",
            "step",
            "--rate",
            "4000",
            "--trace",
            &path_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = flower_obs::parse_trace(&text).unwrap();
        assert!(!parsed.events.is_empty(), "traced run emitted no events");
        let counts = parsed.counts_by_kind();
        assert!(counts.contains_key(kind::CONTROL_DECISION), "{counts:?}");
        // The summary command consumes what the run command wrote.
        trace(&args(&["trace", "--in", &path_str])).unwrap();
        trace(&args(&[
            "trace",
            "--in",
            &path_str,
            "--field",
            "measurement",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_flag_is_rejected_with_config() {
        let result = run(&args(&[
            "run",
            "--minutes",
            "1",
            "--config",
            "/nonexistent",
            "--trace",
            "/tmp/t.jsonl",
        ]));
        let err = result.unwrap_err().to_string();
        assert!(err.contains("not supported"), "{err}");
    }

    #[test]
    fn fault_plan_resolves_presets_and_files() {
        assert!(!fault_plan("flaky-actuator").unwrap().is_empty());
        assert!(fault_plan("none").unwrap().is_empty());
        let err = fault_plan("nope").unwrap_err().to_string();
        assert!(err.contains("neither a preset"), "{err}");

        let dir = std::env::temp_dir().join("flower-cli-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.toml");
        std::fs::write(&path, FaultPlan::preset("stale-sensor").unwrap().to_toml()).unwrap();
        let from_file = fault_plan(path.to_str().unwrap()).unwrap();
        assert_eq!(from_file, FaultPlan::preset("stale-sensor").unwrap());
        std::fs::write(&path, "seed = what").unwrap();
        assert!(fault_plan(path.to_str().unwrap()).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn faults_flag_is_rejected_with_config() {
        let result = run(&args(&[
            "run",
            "--minutes",
            "1",
            "--config",
            "/nonexistent",
            "--faults",
            "flaky-actuator",
        ]));
        let err = result.unwrap_err().to_string();
        assert!(err.contains("not supported"), "{err}");
    }

    #[test]
    fn run_with_faults_traces_the_fault_timeline() {
        let dir = std::env::temp_dir().join("flower-cli-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos.jsonl");
        let path_str = path.to_str().unwrap().to_owned();
        run(&args(&[
            "run",
            "--minutes",
            "12",
            "--workload",
            "constant",
            "--rate",
            "4500",
            "--faults",
            "flaky-actuator",
            "--trace",
            &path_str,
        ]))
        .unwrap();
        let parsed = flower_obs::parse_trace(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(
            parsed.events.iter().any(|e| e.kind == "chaos.fault"),
            "faulted run must trace injected faults"
        );
        // The timeline panel renders what the run wrote.
        trace(&args(&["trace", "--in", &path_str])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn plan_command_executes() {
        plan(&args(&["plan", "--budget", "0.5"])).unwrap();
    }

    #[test]
    fn monitor_command_executes() {
        monitor(&args(&["monitor", "--minutes", "2"])).unwrap();
    }

    #[test]
    fn bad_workload_surfaces_as_error() {
        let result = run(&args(&["run", "--minutes", "1", "--workload", "nope"]));
        assert!(result.is_err());
    }
}
