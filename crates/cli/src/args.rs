//! Tiny hand-rolled argument parsing (`--key value` pairs and
//! subcommands) — keeps the dependency set inside the approved list.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
}

/// Errors from parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// The raw value.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
    /// An unexpected positional argument.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "option --{flag} needs a value"),
            ArgsError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "option --{option}: '{value}' is not a valid {expected}"),
            ArgsError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument '{arg}'")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parse an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgsError> {
        let mut command = None;
        let mut options = BTreeMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgsError::MissingValue(flag.to_owned()))?;
                options.insert(flag.to_owned(), value);
            } else if command.is_none() {
                command = Some(arg);
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(Args { command, options })
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_owned()
    }

    /// `f64` option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                option: key.to_owned(),
                value: v.to_owned(),
                expected: "number",
            }),
        }
    }

    /// `u64` option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                option: key.to_owned(),
                value: v.to_owned(),
                expected: "integer",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["run", "--seed", "7", "--minutes", "30"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(a.u64_or("minutes", 0).unwrap(), 30);
        assert_eq!(a.u64_or("absent", 42).unwrap(), 42);
    }

    #[test]
    fn empty_is_ok() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.command, None);
        assert_eq!(a.get("x"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["plan", "--budget"]),
            Err(ArgsError::MissingValue("budget".into()))
        );
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["plan", "--budget", "lots"]).unwrap();
        assert!(matches!(
            a.f64_or("budget", 1.0),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn extra_positional_is_an_error() {
        assert!(matches!(
            parse(&["run", "again"]),
            Err(ArgsError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn string_defaults() {
        let a = parse(&["run", "--workload", "diurnal"]).unwrap();
        assert_eq!(a.str_or("workload", "constant"), "diurnal");
        assert_eq!(a.str_or("controller", "adaptive"), "adaptive");
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ArgsError::MissingValue("x".into())
            .to_string()
            .contains("--x"));
        assert!(ArgsError::UnexpectedPositional("y".into())
            .to_string()
            .contains("'y'"));
    }
}
