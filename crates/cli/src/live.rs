//! `flower serve` and `flower client`: the live-daemon front end.

use std::error::Error;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use flower_serve::{parse_recording, replay, Daemon, ServeConfig};
use flower_sim::SimDuration;

use crate::args::Args;
use crate::commands::EpisodeSpec;

type CmdResult = Result<(), Box<dyn Error>>;

/// `flower serve`: host one episode behind the `flower-wire/v1`
/// socket. `--replay RECORD` instead re-runs a recorded session with
/// no sockets and writes the byte-identical trace.
pub fn serve(args: &Args) -> CmdResult {
    if let Some(record_path) = args.get("replay") {
        return replay_recording(args, record_path);
    }
    let spec = EpisodeSpec::from_args(args)?;
    let pace_ms = args.u64_or("pace-ms", 0)?;
    let hold = args.str_or("hold", "false") == "true";
    let config = ServeConfig {
        listen: args.str_or("listen", "127.0.0.1:7733"),
        duration: SimDuration::from_mins(spec.minutes),
        pace: (pace_ms > 0).then(|| Duration::from_millis(pace_ms)),
        hold,
        snapshot_every: SimDuration::from_secs(args.u64_or("snapshot-secs", 60)?),
        record: args.get("record").map(std::path::PathBuf::from),
        episode: spec.to_map(),
    };
    let mut manager = spec.build(true)?;
    let daemon = Daemon::bind(config)?;
    println!(
        "flower serve: listening on {} ({} min episode, '{}' workload, seed {}){}",
        daemon.local_addr()?,
        spec.minutes,
        spec.workload,
        spec.seed,
        if hold {
            " — holding until `resume`"
        } else {
            ""
        }
    );
    let outcome = daemon.run(&mut manager)?;
    println!(
        "episode {}: {} command(s) applied across {} client connection(s)",
        if outcome.shut_down {
            "shut down"
        } else {
            "complete"
        },
        outcome.commands_applied,
        outcome.clients_served
    );
    if let Some(path) = args.get("trace") {
        std::fs::write(path, manager.recorder().to_jsonl())?;
        println!("event trace written to {path}");
    }
    Ok(())
}

/// `flower serve --replay`: deterministic re-run of a recorded live
/// session.
fn replay_recording(args: &Args, record_path: &str) -> CmdResult {
    let text = std::fs::read_to_string(record_path)?;
    let recording = parse_recording(&text).map_err(|e| format!("{record_path}: {e}"))?;
    let spec = EpisodeSpec::from_map(&recording.episode)?;
    let mut manager = spec.build(true)?;
    replay(
        &mut manager,
        SimDuration::from_mins(spec.minutes),
        &recording.commands,
    )?;
    println!(
        "replayed {} command(s) over a {} min episode (seed {})",
        recording.commands.len(),
        spec.minutes,
        spec.seed
    );
    if let Some(path) = args.get("trace") {
        std::fs::write(path, manager.recorder().to_jsonl())?;
        println!("event trace written to {path}");
    }
    Ok(())
}

/// `flower client`: a line-mode `flower-wire/v1` client. Connects,
/// optionally plays a script (one frame per line; `!sleep MS` pauses;
/// `#` comments), prints every server frame to stdout, and exits when
/// the server says bye (closes the connection).
pub fn client(args: &Args) -> CmdResult {
    let addr = args
        .get("connect")
        .ok_or("client needs --connect HOST:PORT")?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let read_half = stream.try_clone()?;
    let printer = std::thread::spawn(move || {
        let reader = BufReader::new(read_half);
        let mut frames = 0u64;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            println!("{line}");
            frames += 1;
        }
        frames
    });

    let mut write_half = stream;
    match args.get("script") {
        Some(path) => {
            let script = std::fs::read_to_string(path)?;
            for line in script.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some(ms) = line.strip_prefix("!sleep ") {
                    let ms: u64 = ms
                        .trim()
                        .parse()
                        .map_err(|_| format!("{path}: bad directive '{line}'"))?;
                    std::thread::sleep(Duration::from_millis(ms));
                    continue;
                }
                writeln!(write_half, "{line}")?;
            }
        }
        None => {
            writeln!(write_half, "{{\"frame\":\"subscribe\"}}")?;
        }
    }
    // Keep the connection open for the stream; the printer thread ends
    // when the server closes after its bye frame.
    let frames = printer
        .join()
        .map_err(|_| "client reader thread panicked")?;
    eprintln!("connection closed after {frames} frame(s)");
    Ok(())
}
