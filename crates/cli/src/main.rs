// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! `flower` — the command-line front end of the Flower reproduction.
//!
//! Mirrors the demo walkthrough of the paper's §4 as subcommands:
//!
//! ```text
//! flower run      # build a flow, attach controllers, run an episode
//! flower plan     # resource share analysis (§3.2, Fig. 4)
//! flower analyze  # workload dependency analysis (§3.1, Fig. 2 / Eq. 2)
//! flower monitor  # cross-platform monitoring snapshot (§3.4, Fig. 6)
//! flower trace    # summarize a structured event trace (flower-trace/v1)
//! flower serve    # host a live episode behind flower-wire/v1
//! flower client   # line-mode client for a running `flower serve`
//! ```
//!
//! Run `flower help` (or any subcommand with bad options) for usage.

mod args;
mod commands;
mod live;

use args::Args;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    let code = match args.command.as_deref() {
        Some("run") => commands::run(&args),
        Some("plan") => commands::plan(&args),
        Some("analyze") => commands::analyze(&args),
        Some("monitor") => commands::monitor(&args),
        Some("trace") => commands::trace(&args),
        Some("serve") => live::serve(&args),
        Some("client") => live::client(&args),
        Some("help") | None => {
            println!("{}", commands::usage());
            Ok(())
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = code {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
