//! Property-based tests over the controller implementations.

use flower_control::{
    AdaptiveConfig, AdaptiveController, Controller, FixedGainConfig, FixedGainController,
    QuasiAdaptiveConfig, QuasiAdaptiveController, RuleBasedConfig, RuleBasedController,
};
use proptest::prelude::*;

fn controllers(u_init: f64, setpoint: f64) -> Vec<Box<dyn Controller>> {
    vec![
        Box::new(AdaptiveController::new(AdaptiveConfig {
            setpoint,
            u_init,
            ..Default::default()
        })),
        Box::new(AdaptiveController::new(AdaptiveConfig {
            setpoint,
            u_init,
            gain_memory: false,
            ..Default::default()
        })),
        Box::new(FixedGainController::new(FixedGainConfig {
            setpoint,
            u_init,
            ..Default::default()
        })),
        Box::new(QuasiAdaptiveController::new(QuasiAdaptiveConfig {
            setpoint,
            u_init,
            ..Default::default()
        })),
        Box::new(RuleBasedController::new(RuleBasedConfig {
            high: setpoint + 15.0,
            low: setpoint - 15.0,
            u_init,
            ..Default::default()
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every controller: the actuator stays finite under arbitrary
    /// bounded measurement sequences, and reset restores the initial
    /// actuator.
    #[test]
    fn actuator_stays_finite_and_reset_works(
        measurements in prop::collection::vec(0.0..200.0f64, 1..100),
        u_init in 1.0..50.0f64,
    ) {
        for mut c in controllers(u_init, 60.0) {
            for &y in &measurements {
                let u = c.step(y);
                prop_assert!(u.is_finite(), "{} produced a non-finite actuator", c.name());
            }
            c.reset();
            prop_assert_eq!(c.actuator(), u_init, "{} reset failed", c.name());
        }
    }

    /// Every controller holds steady (or within one rule-step) at the
    /// setpoint: feeding the exact setpoint never changes the actuator
    /// for integral-style controllers.
    #[test]
    fn setpoint_input_is_a_fixed_point(u_init in 1.0..50.0f64) {
        for mut c in controllers(u_init, 60.0) {
            for _ in 0..20 {
                c.step(60.0);
            }
            prop_assert!(
                (c.actuator() - u_init).abs() < 1e-9,
                "{} drifted from {} to {} at the setpoint",
                c.name(),
                u_init,
                c.actuator()
            );
        }
    }

    /// Direction correctness: a persistently high measurement never
    /// shrinks the actuator; a persistently low one never grows it.
    #[test]
    fn monotone_response_direction(
        high in 80.0..200.0f64,
        low in 0.0..40.0f64,
        u_init in 2.0..50.0f64,
    ) {
        for mut c in controllers(u_init, 60.0) {
            let mut prev = c.actuator();
            for _ in 0..30 {
                let u = c.step(high);
                prop_assert!(u >= prev - 1e-9, "{} shrank under overload", c.name());
                prev = u;
            }
            c.reset();
            let mut prev = c.actuator();
            for _ in 0..30 {
                let u = c.step(low);
                prop_assert!(u <= prev + 1e-9, "{} grew under underload", c.name());
                prev = u;
            }
        }
    }

    /// sync_actuator is authoritative: after syncing, the controller
    /// continues from exactly the synced value.
    #[test]
    fn sync_is_authoritative(
        synced in 1.0..100.0f64,
        y in 0.0..150.0f64,
    ) {
        for mut c in controllers(5.0, 60.0) {
            c.step(90.0);
            c.sync_actuator(synced);
            prop_assert_eq!(c.actuator(), synced);
            let u = c.step(y);
            // One step moves the actuator from the synced value, in the
            // direction of the error (or holds within dead bands).
            if y > 60.0 {
                prop_assert!(u >= synced - 1e-9);
            } else if y < 60.0 {
                prop_assert!(u <= synced + 1e-9);
            }
        }
    }

    /// The adaptive gain never leaves its clamp interval, whatever the
    /// measurement stream (the Eq. 7 guarantee the stability analysis
    /// rests on).
    #[test]
    fn adaptive_gain_always_clamped(
        measurements in prop::collection::vec(0.0..500.0f64, 1..200),
        l_min in 0.001..0.05f64,
        span in 0.01..2.0f64,
        gamma in 0.0001..0.01f64,
    ) {
        let l_max = l_min + span;
        let mut c = AdaptiveController::new(AdaptiveConfig {
            setpoint: 60.0,
            gamma,
            l_min,
            l_max,
            l_init: l_min,
            u_init: 5.0,
            gain_memory: true,
            memory_len: 16,
        });
        for &y in &measurements {
            c.step(y);
            prop_assert!(c.gain() >= l_min - 1e-12);
            prop_assert!(c.gain() <= l_max + 1e-12);
        }
        // Remembered gains are clamped too.
        for g in c.gain_history() {
            prop_assert!(g >= l_min - 1e-12 && g <= l_max + 1e-12);
        }
    }
}
