// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Property-based tests over the controller implementations, driven by
//! the deterministic `testkit` harness (seeded cases, reproducible).

use flower_control::{
    AdaptiveConfig, AdaptiveController, Controller, FixedGainConfig, FixedGainController,
    QuasiAdaptiveConfig, QuasiAdaptiveController, RuleBasedConfig, RuleBasedController,
};
use flower_sim::testkit::{forall, vec_f64};

fn controllers(u_init: f64, setpoint: f64) -> Vec<Box<dyn Controller>> {
    vec![
        Box::new(AdaptiveController::new(AdaptiveConfig {
            setpoint,
            u_init,
            ..Default::default()
        })),
        Box::new(AdaptiveController::new(AdaptiveConfig {
            setpoint,
            u_init,
            gain_memory: false,
            ..Default::default()
        })),
        Box::new(FixedGainController::new(FixedGainConfig {
            setpoint,
            u_init,
            ..Default::default()
        })),
        Box::new(QuasiAdaptiveController::new(QuasiAdaptiveConfig {
            setpoint,
            u_init,
            ..Default::default()
        })),
        Box::new(RuleBasedController::new(RuleBasedConfig {
            high: setpoint + 15.0,
            low: setpoint - 15.0,
            u_init,
            ..Default::default()
        })),
    ]
}

/// Every controller: the actuator stays finite under arbitrary bounded
/// measurement sequences, and reset restores the initial actuator.
#[test]
fn actuator_stays_finite_and_reset_works() {
    forall(48, |rng| {
        let measurements = vec_f64(rng, 0.0, 200.0, 1, 99);
        let u_init = rng.uniform(1.0, 50.0);
        for mut c in controllers(u_init, 60.0) {
            for &y in &measurements {
                let u = c.step(y);
                assert!(u.is_finite(), "{} produced a non-finite actuator", c.name());
            }
            c.reset();
            assert!(
                (c.actuator() - u_init).abs() < 1e-12,
                "{} reset failed",
                c.name()
            );
        }
    });
}

/// Every controller holds steady (or within one rule-step) at the
/// setpoint: feeding the exact setpoint never changes the actuator for
/// integral-style controllers.
#[test]
fn setpoint_input_is_a_fixed_point() {
    forall(48, |rng| {
        let u_init = rng.uniform(1.0, 50.0);
        for mut c in controllers(u_init, 60.0) {
            for _ in 0..20 {
                c.step(60.0);
            }
            assert!(
                (c.actuator() - u_init).abs() < 1e-9,
                "{} drifted from {} to {} at the setpoint",
                c.name(),
                u_init,
                c.actuator()
            );
        }
    });
}

/// Direction correctness: a persistently high measurement never shrinks
/// the actuator; a persistently low one never grows it.
#[test]
fn monotone_response_direction() {
    forall(48, |rng| {
        let high = rng.uniform(80.0, 200.0);
        let low = rng.uniform(0.0, 40.0);
        let u_init = rng.uniform(2.0, 50.0);
        for mut c in controllers(u_init, 60.0) {
            let mut prev = c.actuator();
            for _ in 0..30 {
                let u = c.step(high);
                assert!(u >= prev - 1e-9, "{} shrank under overload", c.name());
                prev = u;
            }
            c.reset();
            let mut prev = c.actuator();
            for _ in 0..30 {
                let u = c.step(low);
                assert!(u <= prev + 1e-9, "{} grew under underload", c.name());
                prev = u;
            }
        }
    });
}

/// sync_actuator is authoritative: after syncing, the controller
/// continues from exactly the synced value.
#[test]
fn sync_is_authoritative() {
    forall(48, |rng| {
        let synced = rng.uniform(1.0, 100.0);
        let y = rng.uniform(0.0, 150.0);
        for mut c in controllers(5.0, 60.0) {
            c.step(90.0);
            c.sync_actuator(synced);
            assert!((c.actuator() - synced).abs() < 1e-12);
            let u = c.step(y);
            // One step moves the actuator from the synced value, in the
            // direction of the error (or holds within dead bands).
            if y > 60.0 {
                assert!(u >= synced - 1e-9);
            } else if y < 60.0 {
                assert!(u <= synced + 1e-9);
            }
        }
    });
}

/// The adaptive gain never leaves its clamp interval, whatever the
/// measurement stream (the Eq. 7 guarantee the stability analysis rests
/// on).
#[test]
fn adaptive_gain_always_clamped() {
    forall(48, |rng| {
        let measurements = vec_f64(rng, 0.0, 500.0, 1, 199);
        let l_min = rng.uniform(0.001, 0.05);
        let span = rng.uniform(0.01, 2.0);
        let gamma = rng.uniform(0.0001, 0.01);
        let l_max = l_min + span;
        let mut c = AdaptiveController::new(AdaptiveConfig {
            setpoint: 60.0,
            gamma,
            l_min,
            l_max,
            l_init: l_min,
            u_init: 5.0,
            gain_memory: true,
            memory_len: 16,
        });
        for &y in &measurements {
            c.step(y);
            assert!(c.gain() >= l_min - 1e-12);
            assert!(c.gain() <= l_max + 1e-12);
        }
        // Remembered gains are clamped too.
        for g in c.gain_history() {
            assert!(g >= l_min - 1e-12 && g <= l_max + 1e-12);
        }
    });
}
