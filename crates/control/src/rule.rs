//! The rule-based baseline — the threshold autoscaler the paper's
//! introduction critiques (Amazon Auto Scaling, reference [1]):
//! "simple rule-based techniques that quickly trigger in response to
//! predefined threshold violations … they often fail to adapt to
//! unplanned or unforeseen changes in demand."
//!
//! Semantics mirror AWS target-less step scaling: when the measurement
//! breaches a threshold for `breach_count` consecutive evaluations, add
//! or remove a *fixed* number of units, then hold through a cooldown.

use crate::Controller;

/// Configuration of the rule-based autoscaler.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleBasedConfig {
    /// Scale-out threshold (acts when `y > high`).
    pub high: f64,
    /// Scale-in threshold (acts when `y < low`).
    pub low: f64,
    /// Consecutive breaches required before acting.
    pub breach_count: u32,
    /// Units added per scale-out action.
    pub step_up: f64,
    /// Units removed per scale-in action.
    pub step_down: f64,
    /// Evaluations to skip after any action.
    pub cooldown_steps: u32,
    /// Initial actuator value.
    pub u_init: f64,
}

impl Default for RuleBasedConfig {
    fn default() -> Self {
        RuleBasedConfig {
            high: 75.0,
            low: 35.0,
            breach_count: 2,
            step_up: 2.0,
            step_down: 1.0,
            cooldown_steps: 3,
            u_init: 1.0,
        }
    }
}

/// The rule-based autoscaler.
#[derive(Debug, Clone)]
pub struct RuleBasedController {
    config: RuleBasedConfig,
    u: f64,
    high_breaches: u32,
    low_breaches: u32,
    cooldown: u32,
    actions: u64,
}

impl RuleBasedController {
    /// Build from configuration.
    pub fn new(config: RuleBasedConfig) -> RuleBasedController {
        assert!(
            config.low < config.high,
            "low threshold must sit below high"
        );
        assert!(config.breach_count >= 1, "breach count must be at least 1");
        assert!(config.step_up > 0.0 && config.step_down > 0.0);
        RuleBasedController {
            u: config.u_init,
            config,
            high_breaches: 0,
            low_breaches: 0,
            cooldown: 0,
            actions: 0,
        }
    }

    /// Number of scaling actions taken so far.
    pub fn actions(&self) -> u64 {
        self.actions
    }
}

impl Controller for RuleBasedController {
    fn step(&mut self, measurement: f64) -> f64 {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return self.u;
        }
        if measurement > self.config.high {
            self.high_breaches += 1;
            self.low_breaches = 0;
        } else if measurement < self.config.low {
            self.low_breaches += 1;
            self.high_breaches = 0;
        } else {
            self.high_breaches = 0;
            self.low_breaches = 0;
        }

        if self.high_breaches >= self.config.breach_count {
            self.u += self.config.step_up;
            self.high_breaches = 0;
            self.cooldown = self.config.cooldown_steps;
            self.actions += 1;
        } else if self.low_breaches >= self.config.breach_count {
            self.u -= self.config.step_down;
            self.low_breaches = 0;
            self.cooldown = self.config.cooldown_steps;
            self.actions += 1;
        }
        self.u
    }

    fn actuator(&self) -> f64 {
        self.u
    }

    fn sync_actuator(&mut self, actual: f64) {
        self.u = actual;
    }

    fn setpoint(&self) -> f64 {
        // The "setpoint" of a band controller is the band centre.
        (self.config.high + self.config.low) / 2.0
    }

    fn set_setpoint(&mut self, setpoint: f64) {
        // Shift the band to keep its width, centred on the new setpoint.
        let half = (self.config.high - self.config.low) / 2.0;
        self.config.high = setpoint + half;
        self.config.low = setpoint - half;
    }

    fn name(&self) -> &str {
        "rule-based"
    }

    fn reset(&mut self) {
        self.u = self.config.u_init;
        self.high_breaches = 0;
        self.low_breaches = 0;
        self.cooldown = 0;
        self.actions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> RuleBasedController {
        RuleBasedController::new(RuleBasedConfig {
            high: 75.0,
            low: 35.0,
            breach_count: 2,
            step_up: 2.0,
            step_down: 1.0,
            cooldown_steps: 3,
            u_init: 4.0,
        })
    }

    #[test]
    fn needs_consecutive_breaches() {
        let mut c = controller();
        assert_eq!(c.step(90.0), 4.0, "first breach: no action");
        assert_eq!(c.step(90.0), 6.0, "second consecutive breach: scale out");
    }

    #[test]
    fn interrupted_breaches_reset_the_count() {
        let mut c = controller();
        c.step(90.0);
        c.step(50.0); // back in band
        assert_eq!(c.step(90.0), 4.0, "count restarted");
    }

    #[test]
    fn cooldown_blocks_actions() {
        let mut c = controller();
        c.step(90.0);
        c.step(90.0); // action, cooldown = 3
        assert_eq!(c.actuator(), 6.0);
        for _ in 0..3 {
            assert_eq!(c.step(99.0), 6.0, "cooldown holds");
        }
        // Cooldown over; two more breaches trigger again.
        c.step(99.0);
        assert_eq!(c.step(99.0), 8.0);
        assert_eq!(c.actions(), 2);
    }

    #[test]
    fn scales_in_below_low() {
        let mut c = controller();
        c.step(10.0);
        assert_eq!(c.step(10.0), 3.0);
    }

    #[test]
    fn fixed_step_cannot_match_big_disturbances() {
        // The core weakness vs the adaptive controller: a huge spike
        // still only earns +2 units per (breach_count + cooldown) window.
        let mut c = controller();
        for _ in 0..12 {
            c.step(100.0);
        }
        // 12 steps: action every (2 breaches + 3 cooldown = 5) steps ⇒
        // at most 3 actions.
        assert!(c.actuator() <= 4.0 + 3.0 * 2.0);
    }

    #[test]
    fn setpoint_maps_to_band_centre() {
        let mut c = controller();
        assert_eq!(c.setpoint(), 55.0);
        c.set_setpoint(65.0);
        assert_eq!(c.setpoint(), 65.0);
        // Band width preserved: 85/45.
        assert_eq!(c.step(84.0), 4.0, "inside shifted band");
        c.step(86.0);
        assert_eq!(c.step(86.0), 6.0, "outside shifted band");
    }

    #[test]
    fn reset_and_sync() {
        let mut c = controller();
        c.step(90.0);
        c.step(90.0);
        c.sync_actuator(10.0);
        assert_eq!(c.actuator(), 10.0);
        c.reset();
        assert_eq!(c.actuator(), 4.0);
        assert_eq!(c.actions(), 0);
        assert_eq!(c.name(), "rule-based");
    }

    #[test]
    #[should_panic(expected = "low threshold must sit below high")]
    fn inverted_band_rejected() {
        RuleBasedController::new(RuleBasedConfig {
            high: 30.0,
            low: 60.0,
            ..Default::default()
        });
    }
}
