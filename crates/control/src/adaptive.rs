//! The paper's adaptive controller (Eqs. 6–7) with gain memory.
//!
//! Control law (Eq. 6):
//! ```text
//! u_{k+1} = u_k + l_{k+1} · (y_k − y_r)
//! ```
//!
//! Gain update law (Eq. 7):
//! ```text
//! l_{k+1} = l_k + γ(y_k − y_r)   clamped to [l_min, l_max]
//! ```
//!
//! While the error persists on one side of the setpoint the gain keeps
//! growing (bounded by `l_max`), so a large sustained disturbance is
//! answered with increasingly aggressive resizing — the "rapid
//! elasticity" of §3.3. When the measurement crosses back, the same law
//! pulls the gain down again, restoring gentle steady-state behaviour.
//! The clamping to `[l_min, l_max]` is what the companion paper's
//! stability analysis relies on.
//!
//! **Gain memory.** §3.3 distinguishes Flower from fixed-gain [12] and
//! quasi-adaptive [14] controllers by "updating the gain parameters in
//! multi-stages and keeping the history of the previously computed
//! control gains". We implement that as a bounded history of recently
//! computed gains: when the error *re-enters* the same regime (sign) after
//! an excursion, the controller warm-starts the gain from the largest
//! gain it recently needed in that regime instead of re-ramping from
//! scratch. The feature can be disabled (`gain_memory = false`) for the
//! A1 ablation.

use std::collections::VecDeque;

use crate::Controller;

/// Configuration of the adaptive controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Setpoint `y_r` (e.g. target utilization %).
    pub setpoint: f64,
    /// Gain adaptation rate γ (> 0).
    pub gamma: f64,
    /// Gain lower bound `l_min` (> 0).
    pub l_min: f64,
    /// Gain upper bound `l_max` (>= l_min).
    pub l_max: f64,
    /// Initial gain `l_0`, clamped into `[l_min, l_max]`.
    pub l_init: f64,
    /// Initial actuator value `u_0`.
    pub u_init: f64,
    /// Keep a history of computed gains and warm-start from it on regime
    /// re-entry (the paper's distinguishing feature).
    pub gain_memory: bool,
    /// How many past gains the memory retains.
    pub memory_len: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            setpoint: 60.0,
            gamma: 0.005,
            l_min: 0.01,
            l_max: 1.0,
            l_init: 0.05,
            u_init: 1.0,
            gain_memory: true,
            memory_len: 32,
        }
    }
}

/// The paper's adaptive elasticity controller.
///
/// ```
/// use flower_control::{AdaptiveConfig, AdaptiveController, Controller};
/// let mut c = AdaptiveController::new(AdaptiveConfig {
///     setpoint: 60.0,
///     u_init: 2.0,
///     ..Default::default()
/// });
/// // Persistent overload: each step adds capacity, and the per-step
/// // increment grows as the gain adapts (Eq. 7).
/// let u1 = c.step(90.0);
/// let u2 = c.step(90.0);
/// assert!(u1 > 2.0 && (u2 - u1) >= (u1 - 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    u: f64,
    l: f64,
    /// Gains computed while over the setpoint (scale-out regime).
    history_over: VecDeque<f64>,
    /// Gains computed while under the setpoint (scale-in regime).
    history_under: VecDeque<f64>,
    last_error_positive: Option<bool>,
    steps: u64,
    /// Whether the most recent step recalled a remembered gain.
    warm_started_last: bool,
    /// Total warm starts taken since construction/reset.
    warm_starts: u64,
    /// Control rounds held with a stale sensor (degraded mode).
    held_rounds: u64,
}

impl AdaptiveController {
    /// Build from configuration.
    pub fn new(config: AdaptiveConfig) -> AdaptiveController {
        assert!(config.gamma > 0.0, "gamma must be positive (Eq. 7)");
        assert!(config.l_min > 0.0, "l_min must be positive (Eq. 7)");
        assert!(config.l_max >= config.l_min, "l_max must be >= l_min");
        assert!(config.memory_len > 0, "memory length must be positive");
        let l = config.l_init.clamp(config.l_min, config.l_max);
        AdaptiveController {
            u: config.u_init,
            l,
            history_over: VecDeque::with_capacity(config.memory_len),
            history_under: VecDeque::with_capacity(config.memory_len),
            last_error_positive: None,
            config,
            steps: 0,
            warm_started_last: false,
            warm_starts: 0,
            held_rounds: 0,
        }
    }

    /// Current controller gain `l_k`.
    pub fn gain(&self) -> f64 {
        self.l
    }

    /// The remembered gains across both regimes (scale-out first).
    pub fn gain_history(&self) -> impl Iterator<Item = f64> + '_ {
        self.history_over
            .iter()
            .chain(self.history_under.iter())
            .copied()
    }

    /// Number of control steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of steps that warm-started the gain from memory (regime
    /// re-entries where a remembered gain beat the current one).
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// Control rounds spent held in degraded mode (see
    /// [`Controller::hold`]).
    pub fn held_rounds(&self) -> u64 {
        self.held_rounds
    }

    fn remember(&mut self, positive_error: bool, gain: f64) {
        let history = if positive_error {
            &mut self.history_over
        } else {
            &mut self.history_under
        };
        if history.len() == self.config.memory_len {
            history.pop_front();
        }
        history.push_back(gain);
    }

    /// Largest remembered gain for the given error regime.
    fn recall(&self, positive_error: bool) -> Option<f64> {
        let history = if positive_error {
            &self.history_over
        } else {
            &self.history_under
        };
        history
            .iter()
            .copied()
            .fold(None, |acc, g| Some(acc.map_or(g, |a: f64| a.max(g))))
    }
}

impl Controller for AdaptiveController {
    fn step(&mut self, measurement: f64) -> f64 {
        let error = measurement - self.config.setpoint;
        let positive = error > 0.0;
        // False exactly at the setpoint (and on a NaN measurement), where
        // the error has no direction to remember.
        let has_direction = error.abs() > 0.0;

        // Regime re-entry: warm-start from history (the memory feature).
        // The warm start applies to the *scale-out* regime only: rapid
        // elasticity means acquiring resources "as soon as required"
        // (§1); releasing them reuses the cautious freshly-adapted gain,
        // so a remembered aggressive scale-in can never amplify the next
        // disturbance.
        self.warm_started_last = false;
        if self.config.gain_memory && has_direction {
            if positive && self.last_error_positive != Some(true) {
                if let Some(remembered) = self.recall(true) {
                    if remembered > self.l {
                        self.l = remembered;
                        self.warm_started_last = true;
                        self.warm_starts += 1;
                    }
                }
            }
            self.last_error_positive = Some(positive);
        }

        // Gain update law (Eq. 7): drift the gain along the error, clamp.
        self.l = (self.l + self.config.gamma * error).clamp(self.config.l_min, self.config.l_max);

        if self.config.gain_memory && has_direction {
            self.remember(positive, self.l);
        }

        // Control law (Eq. 6).
        self.u += self.l * error;
        self.steps += 1;
        self.u
    }

    fn actuator(&self) -> f64 {
        self.u
    }

    fn sync_actuator(&mut self, actual: f64) {
        self.u = actual;
    }

    fn setpoint(&self) -> f64 {
        self.config.setpoint
    }

    fn set_setpoint(&mut self, setpoint: f64) {
        self.config.setpoint = setpoint;
    }

    fn name(&self) -> &str {
        "adaptive"
    }

    fn reset(&mut self) {
        self.u = self.config.u_init;
        self.l = self
            .config
            .l_init
            .clamp(self.config.l_min, self.config.l_max);
        self.history_over.clear();
        self.history_under.clear();
        self.last_error_positive = None;
        self.steps = 0;
        self.warm_started_last = false;
        self.warm_starts = 0;
        self.held_rounds = 0;
    }

    fn current_gain(&self) -> Option<f64> {
        Some(self.l)
    }

    fn warm_started(&self) -> bool {
        self.warm_started_last
    }

    fn hold(&mut self) {
        // Degraded mode: no measurement arrived, so neither Eq. 6 nor
        // Eq. 7 runs — `u`, `l`, and the gain memory all stay frozen.
        // Only bookkeeping moves.
        self.warm_started_last = false;
        self.held_rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(gain_memory: bool) -> AdaptiveController {
        AdaptiveController::new(AdaptiveConfig {
            setpoint: 60.0,
            gamma: 0.01,
            l_min: 0.01,
            l_max: 2.0,
            l_init: 0.1,
            u_init: 4.0,
            gain_memory,
            memory_len: 16,
        })
    }

    #[test]
    fn over_setpoint_adds_capacity() {
        let mut c = controller(false);
        let u0 = c.actuator();
        let u1 = c.step(90.0);
        assert!(u1 > u0, "u must grow when y > y_r");
    }

    #[test]
    fn under_setpoint_releases_capacity() {
        let mut c = controller(false);
        let u0 = c.actuator();
        let u1 = c.step(20.0);
        assert!(u1 < u0, "u must shrink when y < y_r");
    }

    #[test]
    fn at_setpoint_holds() {
        let mut c = controller(false);
        let u0 = c.actuator();
        assert_eq!(c.step(60.0), u0);
    }

    #[test]
    fn gain_ramps_under_persistent_error() {
        // Eq. 7: while the error persists, the gain keeps growing.
        let mut c = controller(false);
        let mut last_gain = c.gain();
        let mut deltas = Vec::new();
        let mut prev_u = c.actuator();
        for _ in 0..10 {
            let u = c.step(90.0);
            deltas.push(u - prev_u);
            prev_u = u;
            assert!(c.gain() >= last_gain);
            last_gain = c.gain();
        }
        // The per-step increments themselves grow: rapid elasticity.
        assert!(deltas[9] > deltas[0] * 2.0, "deltas={deltas:?}");
    }

    #[test]
    fn gain_is_clamped_at_bounds() {
        let mut c = controller(false);
        for _ in 0..10_000 {
            c.step(100.0);
        }
        assert!((c.gain() - 2.0).abs() < 1e-12, "upper clamp");
        c.reset();
        for _ in 0..10_000 {
            c.step(0.0);
        }
        assert!((c.gain() - 0.01).abs() < 1e-12, "lower clamp");
    }

    #[test]
    fn gain_decreases_after_crossing() {
        let mut c = controller(false);
        for _ in 0..20 {
            c.step(90.0);
        }
        let peak = c.gain();
        for _ in 0..5 {
            c.step(50.0);
        }
        assert!(c.gain() < peak, "gain must fall once y < y_r");
    }

    #[test]
    fn memory_warm_starts_on_regime_reentry() {
        let mut with = controller(true);
        let mut without = controller(false);
        // Phase 1: long overload ramps both gains up.
        for _ in 0..30 {
            with.step(95.0);
            without.step(95.0);
        }
        // Phase 2: dip below the setpoint pulls the gain down.
        for _ in 0..25 {
            with.step(30.0);
            without.step(30.0);
        }
        assert!(without.gain() <= 0.02, "memoryless gain collapsed");
        // Phase 3: overload returns. With memory, the first step recalls
        // the big gain; without, it re-ramps from the floor.
        let before_with = with.actuator();
        let before_without = without.actuator();
        let du_with = with.step(95.0) - before_with;
        let du_without = without.step(95.0) - before_without;
        assert!(
            du_with > du_without * 3.0,
            "memory should react much faster: {du_with} vs {du_without}"
        );
    }

    #[test]
    fn warm_start_telemetry_is_exposed() {
        let mut c = controller(true);
        assert_eq!(c.current_gain(), Some(0.1));
        assert!(!c.warm_started());
        // Ramp up, dip out, and re-enter the scale-out regime.
        for _ in 0..30 {
            c.step(95.0);
        }
        for _ in 0..25 {
            c.step(30.0);
        }
        assert_eq!(c.warm_starts(), 0, "no re-entry yet");
        c.step(95.0);
        assert!(c.warm_started(), "re-entry recalls the remembered gain");
        assert_eq!(c.warm_starts(), 1);
        // The flag reports only the most recent step.
        c.step(95.0);
        assert!(!c.warm_started());
        assert_eq!(c.warm_starts(), 1);
        assert_eq!(c.current_gain(), Some(c.gain()));
        c.reset();
        assert_eq!(c.warm_starts(), 0);
    }

    #[test]
    fn memoryless_controller_never_warm_starts() {
        let mut c = controller(false);
        for i in 0..40 {
            c.step(if i % 3 == 0 { 30.0 } else { 95.0 });
            assert!(!c.warm_started());
        }
        assert_eq!(c.warm_starts(), 0);
    }

    #[test]
    fn memory_is_bounded() {
        let mut c = controller(true);
        for i in 0..200 {
            c.step(if i % 2 == 0 { 80.0 } else { 40.0 });
        }
        // Each regime keeps at most `memory_len` gains.
        assert!(c.gain_history().count() <= 32);
    }

    #[test]
    fn hold_freezes_gain_actuator_and_memory() {
        let mut c = controller(true);
        // Ramp the gain up and populate the scale-out memory.
        for _ in 0..20 {
            c.step(95.0);
        }
        let gain = c.gain();
        let u = c.actuator();
        let remembered = c.gain_history().count();
        let steps = c.steps();
        for _ in 0..5 {
            c.hold();
        }
        assert_eq!(c.gain(), gain, "Eq. 7 gain must stay frozen while held");
        assert_eq!(c.actuator(), u, "Eq. 6 actuator must stay frozen");
        assert_eq!(c.gain_history().count(), remembered, "memory untouched");
        assert_eq!(c.steps(), steps, "held rounds are not control steps");
        assert_eq!(c.held_rounds(), 5);
        assert!(!c.warm_started(), "hold clears the warm-start flag");
        // Recovery: the next real step resumes from the frozen gain.
        let before = c.actuator();
        let after = c.step(95.0);
        assert!((after - before - gain_effect(gain, 95.0 - 60.0)).abs() < 1.0);
        c.reset();
        assert_eq!(c.held_rounds(), 0);
    }

    /// The Eq. 6 increment for a gain near `l` and error `e` (the gain
    /// drifts by γ·e within the step, hence "near").
    fn gain_effect(l: f64, e: f64) -> f64 {
        l * e
    }

    #[test]
    fn default_hold_is_a_noop_for_stateless_controllers() {
        // The trait default must compile and do nothing observable.
        struct Bang(f64);
        impl Controller for Bang {
            fn step(&mut self, _m: f64) -> f64 {
                self.0
            }
            fn actuator(&self) -> f64 {
                self.0
            }
            fn sync_actuator(&mut self, actual: f64) {
                self.0 = actual;
            }
            fn setpoint(&self) -> f64 {
                0.0
            }
            fn set_setpoint(&mut self, _s: f64) {}
            fn name(&self) -> &str {
                "bang"
            }
            fn reset(&mut self) {}
        }
        let mut b = Bang(3.0);
        b.hold();
        assert_eq!(b.actuator(), 3.0);
    }

    #[test]
    fn sync_actuator_overrides_state() {
        let mut c = controller(false);
        c.step(90.0);
        c.sync_actuator(7.0);
        assert_eq!(c.actuator(), 7.0);
        // Next step builds on the synced value.
        let u = c.step(60.0);
        assert_eq!(u, 7.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = controller(true);
        for _ in 0..50 {
            c.step(95.0);
        }
        c.reset();
        assert_eq!(c.actuator(), 4.0);
        assert!((c.gain() - 0.1).abs() < 1e-12);
        assert_eq!(c.gain_history().count(), 0);
        assert_eq!(c.steps(), 0);
    }

    #[test]
    fn setpoint_is_mutable() {
        let mut c = controller(false);
        assert_eq!(c.setpoint(), 60.0);
        c.set_setpoint(75.0);
        assert_eq!(c.setpoint(), 75.0);
        let u0 = c.actuator();
        assert_eq!(c.step(75.0), u0, "no error at the new setpoint");
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn invalid_gamma_rejected() {
        AdaptiveController::new(AdaptiveConfig {
            gamma: 0.0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "l_max must be >= l_min")]
    fn inverted_gain_bounds_rejected() {
        AdaptiveController::new(AdaptiveConfig {
            l_min: 1.0,
            l_max: 0.5,
            ..Default::default()
        });
    }
}
