//! Response-quality metrics for comparing controllers.
//!
//! The paper claims (§3.3, detailed in its companion journal paper [9])
//! that the adaptive controller with gain memory outperforms the
//! fixed-gain [12] and quasi-adaptive [14] baselines. These are the
//! metrics that comparison is scored on: settling time after a
//! disturbance, overshoot, steady-state error, oscillation count, and
//! integral absolute error.

use flower_sim::SimTime;

/// The discrete-time stability bound for an integral controller on a
/// utilization-style plant.
///
/// Near an operating point `(u, y)` of a plant where the measurement is
/// inversely proportional to the actuator (`y ≈ k/u`, the shape of every
/// utilization metric), the local plant gain is `∂y/∂u = −y/u`, so the
/// loop `u_{k+1} = u_k + l(y_k − y_r)` is locally asymptotically stable
/// iff `l·y/u < 2`. This is the bound the paper's companion work grounds
/// its gain clamping `[l_min, l_max]` in, and what our default controller
/// configurations are sized against.
pub fn integral_gain_stability_bound(actuator: f64, measurement: f64) -> f64 {
    assert!(actuator > 0.0, "actuator must be positive");
    assert!(measurement > 0.0, "measurement must be positive");
    2.0 * actuator / measurement
}

/// Whether a gain is locally stable at the operating point.
pub fn gain_is_stable(gain: f64, actuator: f64, measurement: f64) -> bool {
    gain < integral_gain_stability_bound(actuator, measurement)
}

/// Summary metrics of one measurement trace against a setpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseMetrics {
    /// First time from which the measurement stays within
    /// `setpoint ± band` for the remainder of the trace; `None` when it
    /// never settles.
    pub settling_time: Option<SimTime>,
    /// Peak excursion above the setpoint after the first crossing,
    /// as an absolute value (0 when the trace never overshoots).
    pub overshoot: f64,
    /// Mean absolute error over the final quarter of the trace.
    pub steady_state_error: f64,
    /// Number of times the error changes sign (setpoint crossings).
    pub oscillations: usize,
    /// Integral of |error| over time (trapezoidal, error·seconds).
    pub integral_abs_error: f64,
    /// Fraction of samples outside `setpoint ± band` — the SLO-violation
    /// rate when the band encodes the SLO.
    pub violation_rate: f64,
}

impl ResponseMetrics {
    /// Score a trace of `(time, measurement)` samples against `setpoint`
    /// with tolerance `band`.
    ///
    /// # Panics
    /// Panics on an empty trace or a negative band.
    pub fn of(trace: &[(SimTime, f64)], setpoint: f64, band: f64) -> ResponseMetrics {
        assert!(!trace.is_empty(), "cannot score an empty trace");
        assert!(band >= 0.0, "band must be non-negative");

        // Settling time: last index that is *outside* the band decides it.
        let last_outside = trace
            .iter()
            .rposition(|&(_, y)| (y - setpoint).abs() > band);
        let settling_time = match last_outside {
            None => trace.first().map(|&(t, _)| t),
            Some(i) if i + 1 < trace.len() => Some(trace[i + 1].0),
            Some(_) => None,
        };

        // Overshoot: peak |error| after the first time the trace crosses
        // the setpoint (before the first crossing the excursion is the
        // initial condition, not overshoot).
        let first_cross =
            trace
                .iter()
                .zip(trace.iter().skip(1))
                .position(|(&(_, y0), &(_, y1))| {
                    let e0 = y0 - setpoint;
                    let e1 = y1 - setpoint;
                    // `abs() <= 0` catches a sample landing exactly on the
                    // setpoint (±0.0) without a float equality. The sign
                    // flip is read off the sign bit: identical to comparing
                    // signum() for every non-NaN value (including signed
                    // zeros), but a bool compare — no NaN-unsafe float `!=`.
                    e0.abs() <= 0.0 || e0.is_sign_positive() != e1.is_sign_positive()
                });
        let overshoot = match first_cross {
            None => 0.0,
            Some(i) => trace[i + 1..]
                .iter()
                .map(|&(_, y)| (y - setpoint).abs())
                .fold(0.0, f64::max),
        };

        // Steady-state error: mean |error| over the final quarter.
        let tail_start = trace.len() - (trace.len() / 4).max(1);
        let tail = &trace[tail_start..];
        let steady_state_error =
            tail.iter().map(|&(_, y)| (y - setpoint).abs()).sum::<f64>() / tail.len() as f64;

        // Oscillations: sign changes of the error (zero treated as
        // continuing the previous sign).
        let mut oscillations = 0;
        let mut prev_sign = 0i8;
        for &(_, y) in trace {
            let e = y - setpoint;
            let sign = if e > 0.0 {
                1
            } else if e < 0.0 {
                -1
            } else {
                prev_sign
            };
            if prev_sign != 0 && sign != 0 && sign != prev_sign {
                oscillations += 1;
            }
            if sign != 0 {
                prev_sign = sign;
            }
        }

        // IAE by the trapezoid rule over time.
        let mut integral_abs_error = 0.0;
        for (&(t0, y0), &(t1, y1)) in trace.iter().zip(trace.iter().skip(1)) {
            let dt = (t1 - t0).as_secs_f64();
            let e0 = (y0 - setpoint).abs();
            let e1 = (y1 - setpoint).abs();
            integral_abs_error += 0.5 * (e0 + e1) * dt;
        }

        let violations = trace
            .iter()
            .filter(|&&(_, y)| (y - setpoint).abs() > band)
            .count();
        let violation_rate = violations as f64 / trace.len() as f64;

        ResponseMetrics {
            settling_time,
            overshoot,
            steady_state_error,
            oscillations,
            integral_abs_error,
            violation_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(points: &[(u64, f64)]) -> Vec<(SimTime, f64)> {
        points
            .iter()
            .map(|&(s, y)| (SimTime::from_secs(s), y))
            .collect()
    }

    #[test]
    fn perfect_trace_settles_immediately() {
        let t = trace(&[(0, 60.0), (1, 60.0), (2, 60.0), (3, 60.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 5.0);
        assert_eq!(m.settling_time, Some(SimTime::ZERO));
        assert_eq!(m.overshoot, 0.0);
        assert_eq!(m.steady_state_error, 0.0);
        assert_eq!(m.oscillations, 0);
        assert_eq!(m.integral_abs_error, 0.0);
        assert_eq!(m.violation_rate, 0.0);
    }

    #[test]
    fn settling_time_finds_entry_into_band() {
        let t = trace(&[
            (0, 100.0),
            (10, 90.0),
            (20, 70.0),
            (30, 62.0),
            (40, 61.0),
            (50, 59.0),
        ]);
        let m = ResponseMetrics::of(&t, 60.0, 5.0);
        assert_eq!(m.settling_time, Some(SimTime::from_secs(30)));
    }

    #[test]
    fn never_settles_is_none() {
        let t = trace(&[(0, 100.0), (10, 100.0), (20, 100.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 5.0);
        assert_eq!(m.settling_time, None);
        assert_eq!(m.violation_rate, 1.0);
    }

    #[test]
    fn late_excursion_postpones_settling() {
        let t = trace(&[(0, 60.0), (10, 60.0), (20, 90.0), (30, 60.0), (40, 60.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 5.0);
        assert_eq!(m.settling_time, Some(SimTime::from_secs(30)));
        assert!((m.violation_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn overshoot_counts_only_after_crossing() {
        // Starts high (initial condition, not overshoot), crosses, dips to
        // 50 → overshoot = 10.
        let t = trace(&[(0, 100.0), (10, 80.0), (20, 50.0), (30, 58.0), (40, 60.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 2.0);
        assert!(
            (m.overshoot - 10.0).abs() < 1e-12,
            "overshoot={}",
            m.overshoot
        );
    }

    #[test]
    fn no_crossing_no_overshoot() {
        let t = trace(&[(0, 100.0), (10, 80.0), (20, 70.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 2.0);
        assert_eq!(m.overshoot, 0.0);
    }

    #[test]
    fn oscillations_count_sign_changes() {
        let t = trace(&[(0, 70.0), (1, 50.0), (2, 70.0), (3, 50.0), (4, 70.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 1.0);
        assert_eq!(m.oscillations, 4);
        // Touching the setpoint exactly doesn't flip the sign.
        let t2 = trace(&[(0, 70.0), (1, 60.0), (2, 70.0)]);
        assert_eq!(ResponseMetrics::of(&t2, 60.0, 1.0).oscillations, 0);
    }

    #[test]
    fn iae_trapezoid() {
        // Error 10 for 10 s then 0: trapezoid gives 0.5·(10+0)·10 = 50
        // plus the flat first span 10·10 = 100 → depends on spacing:
        let t = trace(&[(0, 70.0), (10, 70.0), (20, 60.0)]);
        let m = ResponseMetrics::of(&t, 60.0, 1.0);
        assert!((m.integral_abs_error - (100.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn steady_state_error_uses_tail() {
        let mut pts: Vec<(u64, f64)> = (0..30).map(|s| (s, 100.0)).collect();
        pts.extend((30..40).map(|s| (s, 62.0)));
        let m = ResponseMetrics::of(&trace(&pts), 60.0, 5.0);
        assert!((m.steady_state_error - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        ResponseMetrics::of(&[], 60.0, 5.0);
    }

    #[test]
    fn stability_bound_matches_theory() {
        // u = 2 units at y = 100%: bound = 0.04.
        assert!((integral_gain_stability_bound(2.0, 100.0) - 0.04).abs() < 1e-12);
        assert!(gain_is_stable(0.03, 2.0, 100.0));
        assert!(!gain_is_stable(0.05, 2.0, 100.0));
        // More units at the same utilization tolerate larger gains.
        assert!(gain_is_stable(0.05, 10.0, 100.0));
    }

    #[test]
    fn stability_bound_verified_by_simulation() {
        // Simulate the loop u' = u + l(y − 60) against y = k/u and check
        // the bound separates convergent from divergent gains.
        let simulate = |l: f64| -> bool {
            let k = 600.0; // y = 60 at u = 10
            let mut u: f64 = 10.5; // slightly off the fixed point
            for _ in 0..500 {
                let y = k / u.max(0.01);
                u += l * (y - 60.0);
                if !(0.001..1e6).contains(&u) {
                    return false;
                }
            }
            let y = k / u;
            (y - 60.0).abs() < 1.0
        };
        let bound = integral_gain_stability_bound(10.0, 60.0); // = 1/3
        assert!(simulate(bound * 0.5), "half the bound must converge");
        assert!(!simulate(bound * 2.5), "well above the bound must diverge");
    }
}
