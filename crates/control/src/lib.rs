// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-control
//!
//! Elasticity controllers for data analytics flows — the heart of the
//! Flower paper's §3.3 (*Resource Provisioning*).
//!
//! All controllers share one discrete-time loop shape: each monitoring
//! period the sensor reports a measurement `y_k` (typically a utilization
//! percentage), the controller computes a new actuator value `u_{k+1}`
//! (shards, VMs, or capacity units), and the actuator applies it.
//!
//! Implemented controllers:
//!
//! * [`adaptive::AdaptiveController`] — **the paper's controller**
//!   (Eqs. 6–7): integral control `u_{k+1} = u_k + l_{k+1}(y_k − y_r)`
//!   whose gain follows the clamped adaptive update law
//!   `l_{k+1} = clamp(l_k + γ(y_k − y_r), l_min, l_max)`, extended with the
//!   *gain memory* feature §3.3 highlights ("keeping the history of the
//!   previously computed control gains for rapid elasticity").
//! * [`fixed::FixedGainController`] — the fixed-gain integral controller
//!   with dead-band of Lim, Babu & Chase (ICAC 2010), the paper's
//!   reference [12].
//! * [`quasi::QuasiAdaptiveController`] — the self-tuning controller of
//!   Padala et al. (EuroSys 2007), the paper's reference [14]: an online
//!   RLS estimate of a first-order model re-derives the gain each step.
//! * [`rule::RuleBasedController`] — the threshold-plus-cooldown
//!   autoscaler the paper's introduction critiques (Amazon Auto Scaling).
//!
//! [`stability`] provides the response metrics (settling time, overshoot,
//! oscillation count, IAE) used to compare them, reproducing the shape of
//! the §3.3 claim that the adaptive controller outperforms both baselines.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod fixed;
pub mod quasi;
pub mod rule;
pub mod stability;

pub use adaptive::{AdaptiveConfig, AdaptiveController};
pub use fixed::{FixedGainConfig, FixedGainController};
pub use quasi::{QuasiAdaptiveConfig, QuasiAdaptiveController};
pub use rule::{RuleBasedConfig, RuleBasedController};
pub use stability::{gain_is_stable, integral_gain_stability_bound, ResponseMetrics};

/// A discrete-time elasticity controller.
///
/// Convention: the measurement `y` *increases* when the layer needs more
/// resources (utilization, backlog, latency), so controllers add capacity
/// while `y_k > y_r` and release it while `y_k < y_r`.
pub trait Controller {
    /// Fold one measurement and return the new (continuous) actuator
    /// value. The caller rounds/clamps it to what the cloud accepts.
    fn step(&mut self, measurement: f64) -> f64;

    /// The current actuator value the controller believes is in force.
    fn actuator(&self) -> f64;

    /// Overwrite the controller's actuator state — used when the real
    /// actuation was clamped (account limits, reshard-in-progress) so the
    /// controller does not wind up against a bound it cannot cross.
    fn sync_actuator(&mut self, actual: f64);

    /// The setpoint `y_r`.
    fn setpoint(&self) -> f64;

    /// Change the setpoint at runtime.
    fn set_setpoint(&mut self, setpoint: f64);

    /// Controller name for reports.
    fn name(&self) -> &str;

    /// Reset internal state (gain, histories) keeping configuration.
    fn reset(&mut self);

    /// The current integral gain, for controllers that have one. The
    /// observability layer records this per control round to expose the
    /// Eq. 7 gain trajectory; gain-free controllers return `None`.
    fn current_gain(&self) -> Option<f64> {
        None
    }

    /// True when the *most recent* [`Controller::step`] warm-started its
    /// gain from memory (the adaptive controller's gain-memory feature,
    /// §3.3). Always false for memoryless controllers.
    fn warm_started(&self) -> bool {
        false
    }

    /// Notify the controller that this control round is *held*: the
    /// sensor is stale (e.g. an injected metric dropout) and the loop is
    /// keeping the last-known-good actuation instead of stepping. The
    /// controller must freeze every adaptive quantity — for the paper's
    /// adaptive controller that means the Eq. 7 gain `l_k` and its gain
    /// memory stay untouched, so garbage error signals cannot corrupt
    /// them. The default is a no-op (stateless controllers need nothing).
    fn hold(&mut self) {}
}
