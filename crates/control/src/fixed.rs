//! The fixed-gain baseline controller — reference [12] of the paper
//! (Lim, Babu & Chase, *Automated control for elastic storage*,
//! ICAC 2010).
//!
//! An integral controller with a constant gain plus the "proportional
//! thresholding" dead-band of the original work: within
//! `setpoint ± dead_band` no action is taken, which suppresses actuator
//! oscillation around coarse-grained (integer) resources at the cost of
//! slower reaction to large disturbances — exactly the trade-off the
//! Flower controller's adaptive gain removes.

use crate::Controller;

/// Configuration of the fixed-gain controller.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedGainConfig {
    /// Setpoint `y_r`.
    pub setpoint: f64,
    /// The constant integral gain `l` (> 0).
    pub gain: f64,
    /// Half-width of the no-action band around the setpoint (>= 0).
    pub dead_band: f64,
    /// Initial actuator value.
    pub u_init: f64,
}

impl Default for FixedGainConfig {
    fn default() -> Self {
        FixedGainConfig {
            setpoint: 60.0,
            gain: 0.05,
            dead_band: 5.0,
            u_init: 1.0,
        }
    }
}

/// The fixed-gain integral controller with dead-band.
#[derive(Debug, Clone)]
pub struct FixedGainController {
    config: FixedGainConfig,
    u: f64,
}

impl FixedGainController {
    /// Build from configuration.
    pub fn new(config: FixedGainConfig) -> FixedGainController {
        assert!(config.gain > 0.0, "gain must be positive");
        assert!(config.dead_band >= 0.0, "dead band must be non-negative");
        FixedGainController {
            u: config.u_init,
            config,
        }
    }

    /// The (constant) gain.
    pub fn gain(&self) -> f64 {
        self.config.gain
    }
}

impl Controller for FixedGainController {
    fn step(&mut self, measurement: f64) -> f64 {
        let error = measurement - self.config.setpoint;
        if error.abs() > self.config.dead_band {
            self.u += self.config.gain * error;
        }
        self.u
    }

    fn actuator(&self) -> f64 {
        self.u
    }

    fn sync_actuator(&mut self, actual: f64) {
        self.u = actual;
    }

    fn setpoint(&self) -> f64 {
        self.config.setpoint
    }

    fn set_setpoint(&mut self, setpoint: f64) {
        self.config.setpoint = setpoint;
    }

    fn name(&self) -> &str {
        "fixed-gain"
    }

    fn reset(&mut self) {
        self.u = self.config.u_init;
    }

    fn current_gain(&self) -> Option<f64> {
        Some(self.config.gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> FixedGainController {
        FixedGainController::new(FixedGainConfig {
            setpoint: 60.0,
            gain: 0.1,
            dead_band: 5.0,
            u_init: 4.0,
        })
    }

    #[test]
    fn responds_proportionally_to_error() {
        let mut c = controller();
        let u1 = c.step(80.0); // error 20 → +2
        assert!((u1 - 6.0).abs() < 1e-12);
        let u2 = c.step(80.0);
        assert!((u2 - 8.0).abs() < 1e-12, "constant per-step increment");
    }

    #[test]
    fn dead_band_suppresses_small_errors() {
        let mut c = controller();
        assert_eq!(c.step(63.0), 4.0);
        assert_eq!(c.step(56.0), 4.0);
        assert_eq!(c.step(65.0), 4.0, "boundary is inside the band");
        assert!(c.step(66.0) > 4.0, "outside the band acts");
    }

    #[test]
    fn increment_never_grows() {
        // Contrast with the adaptive controller: under persistent error
        // the per-step increment stays constant.
        let mut c = controller();
        let mut prev = c.actuator();
        let mut deltas = Vec::new();
        for _ in 0..10 {
            let u = c.step(90.0);
            deltas.push(u - prev);
            prev = u;
        }
        for d in &deltas {
            assert!((d - deltas[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn releases_capacity_below_band() {
        let mut c = controller();
        let u = c.step(30.0); // error −30 → −3
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sync_reset_setpoint() {
        let mut c = controller();
        c.step(90.0);
        c.sync_actuator(2.0);
        assert_eq!(c.actuator(), 2.0);
        c.reset();
        assert_eq!(c.actuator(), 4.0);
        c.set_setpoint(50.0);
        assert_eq!(c.setpoint(), 50.0);
        assert_eq!(c.name(), "fixed-gain");
        assert_eq!(c.gain(), 0.1);
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn zero_gain_rejected() {
        FixedGainController::new(FixedGainConfig {
            gain: 0.0,
            ..Default::default()
        });
    }
}
