//! The quasi-adaptive baseline controller — reference [14] of the paper
//! (Padala et al., *Adaptive control of virtualized resources in utility
//! computing environments*, EuroSys 2007).
//!
//! A self-tuning regulator in velocity form: an online recursive-least-
//! squares estimator maintains a local first-order model of how a change
//! in the actuator moves the measurement,
//!
//! ```text
//! Δy_k ≈ b · Δu_{k-1}
//! ```
//!
//! and each step the controller inverts the current estimate to aim the
//! next measurement at the setpoint:
//!
//! ```text
//! u_k = u_{k-1} + (y_r − y_k) / b̂        (slew-limited)
//! ```
//!
//! For an elasticity plant `b` is negative — adding capacity lowers
//! utilization. Until the estimate is identified (or whenever it has the
//! wrong sign, which happens transiently when a workload change is
//! misattributed to the actuator), the controller falls back to a small
//! fixed integral gain, which also provides the excitation RLS needs.
//!
//! The gain is thus re-derived from the model *every step* — adaptive in
//! a sense, but with no memory of previously successful gains, which is
//! exactly the axis on which the Flower controller differs (§3.3).

use flower_stats::RecursiveLeastSquares;

use crate::Controller;

/// Configuration of the quasi-adaptive controller.
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiAdaptiveConfig {
    /// Setpoint `y_r`.
    pub setpoint: f64,
    /// RLS forgetting factor λ ∈ (0, 1].
    pub forgetting: f64,
    /// Maximum relative actuator change per step (slew limit), e.g. 0.5
    /// allows ±50% per step — Padala et al. bound the step to keep the
    /// loop inside its stability region.
    pub max_relative_step: f64,
    /// Initial actuator value.
    pub u_init: f64,
    /// Steps to observe before acting at all.
    pub warmup_steps: u64,
    /// Integral gain used while the model is unidentified or has the
    /// wrong sign.
    pub fallback_gain: f64,
}

impl Default for QuasiAdaptiveConfig {
    fn default() -> Self {
        QuasiAdaptiveConfig {
            setpoint: 60.0,
            forgetting: 0.9,
            max_relative_step: 0.5,
            u_init: 1.0,
            warmup_steps: 3,
            fallback_gain: 0.02,
        }
    }
}

/// The self-tuning (quasi-adaptive) controller.
#[derive(Debug, Clone)]
pub struct QuasiAdaptiveController {
    config: QuasiAdaptiveConfig,
    rls: RecursiveLeastSquares,
    u: f64,
    prev_y: Option<f64>,
    last_du: Option<f64>,
    steps: u64,
}

impl QuasiAdaptiveController {
    /// Build from configuration.
    pub fn new(config: QuasiAdaptiveConfig) -> QuasiAdaptiveController {
        assert!(
            config.forgetting > 0.0 && config.forgetting <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        assert!(
            config.max_relative_step > 0.0,
            "slew limit must be positive"
        );
        assert!(config.fallback_gain > 0.0, "fallback gain must be positive");
        QuasiAdaptiveController {
            rls: RecursiveLeastSquares::new(1, config.forgetting, 100.0),
            u: config.u_init,
            prev_y: None,
            last_du: None,
            config,
            steps: 0,
        }
    }

    /// Current estimate `b̂` of the actuator-to-measurement gain.
    pub fn model_gain(&self) -> f64 {
        self.rls.theta()[0]
    }

    fn slew_limit(&self, proposed: f64) -> f64 {
        let max_step = self.u.abs().max(1.0) * self.config.max_relative_step;
        proposed.clamp(self.u - max_step, self.u + max_step)
    }
}

impl Controller for QuasiAdaptiveController {
    fn step(&mut self, measurement: f64) -> f64 {
        // Fold the newest (Δu, Δy) observation into the model.
        if let (Some(py), Some(du)) = (self.prev_y, self.last_du) {
            if du.abs() > 1e-9 {
                self.rls.update(&[du], measurement - py);
            }
        }
        self.prev_y = Some(measurement);
        self.steps += 1;

        if self.steps <= self.config.warmup_steps {
            self.last_du = Some(0.0);
            return self.u;
        }

        let error = measurement - self.config.setpoint;
        let b = self.model_gain();
        // The plant gain must be negative (more capacity → lower
        // measurement). An unidentified or wrong-signed estimate falls
        // back to a conservative fixed integral step, which doubles as
        // model excitation.
        let proposed = if b < -1e-4 {
            self.u + (self.config.setpoint - measurement) / b
        } else {
            self.u + self.config.fallback_gain * error
        };
        let new_u = self.slew_limit(proposed);
        self.last_du = Some(new_u - self.u);
        self.u = new_u;
        self.u
    }

    fn actuator(&self) -> f64 {
        self.u
    }

    fn sync_actuator(&mut self, actual: f64) {
        // The intended Δu never happened; invalidate the pending
        // observation pair so the model is not poisoned.
        self.u = actual;
        self.last_du = None;
    }

    fn setpoint(&self) -> f64 {
        self.config.setpoint
    }

    fn set_setpoint(&mut self, setpoint: f64) {
        self.config.setpoint = setpoint;
    }

    fn name(&self) -> &str {
        "quasi-adaptive"
    }

    fn reset(&mut self) {
        self.rls = RecursiveLeastSquares::new(1, self.config.forgetting, 100.0);
        self.u = self.config.u_init;
        self.prev_y = None;
        self.last_du = None;
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A first-order utilization plant: y = 100·load/u (percentage of
    /// capacity u), i.e. more actuator → lower measurement.
    fn plant(load: f64, u: f64) -> f64 {
        100.0 * load / u.max(0.1)
    }

    fn controller() -> QuasiAdaptiveController {
        QuasiAdaptiveController::new(QuasiAdaptiveConfig {
            setpoint: 60.0,
            u_init: 5.0,
            ..Default::default()
        })
    }

    fn run(c: &mut QuasiAdaptiveController, load: f64, mut u: f64, steps: usize) -> (f64, f64) {
        let mut y = plant(load, u);
        for _ in 0..steps {
            u = c.step(y).max(0.5);
            y = plant(load, u);
        }
        (u, y)
    }

    #[test]
    fn warmup_holds_actuator() {
        let mut c = controller();
        assert_eq!(c.step(90.0), 5.0);
        assert_eq!(c.step(95.0), 5.0);
        assert_eq!(c.step(92.0), 5.0);
    }

    #[test]
    fn converges_toward_setpoint_on_nonlinear_plant() {
        let mut c = controller();
        // load 6 with u=10 gives y=60, the true answer.
        let (u, y) = run(&mut c, 6.0, 5.0, 80);
        assert!((y - 60.0).abs() < 10.0, "ended at y={y}, u={u}");
        assert!((u - 10.0).abs() < 2.0, "ended at u={u}");
    }

    #[test]
    fn tracks_a_load_increase() {
        let mut c = controller();
        let (settled_u, _) = run(&mut c, 6.0, 5.0, 60);
        // Double the load; the controller must raise u substantially.
        let (u, y) = run(&mut c, 12.0, settled_u, 80);
        assert!(
            u > settled_u * 1.4,
            "u went from {settled_u} to {u} (y={y})"
        );
    }

    #[test]
    fn slew_limit_bounds_step() {
        let mut c = QuasiAdaptiveController::new(QuasiAdaptiveConfig {
            setpoint: 60.0,
            u_init: 10.0,
            max_relative_step: 0.2,
            warmup_steps: 1,
            ..Default::default()
        });
        let mut prev = c.actuator();
        for i in 0..20 {
            let u = c.step(if i % 2 == 0 { 100.0 } else { 20.0 });
            assert!(
                (u - prev).abs() <= prev.abs().max(1.0) * 0.2 + 1e-9,
                "step too large: {prev} → {u}"
            );
            prev = u;
        }
    }

    #[test]
    fn model_learns_negative_gain() {
        let mut c = controller();
        run(&mut c, 6.0, 5.0, 60);
        let b = c.model_gain();
        assert!(
            b < 0.0,
            "plant gain should be identified as negative, got {b}"
        );
        assert!(b.is_finite());
    }

    #[test]
    fn fallback_acts_in_the_right_direction() {
        // Before the model is identified, overload must still add
        // capacity.
        let mut c = controller();
        c.step(90.0);
        c.step(90.0);
        c.step(90.0); // warmup done, model unidentified
        let u0 = c.actuator();
        let u1 = c.step(90.0);
        assert!(u1 > u0, "fallback must scale out under overload");
    }

    #[test]
    fn sync_and_reset() {
        let mut c = controller();
        for _ in 0..10 {
            c.step(80.0);
        }
        c.sync_actuator(3.0);
        assert_eq!(c.actuator(), 3.0);
        c.reset();
        assert_eq!(c.actuator(), 5.0);
        assert_eq!(c.model_gain(), 0.0);
        assert_eq!(c.name(), "quasi-adaptive");
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_forgetting_rejected() {
        QuasiAdaptiveController::new(QuasiAdaptiveConfig {
            forgetting: 1.5,
            ..Default::default()
        });
    }
}
