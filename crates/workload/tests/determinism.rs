// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Determinism regression tests for the workload generators.
//!
//! Flower's experiments must replay identically — the paper's traces are
//! the fixed input every analysis stage consumes — so the generators
//! guarantee: same seed ⇒ byte-identical serialized trace and identical
//! record stream across independent runs.

use flower_sim::testkit::forall;
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::arrival::{ConstantRate, DiurnalRate, MmppRate, NoisyRate};
use flower_workload::click::{ClickStreamConfig, ClickStreamGenerator};
use flower_workload::trace::RateTrace;

/// Record a noisy stochastic arrival process into a trace and serialize
/// it; re-seeded from `seed`, a second run must produce the exact same
/// bytes.
fn recorded_csv(seed: u64) -> Vec<u8> {
    let mut process = NoisyRate::new(
        Box::new(DiurnalRate::new(
            120.0,
            60.0,
            SimDuration::from_hours(24),
            SimDuration::ZERO,
        )),
        0.2,
        SimRng::seed(seed),
    );
    let trace = RateTrace::record(&mut process, SimDuration::from_secs(30), 240);
    let mut buf = Vec::new();
    trace
        .to_csv(&mut buf)
        .expect("writing to a Vec cannot fail");
    buf
}

/// Same seed ⇒ byte-identical serialized rate trace across two runs,
/// over many seeds.
#[test]
fn same_seed_yields_byte_identical_serialized_trace() {
    forall(16, |rng| {
        let seed = rng.next_u64();
        assert_eq!(
            recorded_csv(seed),
            recorded_csv(seed),
            "trace CSV diverged for seed {seed}"
        );
    });
}

/// Different seeds must not collapse onto the same noisy trace — a
/// sanity check that the byte-equality above is not vacuous.
#[test]
fn different_seeds_yield_different_traces() {
    assert_ne!(recorded_csv(1), recorded_csv(2));
}

/// Same seed ⇒ identical click-record stream (every field, every
/// record) across two independently constructed generators driven by a
/// bursty MMPP arrival process.
#[test]
fn same_seed_yields_identical_click_stream() {
    forall(8, |rng| {
        let seed = rng.next_u64();
        let run = || {
            let mut process = MmppRate::new(
                50.0,
                400.0,
                SimDuration::from_secs(20),
                SimDuration::from_secs(10),
                SimRng::seed(seed ^ 0x9e37_79b9),
            );
            let mut generator =
                ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
            let mut records = Vec::new();
            for step in 0..120u64 {
                let t = SimTime::ZERO + SimDuration::from_secs(step);
                records.extend(generator.tick(&mut process, t, 1.0));
            }
            (records, generator.total_generated())
        };
        let ((records_a, total_a), (records_b, total_b)) = (run(), run());
        assert_eq!(total_a, total_b, "record counts diverged for seed {seed}");
        assert_eq!(
            records_a, records_b,
            "record streams diverged for seed {seed}"
        );
    });
}

/// The trace CSV round-trips losslessly even for rates with many
/// significant digits — `to_csv` must not truncate what `from_csv`
/// re-reads, or replayed experiments drift from recorded ones.
#[test]
fn csv_roundtrip_preserves_noisy_rates_exactly() {
    let mut process = NoisyRate::new(Box::new(ConstantRate::new(333.333)), 0.5, SimRng::seed(99));
    let trace = RateTrace::record(&mut process, SimDuration::from_secs(10), 50);
    let mut buf = Vec::new();
    trace
        .to_csv(&mut buf)
        .expect("writing to a Vec cannot fail");
    let parsed = RateTrace::from_csv(std::io::Cursor::new(buf)).expect("own output must parse");
    assert_eq!(parsed, trace);
}
