// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-workload
//!
//! Workload generation for the Flower reproduction.
//!
//! The paper's demonstration drives its click-stream analytics flow with
//! "a random multi-threaded click stream generator deployed on several
//! EC2 instances to emulate the real website traffics" (§4). This crate
//! is the simulated equivalent:
//!
//! * [`arrival`] — arrival-rate processes over virtual time: constant,
//!   step, ramp, diurnal (the day/night cycle visible in the paper's
//!   Fig. 2), flash crowd, Markov-modulated (MMPP), plus composition and
//!   multiplicative-noise wrappers. Rates are *intensities* (records per
//!   second); actual counts are Poisson-sampled around them.
//! * [`click`] — a click-stream generator that turns an arrival process
//!   into concrete [`click::ClickRecord`]s with users, sessions, pages,
//!   and payload sizes — the records the simulated Kinesis ingests.
//! * [`scenarios`] — a catalogue of named workload scenarios (diurnal,
//!   flash crowds, periodic/random bursts, growth) composed from the
//!   arrival primitives, for uniform experiment sweeps.
//! * [`trace`] — recording of rate traces and replay of recorded traces
//!   as an arrival process, plus CSV import/export so experiments can be
//!   re-run bit-identically from a file.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arrival;
pub mod click;
pub mod scenarios;
pub mod trace;

pub use arrival::{
    ArrivalProcess, CompositeProcess, ConstantRate, DiurnalRate, FlashCrowd, MmppRate, NoisyRate,
    RampRate, SpikeTrain, StepRate,
};
pub use click::{ClickRecord, ClickStreamConfig, ClickStreamGenerator, EventKind};
pub use scenarios::Scenario;
pub use trace::RateTrace;
