//! Arrival-rate processes.
//!
//! An [`ArrivalProcess`] maps virtual time to an instantaneous arrival
//! intensity in records/second. Processes may be stateful (the MMPP keeps
//! its Markov phase), so `rate` takes `&mut self`; deterministic processes
//! simply ignore the state.

use flower_sim::{SimDuration, SimRng, SimTime};

/// A (possibly stateful) arrival-intensity process.
pub trait ArrivalProcess {
    /// Instantaneous intensity at time `t`, in records per second.
    /// Implementations must return a finite value `>= 0`.
    fn rate(&mut self, t: SimTime) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// The earliest instant `>= t` at which the process may offer a
    /// non-zero rate; [`SimTime::MAX`] means "quiet forever from `t`".
    /// The event-driven episode core uses this to fast-forward across
    /// quiet windows, so an over-eager answer costs only wasted work
    /// while a late one would skip real traffic — implementations must
    /// never return an instant later than the true next activity. The
    /// conservative default, `t` itself, declares the process
    /// always-possibly-active and disables skipping (correct for
    /// stateful processes like the MMPP whose phase advances per call).
    fn next_active(&self, t: SimTime) -> SimTime {
        t
    }
}

/// A constant intensity.
#[derive(Debug, Clone)]
pub struct ConstantRate {
    rate: f64,
}

impl ConstantRate {
    /// `rate` records/second forever.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "invalid rate {rate}");
        ConstantRate { rate }
    }
}

impl ArrivalProcess for ConstantRate {
    fn rate(&mut self, _t: SimTime) -> f64 {
        self.rate
    }
    fn name(&self) -> &str {
        "constant"
    }
    fn next_active(&self, t: SimTime) -> SimTime {
        if self.rate > 0.0 {
            t
        } else {
            SimTime::MAX
        }
    }
}

/// A single step: `before` until `at`, `after` from then on. The
/// canonical workload for measuring controller settling time.
#[derive(Debug, Clone)]
pub struct StepRate {
    before: f64,
    after: f64,
    at: SimTime,
}

impl StepRate {
    /// Step from `before` to `after` at time `at`.
    pub fn new(before: f64, after: f64, at: SimTime) -> Self {
        assert!(before >= 0.0 && after >= 0.0, "rates must be non-negative");
        StepRate { before, after, at }
    }
}

impl ArrivalProcess for StepRate {
    fn rate(&mut self, t: SimTime) -> f64 {
        if t < self.at {
            self.before
        } else {
            self.after
        }
    }
    fn name(&self) -> &str {
        "step"
    }
    fn next_active(&self, t: SimTime) -> SimTime {
        if t < self.at && self.before > 0.0 {
            t
        } else if t < self.at && self.after > 0.0 {
            self.at
        } else if t >= self.at && self.after > 0.0 {
            t
        } else {
            SimTime::MAX
        }
    }
}

/// Linear ramp from `start_rate` at `start` to `end_rate` at `end`,
/// constant outside the ramp interval.
#[derive(Debug, Clone)]
pub struct RampRate {
    start_rate: f64,
    end_rate: f64,
    start: SimTime,
    end: SimTime,
}

impl RampRate {
    /// Ramp between the two rates over `[start, end]`.
    pub fn new(start_rate: f64, end_rate: f64, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "ramp interval must be non-empty");
        assert!(start_rate >= 0.0 && end_rate >= 0.0);
        RampRate {
            start_rate,
            end_rate,
            start,
            end,
        }
    }
}

impl ArrivalProcess for RampRate {
    fn rate(&mut self, t: SimTime) -> f64 {
        if t <= self.start {
            self.start_rate
        } else if t >= self.end {
            self.end_rate
        } else {
            let frac = (t - self.start).as_secs_f64() / (self.end - self.start).as_secs_f64();
            self.start_rate + frac * (self.end_rate - self.start_rate)
        }
    }
    fn name(&self) -> &str {
        "ramp"
    }
}

/// A sinusoidal day/night cycle:
/// `base + amplitude · sin(2π·(t + phase)/period)`, clamped at zero.
///
/// This is the dominant pattern in real click-stream traffic and the one
/// visible in the paper's Fig. 2 trace.
#[derive(Debug, Clone)]
pub struct DiurnalRate {
    base: f64,
    amplitude: f64,
    period: SimDuration,
    phase: SimDuration,
}

impl DiurnalRate {
    /// Cycle around `base` with the given `amplitude` and `period`;
    /// `phase` shifts the cycle start.
    pub fn new(base: f64, amplitude: f64, period: SimDuration, phase: SimDuration) -> Self {
        assert!(base >= 0.0 && amplitude >= 0.0);
        assert!(!period.is_zero(), "period must be non-zero");
        DiurnalRate {
            base,
            amplitude,
            period,
            phase,
        }
    }
}

impl ArrivalProcess for DiurnalRate {
    fn rate(&mut self, t: SimTime) -> f64 {
        let x =
            ((t + self.phase).as_secs_f64() / self.period.as_secs_f64()) * std::f64::consts::TAU;
        (self.base + self.amplitude * x.sin()).max(0.0)
    }
    fn name(&self) -> &str {
        "diurnal"
    }
}

/// A flash crowd: baseline intensity with a sudden spike at `start` that
/// decays exponentially with time constant `decay` after an initial
/// plateau of `hold`.
///
/// Models the "unplanned or unforeseen changes in demand" the paper's
/// introduction says rule-based autoscalers fail to adapt to.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    base: f64,
    spike: f64,
    start: SimTime,
    hold: SimDuration,
    decay: SimDuration,
}

impl FlashCrowd {
    /// Baseline `base`; at `start` the rate jumps by `spike`, holds for
    /// `hold`, then decays exponentially with time constant `decay`.
    pub fn new(
        base: f64,
        spike: f64,
        start: SimTime,
        hold: SimDuration,
        decay: SimDuration,
    ) -> Self {
        assert!(base >= 0.0 && spike >= 0.0);
        assert!(!decay.is_zero(), "decay constant must be non-zero");
        FlashCrowd {
            base,
            spike,
            start,
            hold,
            decay,
        }
    }
}

impl ArrivalProcess for FlashCrowd {
    fn rate(&mut self, t: SimTime) -> f64 {
        if t < self.start {
            return self.base;
        }
        let plateau_end = self.start + self.hold;
        if t <= plateau_end {
            return self.base + self.spike;
        }
        let elapsed = (t - plateau_end).as_secs_f64();
        self.base + self.spike * (-elapsed / self.decay.as_secs_f64()).exp()
    }
    fn name(&self) -> &str {
        "flash-crowd"
    }
    fn next_active(&self, t: SimTime) -> SimTime {
        if self.base > 0.0 {
            t
        } else if self.spike <= 0.0 {
            SimTime::MAX
        } else if t < self.start {
            self.start
        } else {
            // The exponential tail never reaches exactly zero.
            t
        }
    }
}

/// A two-state Markov-modulated process: the intensity alternates
/// between `low` and `high`, with exponentially distributed sojourn
/// times — a standard bursty-traffic model.
#[derive(Debug)]
pub struct MmppRate {
    low: f64,
    high: f64,
    mean_sojourn_low: SimDuration,
    mean_sojourn_high: SimDuration,
    rng: SimRng,
    in_high: bool,
    next_switch: SimTime,
}

impl MmppRate {
    /// Alternate between `low` and `high` intensity with the given mean
    /// sojourn times; `rng` drives the phase switches.
    pub fn new(
        low: f64,
        high: f64,
        mean_sojourn_low: SimDuration,
        mean_sojourn_high: SimDuration,
        mut rng: SimRng,
    ) -> Self {
        assert!(low >= 0.0 && high >= 0.0);
        assert!(!mean_sojourn_low.is_zero() && !mean_sojourn_high.is_zero());
        let first =
            SimDuration::from_secs_f64(rng.exponential(1.0 / mean_sojourn_low.as_secs_f64()));
        MmppRate {
            low,
            high,
            mean_sojourn_low,
            mean_sojourn_high,
            rng,
            in_high: false,
            next_switch: SimTime::ZERO + first,
        }
    }
}

impl ArrivalProcess for MmppRate {
    fn rate(&mut self, t: SimTime) -> f64 {
        while t >= self.next_switch {
            self.in_high = !self.in_high;
            let mean = if self.in_high {
                self.mean_sojourn_high
            } else {
                self.mean_sojourn_low
            };
            let sojourn =
                SimDuration::from_secs_f64(self.rng.exponential(1.0 / mean.as_secs_f64()));
            // Guarantee forward progress even when the draw rounds to 0 ms.
            let sojourn = if sojourn.is_zero() {
                SimDuration::from_millis(1)
            } else {
                sojourn
            };
            self.next_switch += sojourn;
        }
        if self.in_high {
            self.high
        } else {
            self.low
        }
    }
    fn name(&self) -> &str {
        "mmpp"
    }
}

/// A periodic spike train: `base` intensity with recurring spikes of
/// `spike` extra intensity, each lasting `width`, repeating every
/// `period`. The canonical workload for gain-memory experiments: the
/// same disturbance regime recurs on a fixed cadence, so a controller
/// that remembers its learned gain re-applies it instantly.
#[derive(Debug, Clone)]
pub struct SpikeTrain {
    base: f64,
    spike: f64,
    period: SimDuration,
    width: SimDuration,
    first_at: SimTime,
}

impl SpikeTrain {
    /// Spikes of `spike` extra records/s, `width` long, every `period`,
    /// starting at `first_at`.
    pub fn new(
        base: f64,
        spike: f64,
        period: SimDuration,
        width: SimDuration,
        first_at: SimTime,
    ) -> Self {
        assert!(base >= 0.0 && spike >= 0.0);
        assert!(!period.is_zero(), "spike period must be non-zero");
        assert!(
            width < period,
            "spike width must be shorter than the period"
        );
        SpikeTrain {
            base,
            spike,
            period,
            width,
            first_at,
        }
    }
}

impl ArrivalProcess for SpikeTrain {
    fn rate(&mut self, t: SimTime) -> f64 {
        if t < self.first_at {
            return self.base;
        }
        let since = (t - self.first_at).as_millis() % self.period.as_millis();
        if since < self.width.as_millis() {
            self.base + self.spike
        } else {
            self.base
        }
    }
    fn name(&self) -> &str {
        "spike-train"
    }
}

/// Sum of component processes — e.g. diurnal + flash crowd.
pub struct CompositeProcess {
    parts: Vec<Box<dyn ArrivalProcess>>,
    name: String,
}

impl CompositeProcess {
    /// Sum the given processes.
    pub fn sum(parts: Vec<Box<dyn ArrivalProcess>>) -> Self {
        assert!(!parts.is_empty(), "composite of nothing");
        let name = format!(
            "sum({})",
            parts
                .iter()
                .map(|p| p.name().to_owned())
                .collect::<Vec<_>>()
                .join("+")
        );
        CompositeProcess { parts, name }
    }
}

impl ArrivalProcess for CompositeProcess {
    fn rate(&mut self, t: SimTime) -> f64 {
        self.parts.iter_mut().map(|p| p.rate(t)).sum()
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn next_active(&self, t: SimTime) -> SimTime {
        self.parts
            .iter()
            .map(|p| p.next_active(t))
            .min()
            .unwrap_or(SimTime::MAX)
    }
}

/// Multiplicative log-normal-ish noise around an inner process:
/// `rate · max(0, 1 + N(0, cv))`.
pub struct NoisyRate {
    inner: Box<dyn ArrivalProcess>,
    cv: f64,
    rng: SimRng,
    name: String,
}

impl NoisyRate {
    /// Wrap `inner`, perturbing each query by Gaussian multiplicative
    /// noise with coefficient of variation `cv`.
    pub fn new(inner: Box<dyn ArrivalProcess>, cv: f64, rng: SimRng) -> Self {
        assert!((0.0..1.0).contains(&cv), "cv should be in [0, 1)");
        let name = format!("noisy({})", inner.name());
        NoisyRate {
            inner,
            cv,
            rng,
            name,
        }
    }
}

impl ArrivalProcess for NoisyRate {
    fn rate(&mut self, t: SimTime) -> f64 {
        let base = self.inner.rate(t);
        (base * (1.0 + self.rng.normal(0.0, self.cv))).max(0.0)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_constant() {
        let mut p = ConstantRate::new(500.0);
        assert_eq!(p.rate(SimTime::ZERO), 500.0);
        assert_eq!(p.rate(SimTime::from_hours(5)), 500.0);
        assert_eq!(p.name(), "constant");
    }

    #[test]
    fn step_switches_exactly_at_boundary() {
        let mut p = StepRate::new(100.0, 900.0, SimTime::from_mins(10));
        assert_eq!(p.rate(SimTime::from_mins(9)), 100.0);
        assert_eq!(p.rate(SimTime::from_mins(10)), 900.0);
        assert_eq!(p.rate(SimTime::from_mins(11)), 900.0);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let mut p = RampRate::new(0.0, 100.0, SimTime::from_secs(0), SimTime::from_secs(100));
        assert_eq!(p.rate(SimTime::ZERO), 0.0);
        assert!((p.rate(SimTime::from_secs(50)) - 50.0).abs() < 1e-9);
        assert_eq!(p.rate(SimTime::from_secs(100)), 100.0);
        assert_eq!(p.rate(SimTime::from_secs(200)), 100.0);
    }

    #[test]
    fn diurnal_cycles_and_stays_nonnegative() {
        let mut p = DiurnalRate::new(
            100.0,
            150.0, // amplitude exceeds base → clamping exercised
            SimDuration::from_hours(24),
            SimDuration::ZERO,
        );
        let quarter = SimTime::from_hours(6);
        assert!(
            (p.rate(quarter) - 250.0).abs() < 1e-6,
            "peak at quarter period"
        );
        let three_quarter = SimTime::from_hours(18);
        assert_eq!(p.rate(three_quarter), 0.0, "trough clamps at zero");
        // One full period later the value repeats.
        let again = p.rate(quarter + SimDuration::from_hours(24));
        assert!((again - 250.0).abs() < 1e-6);
    }

    #[test]
    fn flash_crowd_profile() {
        let mut p = FlashCrowd::new(
            100.0,
            1_000.0,
            SimTime::from_mins(30),
            SimDuration::from_mins(5),
            SimDuration::from_mins(10),
        );
        assert_eq!(p.rate(SimTime::from_mins(29)), 100.0);
        assert_eq!(p.rate(SimTime::from_mins(30)), 1_100.0);
        assert_eq!(p.rate(SimTime::from_mins(35)), 1_100.0);
        // One decay constant after the plateau: base + spike/e.
        let v = p.rate(SimTime::from_mins(45));
        assert!(
            (v - (100.0 + 1_000.0 / std::f64::consts::E)).abs() < 1.0,
            "v={v}"
        );
        // Long after: back to (almost) baseline.
        assert!(p.rate(SimTime::from_hours(10)) < 101.0);
    }

    #[test]
    fn mmpp_visits_both_states_and_time_shares_are_sane() {
        let mut p = MmppRate::new(
            100.0,
            1_000.0,
            SimDuration::from_mins(10),
            SimDuration::from_mins(5),
            SimRng::seed(1),
        );
        let mut low_samples = 0u32;
        let mut high_samples = 0u32;
        for s in 0..50_000u64 {
            let r = p.rate(SimTime::from_secs(s));
            if r == 100.0 {
                low_samples += 1;
            } else if r == 1_000.0 {
                high_samples += 1;
            } else {
                panic!("unexpected rate {r}");
            }
        }
        assert!(low_samples > 0 && high_samples > 0);
        // Expected shares 2/3 low, 1/3 high.
        let high_share = high_samples as f64 / 50_000.0;
        assert!(
            (high_share - 1.0 / 3.0).abs() < 0.1,
            "high share {high_share}"
        );
    }

    #[test]
    fn mmpp_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut p = MmppRate::new(
                1.0,
                2.0,
                SimDuration::from_secs(30),
                SimDuration::from_secs(30),
                SimRng::seed(seed),
            );
            (0..1_000u64)
                .map(|s| p.rate(SimTime::from_secs(s)))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn composite_sums_components() {
        let mut p = CompositeProcess::sum(vec![
            Box::new(ConstantRate::new(100.0)),
            Box::new(StepRate::new(0.0, 50.0, SimTime::from_secs(10))),
        ]);
        assert_eq!(p.rate(SimTime::ZERO), 100.0);
        assert_eq!(p.rate(SimTime::from_secs(20)), 150.0);
        assert!(p.name().contains("constant") && p.name().contains("step"));
    }

    #[test]
    fn noisy_rate_centres_on_inner() {
        let mut p = NoisyRate::new(Box::new(ConstantRate::new(200.0)), 0.1, SimRng::seed(2));
        let n = 20_000;
        let mean: f64 = (0..n).map(|s| p.rate(SimTime::from_secs(s))).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean={mean}");
        // Never negative.
        let mut p2 = NoisyRate::new(Box::new(ConstantRate::new(1.0)), 0.9, SimRng::seed(3));
        for s in 0..5_000 {
            assert!(p2.rate(SimTime::from_secs(s)) >= 0.0);
        }
    }

    #[test]
    fn spike_train_repeats() {
        let mut p = SpikeTrain::new(
            100.0,
            900.0,
            SimDuration::from_mins(10),
            SimDuration::from_mins(2),
            SimTime::from_mins(5),
        );
        assert_eq!(
            p.rate(SimTime::from_mins(0)),
            100.0,
            "before the first spike"
        );
        assert_eq!(p.rate(SimTime::from_mins(5)), 1_000.0, "first spike starts");
        assert_eq!(p.rate(SimTime::from_mins(6)), 1_000.0, "inside the spike");
        assert_eq!(p.rate(SimTime::from_mins(7)), 100.0, "spike over");
        assert_eq!(p.rate(SimTime::from_mins(15)), 1_000.0, "second spike");
        assert_eq!(p.rate(SimTime::from_mins(25)), 1_000.0, "third spike");
        assert_eq!(p.rate(SimTime::from_mins(24)), 100.0, "between spikes");
        assert_eq!(p.name(), "spike-train");
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn spike_wider_than_period_panics() {
        SpikeTrain::new(
            1.0,
            1.0,
            SimDuration::from_mins(1),
            SimDuration::from_mins(2),
            SimTime::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ramp_empty_interval_panics() {
        RampRate::new(1.0, 2.0, SimTime::from_secs(5), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "composite of nothing")]
    fn empty_composite_panics() {
        CompositeProcess::sum(vec![]);
    }

    #[test]
    fn next_active_for_constant_rates() {
        let t = SimTime::from_secs(10);
        assert_eq!(ConstantRate::new(5.0).next_active(t), t);
        assert_eq!(ConstantRate::new(0.0).next_active(t), SimTime::MAX);
    }

    #[test]
    fn next_active_for_steps() {
        let at = SimTime::from_secs(100);
        let quiet_then_busy = StepRate::new(0.0, 50.0, at);
        assert_eq!(quiet_then_busy.next_active(SimTime::from_secs(3)), at);
        assert_eq!(
            quiet_then_busy.next_active(SimTime::from_secs(200)),
            SimTime::from_secs(200)
        );
        let busy_then_quiet = StepRate::new(50.0, 0.0, at);
        assert_eq!(
            busy_then_quiet.next_active(SimTime::from_secs(3)),
            SimTime::from_secs(3)
        );
        assert_eq!(
            busy_then_quiet.next_active(SimTime::from_secs(200)),
            SimTime::MAX
        );
        assert_eq!(
            StepRate::new(0.0, 0.0, at).next_active(SimTime::ZERO),
            SimTime::MAX
        );
    }

    #[test]
    fn next_active_for_flash_crowd() {
        let start = SimTime::from_mins(10);
        let f = FlashCrowd::new(
            0.0,
            900.0,
            start,
            SimDuration::from_mins(5),
            SimDuration::from_mins(10),
        );
        assert_eq!(f.next_active(SimTime::from_secs(1)), start);
        let after = start + SimDuration::from_mins(30);
        assert_eq!(f.next_active(after), after, "decay tail stays active");
        let busy_base = FlashCrowd::new(
            10.0,
            900.0,
            start,
            SimDuration::from_mins(5),
            SimDuration::from_mins(10),
        );
        assert_eq!(busy_base.next_active(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn next_active_for_composites_takes_the_min() {
        let c = CompositeProcess::sum(vec![
            Box::new(StepRate::new(0.0, 10.0, SimTime::from_secs(300))),
            Box::new(StepRate::new(0.0, 10.0, SimTime::from_secs(100))),
        ]);
        assert_eq!(c.next_active(SimTime::ZERO), SimTime::from_secs(100));
    }

    #[test]
    fn next_active_default_is_conservative() {
        // Stateful processes fall back to "always possibly active".
        let m = MmppRate::new(
            0.0,
            100.0,
            SimDuration::from_mins(1),
            SimDuration::from_mins(1),
            SimRng::seed(3),
        );
        let t = SimTime::from_secs(42);
        assert_eq!(m.next_active(t), t);
    }
}
