//! Click-stream record generation.
//!
//! Turns an [`ArrivalProcess`](crate::arrival::ArrivalProcess) intensity
//! into concrete click records: each simulated user browses a site in
//! sessions (page-view counts geometrically distributed), page popularity
//! follows a Zipf-like law, and each record carries the user id as its
//! partition key — which is what spreads (or skews) load across Kinesis
//! shards downstream.

use flower_sim::{SimRng, SimTime};

use crate::arrival::ArrivalProcess;

/// What the user did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A page was rendered.
    PageView,
    /// An on-page element was clicked.
    Click,
    /// An item was added to the cart.
    AddToCart,
    /// A purchase was completed.
    Purchase,
}

impl EventKind {
    const ALL: [EventKind; 4] = [
        EventKind::PageView,
        EventKind::Click,
        EventKind::AddToCart,
        EventKind::Purchase,
    ];
    /// Default relative frequencies of the event kinds (page views
    /// dominate, purchases are rare).
    const WEIGHTS: [f64; 4] = [0.62, 0.30, 0.06, 0.02];
}

/// One click-stream record — the unit the ingestion layer receives.
#[derive(Debug, Clone, PartialEq)]
pub struct ClickRecord {
    /// Virtual time the event occurred.
    pub at: SimTime,
    /// The user who generated it; doubles as the partition key.
    pub user_id: u64,
    /// The user's current session number.
    pub session_id: u64,
    /// Page index in the site's page catalogue.
    pub page: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Serialized payload size in bytes.
    pub payload_bytes: u32,
}

impl ClickRecord {
    /// The record's partition key — Kinesis hashes this to pick a shard.
    pub fn partition_key(&self) -> u64 {
        self.user_id
    }
}

/// Configuration of the click-stream generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClickStreamConfig {
    /// Size of the simulated user population.
    pub n_users: u64,
    /// Number of distinct pages on the site.
    pub n_pages: u32,
    /// Zipf exponent for page popularity (0 = uniform; ~0.8–1.2 typical).
    pub zipf_exponent: f64,
    /// Mean page-views per session (geometric distribution parameter is
    /// derived as `1 / mean`).
    pub mean_session_length: f64,
    /// Mean payload size in bytes.
    pub mean_payload_bytes: f64,
    /// Payload size standard deviation in bytes.
    pub payload_bytes_std: f64,
    /// Fraction of sessions belonging to a small set of "heavy hitter"
    /// users (0 = uniform population). Skewed users concentrate on few
    /// partition keys, creating the hot-shard pathology the enhanced
    /// shard-level monitoring sensor exists for.
    pub hot_user_fraction: f64,
    /// Size of the heavy-hitter set when `hot_user_fraction > 0`.
    pub hot_user_count: u64,
}

impl Default for ClickStreamConfig {
    fn default() -> Self {
        ClickStreamConfig {
            n_users: 50_000,
            n_pages: 200,
            zipf_exponent: 1.0,
            mean_session_length: 8.0,
            mean_payload_bytes: 600.0,
            payload_bytes_std: 150.0,
            hot_user_fraction: 0.0,
            hot_user_count: 8,
        }
    }
}

/// Stateful click-stream generator.
///
/// Call [`ClickStreamGenerator::tick`] once per simulation step; it
/// Poisson-samples the record count for the step from the arrival
/// process's intensity and materializes that many records.
pub struct ClickStreamGenerator {
    config: ClickStreamConfig,
    rng: SimRng,
    /// Pre-computed Zipf CDF weights over pages.
    page_weights: Vec<f64>,
    /// Sparse per-user session state: (user, session counter, remaining
    /// views in session). Kept small via a bounded LRU-ish ring.
    active: Vec<UserSession>,
    total_generated: u64,
}

#[derive(Debug, Clone)]
struct UserSession {
    user_id: u64,
    session_id: u64,
    remaining: u64,
}

impl ClickStreamGenerator {
    /// Build a generator with the given config and RNG.
    pub fn new(config: ClickStreamConfig, rng: SimRng) -> Self {
        assert!(config.n_users > 0, "need at least one user");
        assert!(config.n_pages > 0, "need at least one page");
        assert!(
            config.mean_session_length >= 1.0,
            "sessions must average >= 1 view"
        );
        let page_weights: Vec<f64> = (1..=config.n_pages)
            .map(|r| 1.0 / (r as f64).powf(config.zipf_exponent))
            .collect();
        ClickStreamGenerator {
            config,
            rng,
            page_weights,
            active: Vec::new(),
            total_generated: 0,
        }
    }

    /// Total records generated over the generator's lifetime.
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// Generate the records for one step of length `dt_secs` at time `t`,
    /// with instantaneous intensity taken from `process`.
    pub fn tick(
        &mut self,
        process: &mut dyn ArrivalProcess,
        t: SimTime,
        dt_secs: f64,
    ) -> Vec<ClickRecord> {
        let intensity = process.rate(t);
        self.tick_at_rate(intensity, t, dt_secs)
    }

    /// Like [`ClickStreamGenerator::tick`] but with the intensity already
    /// sampled by the caller — avoids double-querying stateful or noisy
    /// arrival processes when the caller also records the rate.
    pub fn tick_at_rate(&mut self, intensity: f64, t: SimTime, dt_secs: f64) -> Vec<ClickRecord> {
        assert!(dt_secs > 0.0, "step length must be positive");
        debug_assert!(intensity >= 0.0 && intensity.is_finite());
        let count = self.rng.poisson(intensity * dt_secs);
        self.generate(t, count)
    }

    /// Generate exactly `count` records stamped at `t`.
    pub fn generate(&mut self, t: SimTime, count: u64) -> Vec<ClickRecord> {
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let session = self.next_session_slot();
            let user_id = session.user_id;
            let session_id = session.session_id;
            let page = self.rng.weighted_index(&self.page_weights) as u32;
            let kind = EventKind::ALL[self.rng.weighted_index(&EventKind::WEIGHTS)];
            let payload_bytes = self
                .rng
                .normal(
                    self.config.mean_payload_bytes,
                    self.config.payload_bytes_std,
                )
                .max(32.0) as u32;
            out.push(ClickRecord {
                at: t,
                user_id,
                session_id,
                page,
                kind,
                payload_bytes,
            });
        }
        self.total_generated += count;
        out
    }

    /// Pick (or create) the session that emits the next record, and
    /// decrement its remaining view count.
    fn next_session_slot(&mut self) -> UserSession {
        // Retire exhausted sessions lazily.
        self.active.retain(|s| s.remaining > 0);
        // Keep a modest pool of concurrently active sessions; new ones
        // join when the pool is small or by chance, modelling user churn.
        let spawn = self.active.is_empty() || (self.active.len() < 256 && self.rng.chance(0.15));
        if spawn {
            let user_id = if self.config.hot_user_fraction > 0.0
                && self.rng.chance(self.config.hot_user_fraction)
            {
                self.rng.below(self.config.hot_user_count.max(1))
            } else {
                self.rng.below(self.config.n_users)
            };
            let session_id = self.rng.next_u64() >> 16;
            let p = 1.0 / self.config.mean_session_length;
            let remaining = self.rng.geometric(p);
            self.active.push(UserSession {
                user_id,
                session_id,
                remaining,
            });
        }
        let idx = self.rng.below(self.active.len() as u64) as usize;
        self.active[idx].remaining -= 1;
        self.active[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ConstantRate;

    fn generator(seed: u64) -> ClickStreamGenerator {
        ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed))
    }

    #[test]
    fn tick_count_tracks_intensity() {
        let mut generator = generator(1);
        let mut process = ConstantRate::new(1_000.0);
        let mut total = 0usize;
        let steps = 200;
        for s in 0..steps {
            total += generator
                .tick(&mut process, SimTime::from_secs(s), 1.0)
                .len();
        }
        let mean = total as f64 / steps as f64;
        assert!((mean - 1_000.0).abs() < 30.0, "mean={mean}");
        assert_eq!(generator.total_generated(), total as u64);
    }

    #[test]
    fn zero_intensity_generates_nothing() {
        let mut generator = generator(2);
        let mut process = ConstantRate::new(0.0);
        assert!(generator.tick(&mut process, SimTime::ZERO, 1.0).is_empty());
    }

    #[test]
    fn records_are_well_formed() {
        let mut generator = generator(3);
        let records = generator.generate(SimTime::from_secs(42), 5_000);
        assert_eq!(records.len(), 5_000);
        for r in &records {
            assert_eq!(r.at, SimTime::from_secs(42));
            assert!(r.user_id < ClickStreamConfig::default().n_users);
            assert!(r.page < ClickStreamConfig::default().n_pages);
            assert!(r.payload_bytes >= 32);
            assert_eq!(r.partition_key(), r.user_id);
        }
    }

    #[test]
    fn page_popularity_is_skewed() {
        let mut generator = generator(4);
        let records = generator.generate(SimTime::ZERO, 50_000);
        let mut counts = vec![0u32; ClickStreamConfig::default().n_pages as usize];
        for r in &records {
            counts[r.page as usize] += 1;
        }
        // Zipf(1.0): page 0 should be visited far more than page 100.
        assert!(
            counts[0] > counts[100] * 5,
            "p0={} p100={}",
            counts[0],
            counts[100]
        );
    }

    #[test]
    fn event_mix_matches_weights() {
        let mut generator = generator(5);
        let records = generator.generate(SimTime::ZERO, 50_000);
        let views = records
            .iter()
            .filter(|r| r.kind == EventKind::PageView)
            .count();
        let purchases = records
            .iter()
            .filter(|r| r.kind == EventKind::Purchase)
            .count();
        let view_share = views as f64 / records.len() as f64;
        let purchase_share = purchases as f64 / records.len() as f64;
        assert!((view_share - 0.62).abs() < 0.02, "views={view_share}");
        assert!(
            (purchase_share - 0.02).abs() < 0.01,
            "purchases={purchase_share}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut g1 = generator(9);
        let mut g2 = generator(9);
        assert_eq!(
            g1.generate(SimTime::ZERO, 100),
            g2.generate(SimTime::ZERO, 100)
        );
    }

    #[test]
    fn sessions_produce_repeat_users() {
        let mut generator = generator(10);
        let records = generator.generate(SimTime::ZERO, 2_000);
        let mut user_counts = std::collections::BTreeMap::new();
        for r in &records {
            *user_counts.entry(r.user_id).or_insert(0u32) += 1;
        }
        // With session reuse there must be users with multiple records.
        assert!(user_counts.values().any(|&c| c > 3));
    }

    #[test]
    fn payload_sizes_cluster_around_mean() {
        let mut generator = generator(11);
        let records = generator.generate(SimTime::ZERO, 20_000);
        let mean: f64 =
            records.iter().map(|r| r.payload_bytes as f64).sum::<f64>() / records.len() as f64;
        assert!((mean - 600.0).abs() < 15.0, "mean payload {mean}");
    }

    #[test]
    fn hot_users_concentrate_partition_keys() {
        let mut skewed = ClickStreamGenerator::new(
            ClickStreamConfig {
                hot_user_fraction: 0.8,
                hot_user_count: 4,
                ..Default::default()
            },
            SimRng::seed(21),
        );
        let records = skewed.generate(SimTime::ZERO, 20_000);
        let hot = records.iter().filter(|r| r.user_id < 4).count();
        let share = hot as f64 / records.len() as f64;
        assert!(share > 0.6, "hot-user share {share}");
        // The uniform default keeps the same keys rare.
        let mut uniform = ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(21));
        let records = uniform.generate(SimTime::ZERO, 20_000);
        let hot = records.iter().filter(|r| r.user_id < 4).count();
        assert!((hot as f64 / records.len() as f64) < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        ClickStreamGenerator::new(
            ClickStreamConfig {
                n_users: 0,
                ..Default::default()
            },
            SimRng::seed(0),
        );
    }
}
