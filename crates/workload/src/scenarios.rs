//! Named workload scenarios.
//!
//! Ready-made compositions of the arrival primitives, modelled on the
//! traffic shapes the autoscaling literature evaluates against. Each
//! scenario is a factory taking a base intensity and a seed and returning
//! a boxed [`ArrivalProcess`], so experiments can sweep scenarios
//! uniformly.

use flower_sim::{SimDuration, SimRng, SimTime};

use crate::arrival::{
    ArrivalProcess, CompositeProcess, ConstantRate, DiurnalRate, FlashCrowd, MmppRate, NoisyRate,
    RampRate, SpikeTrain,
};

/// The catalogue of named scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Steady traffic with mild noise.
    Steady,
    /// A compressed day/night cycle (2 h period) with noise.
    Diurnal,
    /// Diurnal plus a lunchtime flash crowd.
    DiurnalWithFlashCrowd,
    /// A sudden sustained step (capacity-planning miss).
    SuddenStep,
    /// Recurring bursts on a fixed cadence (batch jobs, TV ads).
    PeriodicBursts,
    /// Markov-modulated bursts (unpredictable cadence).
    RandomBursts,
    /// Slow organic growth over the whole episode.
    Growth,
}

impl Scenario {
    /// All scenarios, for sweeps.
    pub const ALL: [Scenario; 7] = [
        Scenario::Steady,
        Scenario::Diurnal,
        Scenario::DiurnalWithFlashCrowd,
        Scenario::SuddenStep,
        Scenario::PeriodicBursts,
        Scenario::RandomBursts,
        Scenario::Growth,
    ];

    /// Stable kebab-case name (CLI/report identifier).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Steady => "steady",
            Scenario::Diurnal => "diurnal",
            Scenario::DiurnalWithFlashCrowd => "diurnal-flash",
            Scenario::SuddenStep => "sudden-step",
            Scenario::PeriodicBursts => "periodic-bursts",
            Scenario::RandomBursts => "random-bursts",
            Scenario::Growth => "growth",
        }
    }

    /// Look a scenario up by its [`Scenario::name`].
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Materialize the scenario around a base intensity of `rate`
    /// records/second. All scenarios carry 8 % multiplicative noise so no
    /// controller sees an implausibly clean signal.
    pub fn build(self, rate: f64, seed: u64) -> Box<dyn ArrivalProcess> {
        assert!(rate > 0.0, "base rate must be positive");
        let rng = SimRng::seed(seed ^ 0x5CEE);
        let inner: Box<dyn ArrivalProcess> = match self {
            Scenario::Steady => Box::new(ConstantRate::new(rate)),
            Scenario::Diurnal => Box::new(DiurnalRate::new(
                rate,
                rate * 0.8,
                SimDuration::from_hours(2),
                SimDuration::ZERO,
            )),
            Scenario::DiurnalWithFlashCrowd => Box::new(CompositeProcess::sum(vec![
                Box::new(DiurnalRate::new(
                    rate,
                    rate * 0.7,
                    SimDuration::from_hours(2),
                    SimDuration::ZERO,
                )),
                Box::new(FlashCrowd::new(
                    0.0,
                    rate * 2.0,
                    SimTime::from_mins(40),
                    SimDuration::from_mins(5),
                    SimDuration::from_mins(8),
                )),
            ])),
            Scenario::SuddenStep => Box::new(crate::arrival::StepRate::new(
                rate * 0.4,
                rate * 2.0,
                SimTime::from_mins(10),
            )),
            Scenario::PeriodicBursts => Box::new(SpikeTrain::new(
                rate * 0.5,
                rate * 1.8,
                SimDuration::from_mins(12),
                SimDuration::from_mins(3),
                SimTime::from_mins(6),
            )),
            Scenario::RandomBursts => Box::new(MmppRate::new(
                rate * 0.4,
                rate * 2.2,
                SimDuration::from_mins(8),
                SimDuration::from_mins(4),
                SimRng::seed(seed ^ 0xB0B5),
            )),
            Scenario::Growth => Box::new(RampRate::new(
                rate * 0.3,
                rate * 2.0,
                SimTime::ZERO,
                SimTime::from_hours(2),
            )),
        };
        Box::new(NoisyRate::new(inner, 0.08, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::by_name(s.name()), Some(s));
        }
        assert_eq!(Scenario::by_name("nope"), None);
    }

    #[test]
    fn every_scenario_builds_and_yields_sane_rates() {
        for scenario in Scenario::ALL {
            let mut p = scenario.build(1_000.0, 7);
            let mut total = 0.0;
            for m in 0..180u64 {
                let r = p.rate(SimTime::from_mins(m));
                assert!(r.is_finite() && r >= 0.0, "{}: rate {r}", scenario.name());
                assert!(
                    r < 20_000.0,
                    "{}: rate {r} unreasonably high",
                    scenario.name()
                );
                total += r;
            }
            assert!(total > 0.0, "{} produced no traffic", scenario.name());
        }
    }

    #[test]
    fn scenarios_differ_from_each_other() {
        // Sample each scenario on a grid and check the profiles are not
        // all identical (pairwise max deviation is nonzero).
        let profiles: Vec<Vec<f64>> = Scenario::ALL
            .iter()
            .map(|s| {
                let mut p = s.build(1_000.0, 3);
                (0..120u64).map(|m| p.rate(SimTime::from_mins(m))).collect()
            })
            .collect();
        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                let max_dev = profiles[i]
                    .iter()
                    .zip(&profiles[j])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                assert!(
                    max_dev > 10.0,
                    "{} and {} look identical",
                    Scenario::ALL[i].name(),
                    Scenario::ALL[j].name()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sample = |seed| {
            let mut p = Scenario::RandomBursts.build(1_000.0, seed);
            (0..60u64)
                .map(|m| p.rate(SimTime::from_mins(m)))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5));
        assert_ne!(sample(5), sample(6));
    }

    #[test]
    fn step_scenario_steps_at_ten_minutes() {
        let mut p = Scenario::SuddenStep.build(1_000.0, 1);
        // Average around the step to see through the noise.
        let before: f64 = (0..9).map(|m| p.rate(SimTime::from_mins(m))).sum::<f64>() / 9.0;
        let after: f64 = (11..20).map(|m| p.rate(SimTime::from_mins(m))).sum::<f64>() / 9.0;
        assert!(after > before * 3.0, "before {before}, after {after}");
    }

    #[test]
    #[should_panic(expected = "base rate must be positive")]
    fn zero_rate_rejected() {
        Scenario::Steady.build(0.0, 1);
    }
}
