//! Rate-trace recording and replay.
//!
//! Experiments record the intensity an arrival process produced and can
//! replay the recorded trace later as an [`ArrivalProcess`] of its own —
//! the simulated stand-in for the paper's production workload logs, which
//! the dependency analyzer consumes.

use std::io::{BufRead, Write};

use flower_sim::{SimDuration, SimTime};

use crate::arrival::ArrivalProcess;

/// A sampled rate trace: intensity values on a fixed-period grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RateTrace {
    period: SimDuration,
    samples: Vec<f64>,
}

impl RateTrace {
    /// An empty trace with the given sample period.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "trace period must be non-zero");
        RateTrace {
            period,
            samples: Vec::new(),
        }
    }

    /// Record a trace by sampling `process` every `period` for
    /// `n_samples` steps starting at `t = 0`.
    pub fn record(
        process: &mut dyn ArrivalProcess,
        period: SimDuration,
        n_samples: usize,
    ) -> RateTrace {
        let mut trace = RateTrace::new(period);
        for i in 0..n_samples {
            let t = SimTime::ZERO + period * i as u64;
            trace.samples.push(process.rate(t));
        }
        trace
    }

    /// Sample period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Recorded samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDuration {
        self.period * self.samples.len() as u64
    }

    /// Append one sample.
    pub fn push(&mut self, rate: f64) {
        assert!(rate >= 0.0 && rate.is_finite(), "invalid rate {rate}");
        self.samples.push(rate);
    }

    /// Serialize as two-column CSV (`t_seconds,rate`).
    pub fn to_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "t_seconds,rate")?;
        for (i, &r) in self.samples.iter().enumerate() {
            let t = self.period.as_secs_f64() * i as f64;
            writeln!(w, "{t},{r}")?;
        }
        Ok(())
    }

    /// Parse the CSV written by [`RateTrace::to_csv`]. The time column is
    /// used only to infer the period (from the first two rows).
    pub fn from_csv<R: BufRead>(r: R) -> std::io::Result<RateTrace> {
        let mut times = Vec::new();
        let mut samples = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            if lineno == 0 {
                continue; // header
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(2, ',');
            let parse = |s: Option<&str>| -> std::io::Result<f64> {
                s.and_then(|v| v.trim().parse::<f64>().ok()).ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad CSV line {}: {line}", lineno + 1),
                    )
                })
            };
            times.push(parse(parts.next())?);
            samples.push(parse(parts.next())?);
        }
        let period = if let [t0, t1, ..] = times[..] {
            SimDuration::from_secs_f64(t1 - t0)
        } else {
            SimDuration::from_secs(1)
        };
        if period.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace period parsed as zero",
            ));
        }
        Ok(RateTrace { period, samples })
    }

    /// View the trace as a replayable arrival process. Lookups past the
    /// end of the trace hold the last sample (or 0 for an empty trace).
    pub fn replay(&self) -> TraceReplay {
        TraceReplay {
            trace: self.clone(),
        }
    }
}

/// An [`ArrivalProcess`] replaying a recorded [`RateTrace`]
/// (zero-order hold between samples).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: RateTrace,
}

impl ArrivalProcess for TraceReplay {
    fn rate(&mut self, t: SimTime) -> f64 {
        if self.trace.samples.is_empty() {
            return 0.0;
        }
        let idx = (t.as_millis() / self.trace.period.as_millis()) as usize;
        let idx = idx.min(self.trace.samples.len() - 1);
        self.trace.samples[idx]
    }
    fn name(&self) -> &str {
        "trace-replay"
    }
    fn next_active(&self, t: SimTime) -> SimTime {
        if self.trace.samples.is_empty() {
            return SimTime::MAX;
        }
        let period = self.trace.period.as_millis();
        let last = self.trace.samples.len() - 1;
        let idx = ((t.as_millis() / period) as usize).min(last);
        if self.trace.samples[idx] > 0.0 {
            return t;
        }
        // Zero-order hold: past the end, the (zero) last sample holds
        // forever, so a positive sample must lie strictly inside the
        // trace.
        match (idx + 1..=last).find(|&j| self.trace.samples[j] > 0.0) {
            Some(j) => SimTime::from_millis(j as u64 * period),
            None => SimTime::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ConstantRate, RampRate};

    #[test]
    fn record_samples_on_grid() {
        let mut p = RampRate::new(0.0, 90.0, SimTime::ZERO, SimTime::from_secs(90));
        let trace = RateTrace::record(&mut p, SimDuration::from_secs(10), 10);
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.samples()[0], 0.0);
        assert!((trace.samples()[5] - 50.0).abs() < 1e-9);
        assert_eq!(trace.duration(), SimDuration::from_secs(100));
        assert!(!trace.is_empty());
    }

    #[test]
    fn replay_holds_between_and_after_samples() {
        let mut trace = RateTrace::new(SimDuration::from_secs(60));
        trace.push(10.0);
        trace.push(20.0);
        trace.push(30.0);
        let mut replay = trace.replay();
        assert_eq!(replay.rate(SimTime::from_secs(0)), 10.0);
        assert_eq!(replay.rate(SimTime::from_secs(59)), 10.0);
        assert_eq!(replay.rate(SimTime::from_secs(60)), 20.0);
        assert_eq!(replay.rate(SimTime::from_secs(150)), 30.0);
        // Past the end: hold last.
        assert_eq!(replay.rate(SimTime::from_hours(2)), 30.0);
        assert_eq!(replay.name(), "trace-replay");
    }

    #[test]
    fn empty_replay_is_zero() {
        let trace = RateTrace::new(SimDuration::from_secs(1));
        let mut replay = trace.replay();
        assert_eq!(replay.rate(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn csv_roundtrip() {
        let mut p = ConstantRate::new(123.5);
        let trace = RateTrace::record(&mut p, SimDuration::from_secs(30), 5);
        let mut buf = Vec::new();
        trace.to_csv(&mut buf).unwrap();
        let parsed = RateTrace::from_csv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn csv_rejects_garbage() {
        let bad = "t_seconds,rate\nfoo,bar\n";
        assert!(RateTrace::from_csv(std::io::Cursor::new(bad.as_bytes())).is_err());
    }

    #[test]
    fn csv_single_row_defaults_period() {
        let one = "t_seconds,rate\n0,42\n";
        let parsed = RateTrace::from_csv(std::io::Cursor::new(one.as_bytes())).unwrap();
        assert_eq!(parsed.period(), SimDuration::from_secs(1));
        assert_eq!(parsed.samples(), &[42.0]);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn push_rejects_negative() {
        RateTrace::new(SimDuration::from_secs(1)).push(-1.0);
    }

    #[test]
    fn replay_next_active_finds_the_next_positive_sample() {
        let mut trace = RateTrace::new(SimDuration::from_secs(10));
        for r in [0.0, 0.0, 7.0, 0.0] {
            trace.push(r);
        }
        let replay = trace.replay();
        assert_eq!(
            replay.next_active(SimTime::ZERO),
            SimTime::from_secs(20),
            "skips leading zero samples"
        );
        let busy = SimTime::from_secs(25);
        assert_eq!(replay.next_active(busy), busy, "active sample holds");
        assert_eq!(
            replay.next_active(SimTime::from_secs(30)),
            SimTime::MAX,
            "a zero tail (held forever) is quiet forever"
        );
        let empty = RateTrace::new(SimDuration::from_secs(1)).replay();
        assert_eq!(empty.next_active(SimTime::ZERO), SimTime::MAX);
    }
}
