//! Deterministic pseudo-random number generation.
//!
//! Experiments must be byte-stable across machines and dependency upgrades,
//! so instead of `rand::rngs::StdRng` (whose algorithm is explicitly *not*
//! stability-guaranteed) we ship our own xoshiro256++ implementation seeded
//! through SplitMix64, exactly as recommended by the xoshiro authors.
//! [`SimRng`] carries its own distribution toolkit (uniform, normal,
//! Poisson, geometric, weighted choice, shuffling) so no external RNG
//! crate is needed anywhere in the workspace.

/// SplitMix64 step — used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable, reproducible xoshiro256++ generator.
///
/// ```
/// use flower_sim::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream. Each `(seed, label)` pair gives
    /// a distinct deterministic stream; used to hand every simulated
    /// component (workload, service noise, controller jitter, ...) its own
    /// RNG so adding a component never perturbs the draws of another.
    pub fn fork(&self, label: u64) -> Self {
        // Mix the label into the current state through SplitMix64 so forks
        // with different labels are decorrelated.
        let [s0, _, _, s3] = self.s;
        let mut sm = s0 ^ s3 ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // Slice-pattern destructuring: infallible on the fixed [u64; 4]
        // state, so the scrambler has no indexing panic paths at all.
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of entropy.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`. Panics if `lo > hi` (debug builds)
    /// via the arithmetic producing a NaN-free but inverted range check.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection
    /// method (unbiased). Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Lemire 2019: unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_range inverted: [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Standard normal draw (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "negative std_dev");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential draw with the given rate parameter `lambda` (> 0).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        // 1 - U is in (0, 1], so ln never sees zero.
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Poisson draw with mean `lambda >= 0`.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation (continuity-corrected, clamped at zero) for large
    /// means, which is standard practice for simulation workload
    /// generators.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "invalid Poisson mean {lambda}"
        );
        // lint:allow(float-eq-typed): exact-zero sentinel — any positive mean, however small, takes the sampling path
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let draw = self.normal(lambda, lambda.sqrt());
            draw.round().max(0.0) as u64
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Geometric draw: number of Bernoulli(p) trials up to and including
    /// the first success (support `1, 2, ...`). Panics unless `0 < p <= 1`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
        if p >= 1.0 {
            return 1;
        }
        let u = 1.0 - self.next_f64(); // in (0, 1]
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Weighted index draw proportional to non-negative `weights`.
    /// Panics when all weights are zero or any weight is negative.
    #[allow(clippy::expect_used)] // invariant stated in the expect message
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
                w
            })
            .sum();
        assert!(
            total > 0.0,
            "weighted_index requires a positive total weight"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point rounding can land us here; return the last
        // positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("positive total implies a positive weight")
    }
}

impl SimRng {
    /// Next raw 32-bit output (upper half of [`SimRng::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with pseudo-random bytes (little-endian words).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = SimRng::seed(99);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::seed(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn poisson_mean_matches() {
        let mut rng = SimRng::seed(5);
        for &lambda in &[0.5, 4.0, 25.0, 200.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.15 + 0.05,
                "lambda={lambda}, mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = SimRng::seed(5);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed(13);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed(17);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn geometric_mean() {
        let mut rng = SimRng::seed(19);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.geometric(0.25) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
        assert_eq!(rng.geometric(1.0), 1);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio={ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed(29);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rng_core_fill_bytes_covers_remainder() {
        let mut rng = SimRng::seed(31);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to remain all zeros.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(37);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn int_range_inclusive() {
        let mut rng = SimRng::seed(41);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.int_range(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }
}
