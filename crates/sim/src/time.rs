//! Virtual time primitives.
//!
//! All simulated time in the workspace is expressed as integer milliseconds
//! since the start of the simulation. Integer time makes event ordering
//! exact (no floating-point drift in the event queue) and keeps the types
//! `Copy`, `Ord`, and hashable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time: milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "end of time" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for statistics/plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Minutes since simulation start, as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is
    /// later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Align down to a multiple of `period` (used for metric period
    /// bucketing, mirroring CloudWatch period alignment).
    pub fn align_down(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "alignment period must be non-zero");
        SimTime(self.0 - self.0 % period.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000.0).round() as u64)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional hours (for $/hour billing integration).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` periods fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0;
        let h = total_ms / 3_600_000;
        let m = (total_ms % 3_600_000) / 60_000;
        let s = (total_ms % 60_000) / 1_000;
        let ms = total_ms % 1_000;
        if ms == 0 {
            write!(f, "{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(3_600_000) && self.0 > 0 {
            write!(f, "{}h", self.0 / 3_600_000)
        } else if self.0.is_multiple_of(60_000) && self.0 > 0 {
            write!(f, "{}m", self.0 / 60_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_mins(3), SimTime::from_secs(180));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(SimTime::from_secs(6)), d);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(early - SimDuration::from_secs(9), SimTime::ZERO);
    }

    #[test]
    fn align_down_buckets() {
        let p = SimDuration::from_secs(60);
        assert_eq!(SimTime::from_secs(59).align_down(p), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(60).align_down(p), SimTime::from_secs(60));
        assert_eq!(
            SimTime::from_secs(119).align_down(p),
            SimTime::from_secs(60)
        );
    }

    #[test]
    #[should_panic(expected = "alignment period must be non-zero")]
    fn align_down_zero_period_panics() {
        SimTime::from_secs(1).align_down(SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_secs_f64(1.4999),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert!((SimTime::from_mins(3).as_mins_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_division() {
        let window = SimDuration::from_mins(5);
        let period = SimDuration::from_secs(60);
        assert_eq!(window / period, 5);
        assert_eq!(window / 5, period);
        assert_eq!(period * 5, window);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_723_004).to_string(), "01:02:03.004");
        assert_eq!(SimTime::from_secs(3_723).to_string(), "01:02:03");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2h");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5m");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_millis(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
