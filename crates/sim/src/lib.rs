// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-sim
//!
//! Deterministic discrete-event simulation kernel used by every other crate
//! in the Flower reproduction.
//!
//! The paper's system ran against live AWS services in wall-clock time; this
//! crate substitutes a virtual clock so that every experiment is
//! reproducible, seedable, and runs in milliseconds on a laptop while
//! preserving the *cadence* that matters to the controllers: periodic
//! metric samples, periodic control ticks, and delayed actuation effects
//! (VM boot time, shard-split duration, ...).
//!
//! The kernel is deliberately small and generic:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time in integer milliseconds.
//! * [`SimRng`] — a self-contained, dependency-free xoshiro256++ PRNG
//!   (stable across toolchain upgrades, unlike `StdRng`) with its own
//!   distribution toolkit (uniform, normal, Poisson, geometric, ...).
//! * [`Scheduler`] — a binary-heap event queue with FIFO tie-breaking,
//!   generic over the simulated world state `S`.
//!
//! ```
//! use flower_sim::{Scheduler, SimDuration, SimTime};
//!
//! // World state: a counter.
//! let mut sched: Scheduler<u64> = Scheduler::new();
//! // Schedule three increments at t = 10ms, 20ms, 30ms.
//! for i in 1..=3u64 {
//!     sched.schedule_in(SimDuration::from_millis(10 * i), move |_s, state| {
//!         *state += i;
//!     });
//! }
//! let mut state = 0u64;
//! sched.run(&mut state);
//! assert_eq!(state, 6);
//! assert_eq!(sched.now(), SimTime::from_millis(30));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod rng;
pub mod scheduler;
pub mod testkit;
pub mod time;

pub use rng::SimRng;
pub use scheduler::{EventHandle, Scheduler};
pub use time::{SimDuration, SimTime};
