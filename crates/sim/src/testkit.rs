//! Deterministic property-testing harness.
//!
//! A tiny, dependency-free replacement for `proptest`-style randomized
//! testing: each property runs over a fixed number of *seeded* cases, so
//! a failure is reproducible bit-for-bit on any machine — rerunning the
//! test replays exactly the same inputs. On failure the harness prints
//! the failing case index so the property can be re-run under a debugger
//! with `case_rng(<index>)`.

use crate::SimRng;

/// Seed-mixing constant shared by [`forall`] and [`case_rng`].
const CASE_SALT: u64 = 0x5EED_CA5E_0F10_0E57;

/// The RNG used for case `index` of a [`forall`] run.
pub fn case_rng(index: u64) -> SimRng {
    SimRng::seed(CASE_SALT ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run `property` over `cases` deterministic seeded inputs.
///
/// The closure receives a fresh [`SimRng`] per case and builds whatever
/// random inputs the property needs from it. Panics (failed asserts)
/// propagate; a guard prints the failing case index first.
pub fn forall(cases: u64, mut property: impl FnMut(&mut SimRng)) {
    for case in 0..cases {
        let guard = CaseGuard(case);
        let mut rng = case_rng(case);
        property(&mut rng);
        core::mem::forget(guard);
    }
}

struct CaseGuard(u64);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // lint:allow(print-in-lib): test-harness drop guard; only fires mid-panic to aid reproduction
            eprintln!(
                "property failed at deterministic case {} (reproduce with testkit::case_rng({}))",
                self.0, self.0
            );
        }
    }
}

/// Random `f64` vector with uniform entries in `[lo, hi)` and a length
/// drawn uniformly from `[min_len, max_len]`.
pub fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = rng.int_range(min_len as i64, max_len as i64) as usize;
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

/// Random `u64` vector with uniform entries in `[0, bound)` and a length
/// drawn uniformly from `[min_len, max_len]`.
pub fn vec_u64(rng: &mut SimRng, bound: u64, min_len: usize, max_len: usize) -> Vec<u64> {
    let len = rng.int_range(min_len as i64, max_len as i64) as usize;
    (0..len).map(|_| rng.below(bound)).collect()
}

/// Random boolean vector with a length drawn uniformly from
/// `[min_len, max_len]`.
pub fn vec_bool(rng: &mut SimRng, min_len: usize, max_len: usize) -> Vec<bool> {
    let len = rng.int_range(min_len as i64, max_len as i64) as usize;
    (0..len).map(|_| rng.chance(0.5)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case_deterministically() {
        let mut first = Vec::new();
        forall(10, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        forall(10, |rng| second.push(rng.next_u64()));
        assert_eq!(first.len(), 10);
        assert_eq!(first, second);
    }

    #[test]
    fn generators_respect_bounds() {
        forall(20, |rng| {
            let xs = vec_f64(rng, -2.0, 3.0, 1, 40);
            assert!((1..=40).contains(&xs.len()));
            assert!(xs.iter().all(|x| (-2.0..3.0).contains(x)));
            let us = vec_u64(rng, 17, 0, 5);
            assert!(us.len() <= 5);
            assert!(us.iter().all(|&u| u < 17));
            let bs = vec_bool(rng, 3, 3);
            assert_eq!(bs.len(), 3);
        });
    }
}
