//! The discrete-event scheduler.
//!
//! A [`Scheduler`] owns a priority queue of events, each a boxed `FnOnce`
//! closure over the simulated world state `S`. Events at equal timestamps
//! fire in class order, then insertion (FIFO) order, which makes
//! co-simulated components deterministic without artificial epsilon
//! offsets: a component that must observe another's effects at the same
//! instant schedules itself with a later class instead of nudging its
//! timestamp.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::{SimDuration, SimTime};

/// Event class used by [`Scheduler::schedule_at`] and
/// [`Scheduler::schedule_in`] when no class is given. Sits above the
/// low-numbered classes so explicitly-classed events fire first at a
/// shared instant.
pub const DEFAULT_CLASS: u8 = 100;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

struct Scheduled<S> {
    at: SimTime,
    class: u8,
    seq: u64,
    action: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.class == other.class && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, class, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler over world state `S`.
///
/// The state type is external so that event closures can freely mutate the
/// world while the scheduler itself stays borrowable for scheduling
/// follow-up events.
pub struct Scheduler<S> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<S>>,
    // BTreeSets rather than HashSets: they are only ever used for
    // membership, but the ordered sets keep the whole scheduler hash-free
    // so nothing here can pick up iteration-order nondeterminism later.
    //
    // `queued` mirrors the seqs currently in `queue` so `cancel` is a
    // membership probe instead of an O(n) heap scan. `cancelled` holds only
    // cancelled-but-unpopped seqs; both sets shed an entry the moment its
    // event pops or is pruned, so neither grows with run length.
    queued: BTreeSet<u64>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    executed: u64,
    high_water: usize,
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Scheduler<S> {
    /// Create an empty scheduler at `t = 0`.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            queued: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            executed: 0,
            high_water: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (excluding cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// High-water mark of the pending-event queue depth.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of cancelled events not yet reaped from the queue. Exposed
    /// for hygiene tests; stays bounded because pops and prunes reap.
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled.len()
    }

    /// Schedule `action` at the absolute instant `at` with the default
    /// event class.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality would otherwise
    /// be violated silently.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) -> EventHandle {
        self.schedule_at_class(at, DEFAULT_CLASS, action)
    }

    /// Schedule `action` at `at` with an explicit tie-break `class`.
    /// Among events sharing a timestamp, lower classes fire first;
    /// within a class, insertion (FIFO) order wins.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at_class(
        &mut self,
        at: SimTime,
        class: u8,
        action: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            class,
            seq,
            action: Box::new(action),
        });
        self.queued.insert(seq);
        self.high_water = self.high_water.max(self.pending());
        EventHandle(seq)
    }

    /// Schedule `action` after a relative delay from the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) -> EventHandle {
        let at = self.now + delay;
        self.schedule_at(at, action)
    }

    /// Cancel a pending event. Returns `true` when the event had not yet
    /// run (or been cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        // Only record the cancellation when the event is actually still
        // queued — `queued` makes that a set probe, and the entry is
        // reaped when the dead event reaches the top of the heap.
        if self.queued.contains(&handle.0) {
            self.cancelled.insert(handle.0)
        } else {
            false
        }
    }

    /// Forget a popped event's bookkeeping; returns `true` when the event
    /// had been cancelled (and so must not run).
    fn reap(&mut self, seq: u64) -> bool {
        self.queued.remove(&seq);
        self.cancelled.remove(&seq)
    }

    /// Execute the next pending event, advancing the clock to its
    /// timestamp. Returns `false` when the queue is exhausted.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.reap(ev.seq) {
                continue;
            }
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(self, state);
            return true;
        }
        false
    }

    /// Run until the event queue is exhausted.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Timestamp of the next pending event, pruning any cancelled events
    /// blocking the head of the queue.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        loop {
            match self.queue.peek() {
                Some(ev) if self.cancelled.contains(&ev.seq) => {
                    if let Some(dropped) = self.queue.pop() {
                        self.reap(dropped.seq);
                    }
                }
                Some(ev) => return Some(ev.at),
                None => return None,
            }
        }
    }

    /// Run events with timestamps `<= until`, advancing the clock exactly
    /// to `until` afterwards (even if no event fires at that instant).
    pub fn run_until(&mut self, until: SimTime, state: &mut S) {
        while let Some(at) = self.next_event_time() {
            if at > until {
                break;
            }
            self.step(state);
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Schedule `action` to run every `period`, starting at `start`.
    /// The action returns `true` to keep the recurrence alive and `false`
    /// to stop rescheduling itself.
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        action: impl FnMut(&mut Scheduler<S>, &mut S) -> bool + 'static,
    ) {
        assert!(
            !period.is_zero(),
            "periodic event with zero period would livelock"
        );
        fn reschedule<S>(
            sched: &mut Scheduler<S>,
            period: SimDuration,
            mut action: impl FnMut(&mut Scheduler<S>, &mut S) -> bool + 'static,
        ) {
            sched.schedule_in(period, move |s, st| {
                if action(s, st) {
                    reschedule(s, period, action);
                }
            });
        }
        let mut action = action;
        self.schedule_at(start, move |s, st| {
            if action(s, st) {
                reschedule(s, period, action);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(3), |_, log| log.push(3));
        sched.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        sched.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sched.now(), SimTime::from_secs(3));
        assert_eq!(sched.executed(), 3);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..10 {
            sched.schedule_at(SimTime::from_secs(5), move |_, log| log.push(i));
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn classes_break_ties_before_insertion_order() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        let t = SimTime::from_secs(7);
        sched.schedule_at_class(t, 5, |_, log| log.push(5));
        sched.schedule_at(t, |_, log| log.push(100)); // DEFAULT_CLASS
        sched.schedule_at_class(t, 0, |_, log| log.push(0));
        sched.schedule_at_class(t, 2, |_, log| log.push(2));
        sched.schedule_at_class(t, 2, |_, log| log.push(22));
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![0, 2, 22, 5, 100]);
    }

    #[test]
    fn time_order_beats_class_order() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        sched.schedule_at_class(SimTime::from_secs(2), 0, |_, log| log.push(2));
        sched.schedule_at_class(SimTime::from_secs(1), 9, |_, log| log.push(1));
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1), |s, log| {
            log.push(s.now().as_secs());
            s.schedule_in(SimDuration::from_secs(4), |s2, log2| {
                log2.push(s2.now().as_secs());
            });
        });
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(5), |_, _| {});
        let mut st = ();
        sched.run(&mut st);
        sched.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        let h = sched.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        sched.schedule_at(SimTime::from_secs(3), |_, log| log.push(3));
        assert!(sched.cancel(h));
        assert!(!sched.cancel(h), "double cancel reports false");
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 3]);
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut sched: Scheduler<()> = Scheduler::new();
        assert!(!sched.cancel(EventHandle(42)));
    }

    #[test]
    fn cancel_after_execution_is_false() {
        let mut sched: Scheduler<()> = Scheduler::new();
        let h = sched.schedule_at(SimTime::from_secs(1), |_, _| {});
        let mut st = ();
        sched.run(&mut st);
        assert!(!sched.cancel(h));
        assert_eq!(sched.cancelled_backlog(), 0);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sched: Scheduler<()> = Scheduler::new();
        let mut st = ();
        sched.run_until(SimTime::from_secs(30), &mut st);
        assert_eq!(sched.now(), SimTime::from_secs(30));
    }

    #[test]
    fn run_until_is_inclusive_and_stops() {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        for t in [1u64, 2, 3, 4, 5] {
            sched.schedule_at(SimTime::from_secs(t), move |_, log| log.push(t));
        }
        let mut log = Vec::new();
        sched.run_until(SimTime::from_secs(3), &mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sched.now(), SimTime::from_secs(3));
        assert_eq!(sched.pending(), 2);
        sched.run_until(SimTime::from_secs(10), &mut log);
        assert_eq!(log, vec![1, 2, 3, 4, 5]);
        assert_eq!(sched.now(), SimTime::from_secs(10));
    }

    #[test]
    fn next_event_time_sees_through_cancellations() {
        let mut sched: Scheduler<()> = Scheduler::new();
        let h1 = sched.schedule_at(SimTime::from_secs(1), |_, _| {});
        let h2 = sched.schedule_at(SimTime::from_secs(2), |_, _| {});
        sched.schedule_at(SimTime::from_secs(3), |_, _| {});
        sched.cancel(h1);
        sched.cancel(h2);
        assert_eq!(sched.next_event_time(), Some(SimTime::from_secs(3)));
        assert_eq!(sched.cancelled_backlog(), 0, "pruning reaps cancelled");
    }

    #[test]
    fn periodic_event_repeats_until_stopped() {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        sched.schedule_periodic(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            |s, log: &mut Vec<u64>| {
                log.push(s.now().as_secs());
                log.len() < 4
            },
        );
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_panics() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_periodic(SimTime::ZERO, SimDuration::ZERO, |_, _| true);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut sched: Scheduler<()> = Scheduler::new();
        let h = sched.schedule_at(SimTime::from_secs(1), |_, _| {});
        sched.schedule_at(SimTime::from_secs(2), |_, _| {});
        assert_eq!(sched.pending(), 2);
        sched.cancel(h);
        assert_eq!(sched.pending(), 1);
    }

    #[test]
    fn cancel_heavy_workload_keeps_bookkeeping_bounded() {
        // Satellite: schedule-then-cancel in a long loop must not grow
        // the cancelled (or queued) sets with run length — every pop or
        // prune reaps its entry.
        let mut sched: Scheduler<u64> = Scheduler::new();
        let mut st = 0u64;
        for round in 1..=10_000u64 {
            let doomed = sched.schedule_at(SimTime::from_millis(round * 10 + 5), |_, n| *n += 100);
            sched.schedule_at(SimTime::from_millis(round * 10), |_, n| *n += 1);
            sched.cancel(doomed);
            sched.run_until(SimTime::from_millis(round * 10), &mut st);
            assert!(
                sched.cancelled_backlog() <= 1,
                "cancelled backlog grew to {} after round {round}",
                sched.cancelled_backlog()
            );
        }
        // Drain: the final doomed event is pruned, never run.
        sched.run(&mut st);
        assert_eq!(st, 10_000, "no cancelled event ever executed");
        assert_eq!(sched.cancelled_backlog(), 0);
        assert_eq!(sched.pending(), 0);
        assert!(sched.high_water() <= 2);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut sched: Scheduler<()> = Scheduler::new();
        for t in 1..=5u64 {
            sched.schedule_at(SimTime::from_secs(t), |_, _| {});
        }
        let mut st = ();
        sched.run(&mut st);
        assert_eq!(sched.high_water(), 5);
        assert_eq!(sched.pending(), 0);
    }
}
