//! The discrete-event scheduler.
//!
//! A [`Scheduler`] owns a priority queue of events, each a boxed `FnOnce`
//! closure over the simulated world state `S`. Events at equal timestamps
//! fire in insertion (FIFO) order, which makes co-simulated components
//! deterministic without artificial epsilon offsets.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    action: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler over world state `S`.
///
/// The state type is external so that event closures can freely mutate the
/// world while the scheduler itself stays borrowable for scheduling
/// follow-up events.
pub struct Scheduler<S> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<S>>,
    // BTreeSet rather than HashSet: it is only ever used for membership,
    // but the ordered set keeps the whole scheduler hash-free so nothing
    // here can pick up iteration-order nondeterminism later.
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    executed: u64,
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Scheduler<S> {
    /// Create an empty scheduler at `t = 0`.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `action` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality would otherwise
    /// be violated silently.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        EventHandle(seq)
    }

    /// Schedule `action` after a relative delay from the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) -> EventHandle {
        let at = self.now + delay;
        self.schedule_at(at, action)
    }

    /// Cancel a pending event. Returns `true` when the event had not yet
    /// run (or been cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        // An already-executed event's seq won't be in the queue; inserting
        // it into `cancelled` is harmless but we avoid the memory growth by
        // checking the queue lazily at pop time instead. We only record the
        // cancellation if the event could still be pending.
        if self.queue.iter().any(|e| e.seq == handle.0) {
            self.cancelled.insert(handle.0)
        } else {
            false
        }
    }

    /// Execute the next pending event, advancing the clock to its
    /// timestamp. Returns `false` when the queue is exhausted.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(self, state);
            return true;
        }
        false
    }

    /// Run until the event queue is exhausted.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Run events with timestamps `<= until`, advancing the clock exactly
    /// to `until` afterwards (even if no event fires at that instant).
    pub fn run_until(&mut self, until: SimTime, state: &mut S) {
        loop {
            let next_at = loop {
                match self.queue.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        if let Some(dropped) = self.queue.pop() {
                            self.cancelled.remove(&dropped.seq);
                        }
                    }
                    Some(ev) => break Some(ev.at),
                    None => break None,
                }
            };
            match next_at {
                Some(at) if at <= until => {
                    self.step(state);
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Schedule `action` to run every `period`, starting at `start`.
    /// The action returns `true` to keep the recurrence alive and `false`
    /// to stop rescheduling itself.
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        action: impl FnMut(&mut Scheduler<S>, &mut S) -> bool + 'static,
    ) {
        assert!(
            !period.is_zero(),
            "periodic event with zero period would livelock"
        );
        fn reschedule<S>(
            sched: &mut Scheduler<S>,
            period: SimDuration,
            mut action: impl FnMut(&mut Scheduler<S>, &mut S) -> bool + 'static,
        ) {
            sched.schedule_in(period, move |s, st| {
                if action(s, st) {
                    reschedule(s, period, action);
                }
            });
        }
        let mut action = action;
        self.schedule_at(start, move |s, st| {
            if action(s, st) {
                reschedule(s, period, action);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(3), |_, log| log.push(3));
        sched.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        sched.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sched.now(), SimTime::from_secs(3));
        assert_eq!(sched.executed(), 3);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..10 {
            sched.schedule_at(SimTime::from_secs(5), move |_, log| log.push(i));
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1), |s, log| {
            log.push(s.now().as_secs());
            s.schedule_in(SimDuration::from_secs(4), |s2, log2| {
                log2.push(s2.now().as_secs());
            });
        });
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(5), |_, _| {});
        let mut st = ();
        sched.run(&mut st);
        sched.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        let h = sched.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        sched.schedule_at(SimTime::from_secs(3), |_, log| log.push(3));
        assert!(sched.cancel(h));
        assert!(!sched.cancel(h), "double cancel reports false");
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 3]);
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut sched: Scheduler<()> = Scheduler::new();
        assert!(!sched.cancel(EventHandle(42)));
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sched: Scheduler<()> = Scheduler::new();
        let mut st = ();
        sched.run_until(SimTime::from_secs(30), &mut st);
        assert_eq!(sched.now(), SimTime::from_secs(30));
    }

    #[test]
    fn run_until_is_inclusive_and_stops() {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        for t in [1u64, 2, 3, 4, 5] {
            sched.schedule_at(SimTime::from_secs(t), move |_, log| log.push(t));
        }
        let mut log = Vec::new();
        sched.run_until(SimTime::from_secs(3), &mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sched.now(), SimTime::from_secs(3));
        assert_eq!(sched.pending(), 2);
        sched.run_until(SimTime::from_secs(10), &mut log);
        assert_eq!(log, vec![1, 2, 3, 4, 5]);
        assert_eq!(sched.now(), SimTime::from_secs(10));
    }

    #[test]
    fn periodic_event_repeats_until_stopped() {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        sched.schedule_periodic(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            |s, log: &mut Vec<u64>| {
                log.push(s.now().as_secs());
                log.len() < 4
            },
        );
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_panics() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_periodic(SimTime::ZERO, SimDuration::ZERO, |_, _| true);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut sched: Scheduler<()> = Scheduler::new();
        let h = sched.schedule_at(SimTime::from_secs(1), |_, _| {});
        sched.schedule_at(SimTime::from_secs(2), |_, _| {});
        assert_eq!(sched.pending(), 2);
        sched.cancel(h);
        assert_eq!(sched.pending(), 1);
    }
}
