//! Property-based tests for the discrete-event kernel and the PRNG.

use flower_sim::{Scheduler, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always execute in non-decreasing time order, with FIFO
    /// tie-breaking, whatever order they were scheduled in.
    #[test]
    fn execution_order_is_causal(times in prop::collection::vec(0u64..1_000, 1..100)) {
        let mut sched: Scheduler<Vec<(u64, usize)>> = Scheduler::new();
        for (seq, &t) in times.iter().enumerate() {
            sched.schedule_at(SimTime::from_millis(t), move |s, log| {
                log.push((s.now().as_millis(), seq));
            });
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal timestamps");
            }
        }
    }

    /// run_until never executes events beyond the horizon, and the clock
    /// lands exactly on the horizon.
    #[test]
    fn run_until_respects_horizon(
        times in prop::collection::vec(0u64..1_000, 1..60),
        horizon in 0u64..1_200,
    ) {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        for &t in &times {
            sched.schedule_at(SimTime::from_millis(t), move |_, log| log.push(t));
        }
        let mut log = Vec::new();
        sched.run_until(SimTime::from_millis(horizon), &mut log);
        prop_assert!(log.iter().all(|&t| t <= horizon));
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(log.len(), expected);
        prop_assert!(sched.now() >= SimTime::from_millis(horizon));
    }

    /// Cancelling a subset of events removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        n in 1usize..50,
        cancel_mask in prop::collection::vec(prop::bool::ANY, 1..50),
    ) {
        let n = n.min(cancel_mask.len());
        let mut sched: Scheduler<Vec<usize>> = Scheduler::new();
        let handles: Vec<_> = (0..n)
            .map(|i| sched.schedule_at(SimTime::from_millis(i as u64), move |_, log| log.push(i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            if cancel_mask[i] {
                prop_assert!(sched.cancel(h));
            } else {
                expected.push(i);
            }
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        prop_assert_eq!(log, expected);
    }

    /// The RNG's fork streams are reproducible and label-sensitive.
    #[test]
    fn forks_reproducible(seed in any::<u64>(), a in 0u64..1_000, b in 0u64..1_000) {
        let root = SimRng::seed(seed);
        let mut f1 = root.fork(a);
        let mut f2 = root.fork(a);
        prop_assert_eq!(f1.next_u64(), f2.next_u64());
        if a != b {
            let mut g = root.fork(b);
            // Overwhelmingly unlikely to collide on the first draw.
            prop_assert_ne!(root.fork(a).next_u64(), g.next_u64());
        }
    }

    /// below(n) is always in range.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::seed(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Poisson draws are non-negative and finite-mean-ish.
    #[test]
    fn poisson_sane(seed in any::<u64>(), lambda in 0.0..500.0f64) {
        let mut rng = SimRng::seed(seed);
        let draw = rng.poisson(lambda);
        // 12 sigma above the mean is effectively impossible.
        prop_assert!((draw as f64) < lambda + 12.0 * lambda.sqrt() + 20.0);
    }

    /// Periodic events fire exactly on the grid.
    #[test]
    fn periodic_grid(start in 0u64..100, period in 1u64..50, count in 1usize..20) {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        let target = count;
        sched.schedule_periodic(
            SimTime::from_millis(start),
            SimDuration::from_millis(period),
            move |s, log: &mut Vec<u64>| {
                log.push(s.now().as_millis());
                log.len() < target
            },
        );
        let mut log = Vec::new();
        sched.run(&mut log);
        prop_assert_eq!(log.len(), count);
        for (i, &t) in log.iter().enumerate() {
            prop_assert_eq!(t, start + period * i as u64);
        }
    }
}
