// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Property-based tests for the discrete-event kernel and the PRNG,
//! driven by the deterministic `testkit` harness (seeded cases, so every
//! failure replays bit-for-bit).

use flower_sim::testkit::{forall, vec_bool, vec_u64};
use flower_sim::{Scheduler, SimDuration, SimRng, SimTime};

/// Events always execute in non-decreasing time order, with FIFO
/// tie-breaking, whatever order they were scheduled in.
#[test]
fn execution_order_is_causal() {
    forall(64, |rng| {
        let times = vec_u64(rng, 1_000, 1, 99);
        let mut sched: Scheduler<Vec<(u64, usize)>> = Scheduler::new();
        for (seq, &t) in times.iter().enumerate() {
            sched.schedule_at(SimTime::from_millis(t), move |s, log| {
                log.push((s.now().as_millis(), seq));
            });
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at equal timestamps");
            }
        }
    });
}

/// run_until never executes events beyond the horizon, and the clock
/// lands exactly on the horizon.
#[test]
fn run_until_respects_horizon() {
    forall(64, |rng| {
        let times = vec_u64(rng, 1_000, 1, 59);
        let horizon = rng.below(1_200);
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        for &t in &times {
            sched.schedule_at(SimTime::from_millis(t), move |_, log| log.push(t));
        }
        let mut log = Vec::new();
        sched.run_until(SimTime::from_millis(horizon), &mut log);
        assert!(log.iter().all(|&t| t <= horizon));
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(log.len(), expected);
        assert!(sched.now() >= SimTime::from_millis(horizon));
    });
}

/// Cancelling a subset of events removes exactly those events.
#[test]
fn cancellation_is_exact() {
    forall(64, |rng| {
        let cancel_mask = vec_bool(rng, 1, 49);
        let n = cancel_mask.len();
        let mut sched: Scheduler<Vec<usize>> = Scheduler::new();
        let handles: Vec<_> = (0..n)
            .map(|i| sched.schedule_at(SimTime::from_millis(i as u64), move |_, log| log.push(i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            if cancel_mask[i] {
                assert!(sched.cancel(h));
            } else {
                expected.push(i);
            }
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, expected);
    });
}

/// The RNG's fork streams are reproducible and label-sensitive.
#[test]
fn forks_reproducible() {
    forall(64, |rng| {
        let seed = rng.next_u64();
        let a = rng.below(1_000);
        let b = rng.below(1_000);
        let root = SimRng::seed(seed);
        let mut f1 = root.fork(a);
        let mut f2 = root.fork(a);
        assert_eq!(f1.next_u64(), f2.next_u64());
        if a != b {
            let mut g = root.fork(b);
            // Overwhelmingly unlikely to collide on the first draw.
            assert_ne!(root.fork(a).next_u64(), g.next_u64());
        }
    });
}

/// below(n) is always in range.
#[test]
fn below_in_range() {
    forall(64, |rng| {
        let seed = rng.next_u64();
        let n = 1 + rng.below(1_000_000);
        let mut draw_rng = SimRng::seed(seed);
        for _ in 0..100 {
            assert!(draw_rng.below(n) < n);
        }
    });
}

/// Poisson draws are non-negative and finite-mean-ish.
#[test]
fn poisson_sane() {
    forall(256, |rng| {
        let seed = rng.next_u64();
        let lambda = rng.uniform(0.0, 500.0);
        let mut draw_rng = SimRng::seed(seed);
        let draw = draw_rng.poisson(lambda);
        // 12 sigma above the mean is effectively impossible.
        assert!((draw as f64) < lambda + 12.0 * lambda.sqrt() + 20.0);
    });
}

/// Periodic events fire exactly on the grid.
#[test]
fn periodic_grid() {
    forall(64, |rng| {
        let start = rng.below(100);
        let period = 1 + rng.below(49);
        let count = 1 + rng.below(19) as usize;
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        let target = count;
        sched.schedule_periodic(
            SimTime::from_millis(start),
            SimDuration::from_millis(period),
            move |s, log: &mut Vec<u64>| {
                log.push(s.now().as_millis());
                log.len() < target
            },
        );
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log.len(), count);
        for (i, &t) in log.iter().enumerate() {
            assert_eq!(t, start + period * i as u64);
        }
    });
}
