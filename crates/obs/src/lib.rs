// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-obs
//!
//! Deterministic structured tracing for the Flower control stack: the
//! system's answer to "*why* did it act?". The monitor
//! (`flower-core::monitor`) shows the current state all in one place;
//! this crate records the *decisions* — controller gain updates,
//! actuations, throttling, alarm transitions, replanner outcomes,
//! NSGA-II convergence — as a totally-ordered event stream that
//! survives the episode.
//!
//! Three properties drive the design:
//!
//! * **Determinism.** Timestamps come from [`flower_sim::SimTime`] only
//!   (wall clocks are banned by the `nondet-time` lint), collections
//!   are `BTreeMap`-ordered, and sequence numbers are assigned at emit
//!   time on the single control thread — so the same seed produces a
//!   **byte-identical** JSONL trace at any `FLOWER_THREADS` worker
//!   count.
//! * **Bounded memory.** The [`Recorder`] is a ring-buffer flight
//!   recorder: the last *N* events survive arbitrarily long episodes;
//!   counters, gauges, histograms, and span aggregates summarize the
//!   rest.
//! * **Near-free when off.** A disabled recorder costs one branch per
//!   call and never allocates, so instrumentation stays compiled into
//!   hot paths (`bench_nsga2` proves the overhead is in the noise).
//!
//! The export format is the versioned JSONL schema `flower-trace/v1`
//! ([`jsonl::SCHEMA`]): a header line, one line per event, and a final
//! summary line. `cargo xtask trace <file>` validates documents against
//! the schema; [`reader`] parses them back for the `flower trace`
//! subcommand.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod event;
pub mod jsonl;
pub mod reader;
pub mod recorder;

pub use event::{kind, Event, FieldValue};
pub use jsonl::{event_line, json_f64, json_str};
pub use reader::{
    parse_json, parse_trace, FollowItem, JsonValue, Trace, TraceEvent, TraceFollower,
};
pub use recorder::{EventSink, Histogram, Recorder, SpanId, SpanStats, DROPPED_COUNTER};
