//! The flight recorder: a bounded, deterministic event sink.
//!
//! [`Recorder`] is a cheaply-cloneable handle; every clone shares the
//! same underlying buffer, so a single recorder can be threaded through
//! the cloud engine, the provisioning manager, the replanner, and the
//! NSGA-II solver and still produce one totally-ordered event stream.
//! All emission happens on the simulation's (single) control thread —
//! worker pools never emit — which is what makes the sequence numbers,
//! and therefore the exported JSONL, byte-identical for any
//! `FLOWER_THREADS` worker count.
//!
//! ## Disabled-recorder contract
//!
//! A disabled recorder ([`Recorder::disabled`], also `Default`) holds no
//! buffer at all. Every API call starts with a single `Option` branch
//! and returns immediately — no allocation, no locking, no time lookup
//! — so leaving instrumentation compiled into hot paths (the NSGA-II
//! generational loop) is near-free. `bench_nsga2` pins this with a
//! recorder-disabled vs recorder-enabled row pair.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use flower_sim::{SimDuration, SimTime};

use crate::event::{kind, Event, FieldValue};

/// Histogram decade-bucket upper edges (the last bucket is overflow).
/// Comparisons only — no `log` calls — so bucketing is bit-exact.
pub const HISTOGRAM_EDGES: [f64; 10] = [
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
];

/// Deterministic histogram: count/sum/min/max plus decade buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (insertion order is deterministic, so
    /// the float accumulation is too).
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Counts per decade bucket: `buckets[i]` counts observations
    /// `<= HISTOGRAM_EDGES[i]`; the final slot is the overflow bucket.
    pub buckets: [u64; HISTOGRAM_EDGES.len() + 1],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_EDGES.len() + 1],
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let slot = HISTOGRAM_EDGES
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(HISTOGRAM_EDGES.len());
        self.buckets[slot] += 1;
    }
}

/// Aggregate statistics for all closed spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of closed spans with this name.
    pub count: u64,
    /// Total sim-time spent inside them.
    pub total: SimDuration,
    /// Longest single span.
    pub max: SimDuration,
}

/// Handle to an open span, returned by [`Recorder::span_enter`].
///
/// A disabled recorder hands out an inert id; exiting it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

#[derive(Debug)]
struct OpenSpan {
    name: String,
    started: SimTime,
}

/// A streaming tap on the event stream: [`Recorder::set_sink`] installs
/// one alongside the ring buffer, and every event is handed to it the
/// moment it is recorded — before any later eviction can touch it. This
/// is what `flower serve` uses to stream `event` frames live.
///
/// The sink runs on the control thread, inside the recorder's borrow:
/// implementations must not call back into the recorder (buffer the
/// event and drain it from outside instead).
pub trait EventSink: std::fmt::Debug {
    /// Called once per emitted event, in sequence order.
    fn on_event(&mut self, event: &Event);
}

/// The shared recorder state. Private: all access goes through
/// [`Recorder`].
#[derive(Debug)]
pub(crate) struct Flight {
    pub(crate) now: SimTime,
    pub(crate) next_seq: u64,
    pub(crate) capacity: usize,
    pub(crate) events: VecDeque<Event>,
    pub(crate) dropped: u64,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, f64>,
    pub(crate) histograms: BTreeMap<&'static str, Histogram>,
    next_span_id: u64,
    open_spans: BTreeMap<u64, OpenSpan>,
    pub(crate) span_stats: BTreeMap<String, SpanStats>,
    sink: Option<Box<dyn EventSink>>,
}

/// The counter bumped when the ring buffer evicts an event, so overflow
/// is visible in the exported summary (`flower trace` warns on it).
pub const DROPPED_COUNTER: &str = "trace.dropped";

impl Flight {
    fn push(&mut self, kind: &'static str, fields: &[(&'static str, FieldValue)]) {
        let event = Event {
            seq: self.next_seq,
            at: self.now,
            kind,
            fields: fields.iter().cloned().collect(),
        };
        self.next_seq += 1;
        if let Some(sink) = self.sink.as_mut() {
            sink.on_event(&event);
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
            *self.counters.entry(DROPPED_COUNTER).or_insert(0) += 1;
        }
        self.events.push_back(event);
    }
}

/// A cloneable handle to a (possibly disabled) flight recorder.
///
/// See the [module docs](self) for the sharing and determinism model.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<Flight>>>,
}

impl Recorder {
    /// A recorder that records nothing. Every call is a single branch.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder whose ring buffer keeps the last `capacity`
    /// events (older events are counted in [`Recorder::dropped`]).
    /// `capacity` is clamped to at least 1.
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Rc::new(RefCell::new(Flight {
                now: SimTime::ZERO,
                next_seq: 0,
                capacity: capacity.max(1),
                events: VecDeque::new(),
                dropped: 0,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                next_span_id: 0,
                open_spans: BTreeMap::new(),
                span_stats: BTreeMap::new(),
                sink: None,
            }))),
        }
    }

    /// Install a streaming [`EventSink`] alongside the ring buffer (a
    /// no-op on a disabled recorder). Every subsequent event reaches
    /// the sink at emit time, in sequence order, including events the
    /// ring buffer later evicts. Replaces any previous sink.
    pub fn set_sink(&self, sink: Box<dyn EventSink>) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sink = Some(sink);
        }
    }

    /// Remove the streaming sink, if one is installed.
    pub fn clear_sink(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sink = None;
        }
    }

    /// True when events are actually being recorded. Use this to guard
    /// payload computation that is itself expensive (e.g. a
    /// hypervolume) — plain `emit` calls need no guard.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance the ambient virtual clock. Subsequent events are stamped
    /// with this instant; the driving loop calls it once per tick so
    /// deep emitters (engine, solver) need no time plumbing.
    pub fn set_now(&self, at: SimTime) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now = at;
        }
    }

    /// The ambient virtual clock ([`SimTime::ZERO`] when disabled).
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Some(inner) => inner.borrow().now,
            None => SimTime::ZERO,
        }
    }

    /// Record one event. The sequence number is assigned here, at emit
    /// time. Field *keys* never allocate; the fields slice itself may
    /// live on the caller's stack.
    pub fn emit(&self, kind: &'static str, fields: &[(&'static str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().push(kind, fields);
    }

    /// Add `delta` to the monotonic counter `name`.
    pub fn count(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        *inner.borrow_mut().counters.entry(name).or_insert(0) += delta;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().gauges.insert(name, value);
    }

    /// Record one observation into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .borrow_mut()
            .histograms
            .entry(name)
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// Open a named span at the ambient clock and emit a
    /// [`kind::SPAN_ENTER`] event. Returns the id to close it with.
    pub fn span_enter(&self, name: &str) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId(u64::MAX);
        };
        let mut flight = inner.borrow_mut();
        let id = flight.next_span_id;
        flight.next_span_id += 1;
        let started = flight.now;
        flight.open_spans.insert(
            id,
            OpenSpan {
                name: name.to_owned(),
                started,
            },
        );
        flight.push(
            kind::SPAN_ENTER,
            &[("id", id.into()), ("name", name.into())],
        );
        SpanId(id)
    }

    /// Close a span: emits a [`kind::SPAN_EXIT`] event carrying the
    /// sim-time duration and folds it into the per-name aggregate.
    /// Unknown or already-closed ids are ignored.
    pub fn span_exit(&self, id: SpanId) {
        let Some(inner) = &self.inner else { return };
        let mut flight = inner.borrow_mut();
        let Some(open) = flight.open_spans.remove(&id.0) else {
            return;
        };
        let duration = flight.now.since(open.started);
        let stats = flight
            .span_stats
            .entry(open.name.clone())
            .or_insert(SpanStats {
                count: 0,
                total: SimDuration::ZERO,
                max: SimDuration::ZERO,
            });
        stats.count += 1;
        stats.total += duration;
        stats.max = stats.max.max(duration);
        flight.push(
            kind::SPAN_EXIT,
            &[
                ("duration_ms", duration.as_millis().into()),
                ("id", id.0.into()),
                ("name", open.name.as_str().into()),
            ],
        );
    }

    /// Number of events currently held in the ring buffer.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.borrow().events.len(),
            None => 0,
        }
    }

    /// True when no events are buffered (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events emitted over the recorder's lifetime (including any
    /// evicted from the ring buffer).
    pub fn emitted(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().next_seq,
            None => 0,
        }
    }

    /// Events evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().dropped,
            None => 0,
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow().events.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Current value of the counter `name` (0 when absent/disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().counters.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Snapshot of every counter, name-ordered. Powers the live
    /// `snapshot` frames of the `flower-wire/v1` protocol.
    pub fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        match &self.inner {
            Some(inner) => inner
                .borrow()
                .counters
                .iter()
                .map(|(&name, &value)| (name, value))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot of every gauge, name-ordered.
    pub fn gauges_snapshot(&self) -> Vec<(&'static str, f64)> {
        match &self.inner {
            Some(inner) => inner
                .borrow()
                .gauges
                .iter()
                .map(|(&name, &value)| (name, value))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Current value of the gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().gauges.get(name).copied())
    }

    /// Snapshot of the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().histograms.get(name).cloned())
    }

    /// Aggregate stats of closed spans named `name`.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().span_stats.get(name).copied())
    }

    /// Serialize the recorder into the versioned `flower-trace/v1`
    /// JSONL document (see [`crate::jsonl`]). A disabled recorder
    /// serializes to the empty string.
    pub fn to_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => crate::jsonl::write_jsonl(&inner.borrow()),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.set_now(SimTime::from_secs(5));
        rec.emit(kind::CONTROL_DECISION, &[("x", 1u64.into())]);
        rec.count("ticks", 3);
        rec.gauge("g", 1.0);
        rec.observe("h", 1.0);
        let span = rec.span_enter("s");
        rec.span_exit(span);
        assert!(rec.is_empty());
        assert_eq!(rec.emitted(), 0);
        assert_eq!(rec.counter("ticks"), 0);
        assert_eq!(rec.to_jsonl(), "");
        assert_eq!(rec.now(), SimTime::ZERO);
    }

    #[test]
    fn events_are_stamped_and_sequenced_at_emit() {
        let rec = Recorder::with_capacity(16);
        rec.set_now(SimTime::from_secs(1));
        rec.emit("a.one", &[]);
        rec.set_now(SimTime::from_secs(2));
        rec.emit("a.two", &[("v", 0.5.into())]);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].at, SimTime::from_secs(1));
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].at, SimTime::from_secs(2));
        assert_eq!(events[1].f64("v"), Some(0.5));
    }

    #[test]
    fn ring_buffer_keeps_the_last_n() {
        let rec = Recorder::with_capacity(3);
        for i in 0..10u64 {
            rec.emit("tick", &[("i", i.into())]);
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 7);
        assert_eq!(rec.emitted(), 10);
        // Sequence numbers survive eviction: the survivors are 7, 8, 9.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        // Overflow is surfaced as a counter, not just silent eviction.
        assert_eq!(rec.counter(DROPPED_COUNTER), 7);
        // A non-overflowing recorder carries no such counter, so
        // existing golden traces are unaffected.
        let quiet = Recorder::with_capacity(16);
        quiet.emit("tick", &[]);
        assert_eq!(quiet.counters_snapshot(), Vec::new());
    }

    #[derive(Debug, Default)]
    struct Tap {
        seen: std::rc::Rc<std::cell::RefCell<Vec<(u64, &'static str)>>>,
    }

    impl EventSink for Tap {
        fn on_event(&mut self, event: &Event) {
            self.seen.borrow_mut().push((event.seq, event.kind));
        }
    }

    #[test]
    fn sink_sees_every_event_including_evicted_ones() {
        let rec = Recorder::with_capacity(2);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        rec.set_sink(Box::new(Tap { seen: seen.clone() }));
        for _ in 0..4 {
            rec.emit("tick", &[]);
        }
        let span = rec.span_enter("s");
        rec.span_exit(span);
        // The tap saw all six events in sequence order, even though the
        // ring buffer only retains the last two.
        assert_eq!(
            *seen.borrow(),
            vec![
                (0, "tick"),
                (1, "tick"),
                (2, "tick"),
                (3, "tick"),
                (4, kind::SPAN_ENTER),
                (5, kind::SPAN_EXIT)
            ]
        );
        assert_eq!(rec.len(), 2);
        rec.clear_sink();
        rec.emit("tick", &[]);
        assert_eq!(seen.borrow().len(), 6, "cleared sink sees nothing");
        // Disabled recorders accept (and ignore) a sink.
        Recorder::disabled().set_sink(Box::new(Tap::default()));
    }

    #[test]
    fn snapshots_are_name_ordered() {
        let rec = Recorder::with_capacity(4);
        rec.count("z.late", 1);
        rec.count("a.early", 2);
        rec.gauge("m.mid", 3.5);
        assert_eq!(rec.counters_snapshot(), vec![("a.early", 2), ("z.late", 1)]);
        assert_eq!(rec.gauges_snapshot(), vec![("m.mid", 3.5)]);
        assert_eq!(Recorder::disabled().counters_snapshot(), Vec::new());
        assert_eq!(Recorder::disabled().gauges_snapshot(), Vec::new());
    }

    #[test]
    fn clones_share_one_stream() {
        let rec = Recorder::with_capacity(8);
        let clone = rec.clone();
        rec.emit("from.original", &[]);
        clone.emit("from.clone", &[]);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "from.original");
        assert_eq!(events[1].kind, "from.clone");
        assert_eq!(events[1].seq, 1);
        // The ambient clock is shared too.
        clone.set_now(SimTime::from_secs(9));
        assert_eq!(rec.now(), SimTime::from_secs(9));
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let rec = Recorder::with_capacity(8);
        rec.count("throttles", 2);
        rec.count("throttles", 3);
        assert_eq!(rec.counter("throttles"), 5);
        rec.gauge("shards", 2.0);
        rec.gauge("shards", 5.0);
        assert_eq!(rec.gauge_value("shards"), Some(5.0));
        rec.observe("latency", 0.5);
        rec.observe("latency", 50.0);
        rec.observe("latency", 5e9);
        let h = rec.histogram("latency").expect("histogram exists");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 5e9);
        // 0.5 → bucket `<= 1`, 50 → `<= 100`, 5e9 → overflow.
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[HISTOGRAM_EDGES.len()], 1);
    }

    #[test]
    fn spans_measure_sim_time() {
        let rec = Recorder::with_capacity(16);
        rec.set_now(SimTime::from_secs(10));
        let a = rec.span_enter("alarm:cpu");
        rec.set_now(SimTime::from_secs(40));
        rec.span_exit(a);
        rec.set_now(SimTime::from_secs(50));
        let b = rec.span_enter("alarm:cpu");
        rec.set_now(SimTime::from_secs(60));
        rec.span_exit(b);
        let stats = rec.span_stats("alarm:cpu").expect("span closed");
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total, SimDuration::from_secs(40));
        assert_eq!(stats.max, SimDuration::from_secs(30));
        // Enter/exit pairs appear in the event stream.
        let kinds: Vec<&str> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                kind::SPAN_ENTER,
                kind::SPAN_EXIT,
                kind::SPAN_ENTER,
                kind::SPAN_EXIT
            ]
        );
        // Double-exit is ignored.
        rec.span_exit(b);
        assert_eq!(rec.events().len(), 4);
    }
}
