//! Reading `flower-trace/v1` JSONL documents back.
//!
//! The CLI's `flower trace` subcommand and the integration tests
//! consume traces through this module. The parser is the same
//! hand-rolled, dependency-free recursive-descent shape as the
//! workspace's bench-JSON validator (`crates/xtask/src/benchjson.rs`):
//! strict enough for schema checking, with byte-offset error messages.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use [`BTreeMap`] so that re-serialized
/// or iterated output is deterministically key-ordered.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for non-finite floats by the writer).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an object, when it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The value as a float, when numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// One event line read back from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emit-order sequence number.
    pub seq: u64,
    /// Virtual timestamp in milliseconds.
    pub t_ms: u64,
    /// Dot-namespaced kind.
    pub kind: String,
    /// Payload fields.
    pub fields: BTreeMap<String, JsonValue>,
}

impl TraceEvent {
    /// The field `name` as a float, when present and numeric.
    pub fn f64(&self, name: &str) -> Option<f64> {
        self.fields.get(name).and_then(JsonValue::as_num)
    }

    /// The field `name` as a string slice, when present and a string.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.fields.get(name).and_then(JsonValue::as_str)
    }
}

/// A fully parsed `flower-trace/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Ring-buffer capacity of the producing recorder.
    pub capacity: u64,
    /// Total events emitted over the recorder's lifetime.
    pub emitted: u64,
    /// Events evicted before export.
    pub dropped: u64,
    /// The buffered events, oldest first.
    pub events: Vec<TraceEvent>,
    /// The summary object from the final line.
    pub summary: JsonValue,
}

impl Trace {
    /// Event count per kind, kind-ordered.
    pub fn counts_by_kind(&self) -> BTreeMap<&str, usize> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for event in &self.events {
            *counts.entry(event.kind.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Re-serialize as a `flower-trace/v1` JSONL document, byte-identical
    /// to the document this trace was parsed from.
    ///
    /// Export → [`parse_trace`] → re-export is a fixed point: maps render
    /// in key order (they were parsed into `BTreeMap`s), floats with the
    /// shortest-round-trip `Display` the writer used, and the schema's
    /// two aggregate shapes — histogram and span objects in the summary —
    /// in the writer's fixed field order rather than key order.
    pub fn to_jsonl(&self) -> String {
        use crate::jsonl::json_str;
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":{},\"capacity\":{},\"events\":{},\"emitted\":{},\"dropped\":{}}}",
            json_str(crate::jsonl::SCHEMA),
            self.capacity,
            self.events.len(),
            self.emitted,
            self.dropped,
        );
        for event in &self.events {
            let _ = write!(
                out,
                "{{\"seq\":{},\"t_ms\":{},\"kind\":{},\"fields\":",
                event.seq,
                event.t_ms,
                json_str(&event.kind),
            );
            write_json(&JsonValue::Obj(event.fields.clone()), &mut out);
            out.push_str("}\n");
        }
        out.push_str("{\"summary\":");
        write_summary(&self.summary, &mut out);
        out.push_str("}\n");
        out
    }
}

/// The writer's fixed field order for histogram aggregates.
const HISTOGRAM_SHAPE: [&str; 5] = ["count", "sum", "min", "max", "buckets"];
/// The writer's fixed field order for closed-span aggregates.
const SPAN_SHAPE: [&str; 3] = ["count", "total_ms", "max_ms"];

/// Serialize the summary object: generic key-ordered JSON, except that
/// the `histograms` and `spans` sections hold aggregate objects the
/// writer emits in a fixed (non-alphabetical) field order.
fn write_summary(value: &JsonValue, out: &mut String) {
    use crate::jsonl::json_str;
    let Some(map) = value.as_obj() else {
        write_json(value, out);
        return;
    };
    out.push('{');
    for (i, (key, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(key));
        out.push(':');
        match (key.as_str(), v) {
            ("histograms", JsonValue::Obj(aggs)) => write_aggregates(aggs, &HISTOGRAM_SHAPE, out),
            ("spans", JsonValue::Obj(aggs)) => write_aggregates(aggs, &SPAN_SHAPE, out),
            _ => write_json(v, out),
        }
    }
    out.push('}');
}

/// Serialize a map of named aggregate objects, each in the writer's
/// `shape` field order (falling back to generic serialization for a
/// value that does not match the shape).
fn write_aggregates(map: &BTreeMap<String, JsonValue>, shape: &[&str], out: &mut String) {
    use crate::jsonl::json_str;
    out.push('{');
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(name));
        out.push(':');
        match v.as_obj() {
            Some(obj) if obj.len() == shape.len() && shape.iter().all(|k| obj.contains_key(*k)) => {
                out.push('{');
                for (j, key) in shape.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(key));
                    out.push(':');
                    if let Some(field) = obj.get(*key) {
                        write_json(field, out);
                    }
                }
                out.push('}');
            }
            _ => write_json(v, out),
        }
    }
    out.push('}');
}

/// Serialize a parsed value back to the writer's byte format: maps in
/// key order, floats via the shortest-round-trip `Display`.
fn write_json(value: &JsonValue, out: &mut String) {
    use crate::jsonl::{json_f64, json_str};
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => out.push_str(&json_f64(*n)),
        JsonValue::Str(s) => out.push_str(&json_str(s)),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(map) => {
            out.push('{');
            for (i, (key, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(key));
                out.push(':');
                write_json(v, out);
            }
            out.push('}');
        }
    }
}

/// One complete line surfaced by [`TraceFollower`].
#[derive(Debug, Clone, PartialEq)]
pub enum FollowItem {
    /// The header line: the document opened.
    Header {
        /// Ring-buffer capacity of the producing recorder.
        capacity: u64,
        /// Total events emitted over the recorder's lifetime.
        emitted: u64,
        /// Events evicted before export.
        dropped: u64,
        /// Event-line count the header declares.
        declared_events: u64,
    },
    /// One complete, validated event line.
    Event(TraceEvent),
    /// The final summary line: the document is complete.
    Summary(JsonValue),
}

/// Incremental reader for a growing `flower-trace/v1` JSONL document.
///
/// Feed arbitrarily-chopped chunks with [`TraceFollower::feed`]; only
/// *complete* (newline-terminated) lines are parsed, and a partial tail
/// is carried until the rest of the line arrives — so the follower
/// survives mid-line writes, resumes cleanly across partial reads, and
/// never mis-parses a truncated record. The same schema rules as
/// [`parse_trace`] are enforced as lines stream in: header first,
/// strictly increasing `seq`, non-decreasing `t_ms`, and a single
/// summary line last. `flower trace --follow` tails a file with this
/// type; [`parse_trace`] is the same machine run to end-of-input.
#[derive(Debug, Default)]
pub struct TraceFollower {
    pending: String,
    lineno: usize,
    header: Option<(u64, u64, u64, u64)>,
    last: Option<(u64, u64)>,
    events_seen: u64,
    summary_seen: bool,
}

impl TraceFollower {
    /// A follower expecting the header line.
    pub fn new() -> TraceFollower {
        TraceFollower::default()
    }

    /// Feed the next chunk of the document (any split, including
    /// mid-line and mid-token) and collect the items completed by it.
    ///
    /// # Errors
    ///
    /// Returns the same line-addressed schema violations as
    /// [`parse_trace`]. After an error the follower is poisoned only in
    /// the sense that its validation state reflects the lines accepted
    /// so far; callers should stop feeding.
    pub fn feed(&mut self, chunk: &str) -> Result<Vec<FollowItem>, String> {
        self.pending.push_str(chunk);
        let mut items = Vec::new();
        while let Some(nl) = self.pending.find('\n') {
            let line: String = self.pending[..nl].to_owned();
            self.pending.drain(..=nl);
            if let Some(item) = self.take_line(&line)? {
                items.push(item);
            }
        }
        Ok(items)
    }

    /// Treat end-of-input as the final line terminator: parse any
    /// carried partial line (a document whose last line has no trailing
    /// newline). Tailing callers should *not* call this until the
    /// writer is done — a mid-line EOF is exactly what [`Self::pending`]
    /// carries across the next read.
    ///
    /// # Errors
    ///
    /// Returns the pending line's parse or schema violation, if any.
    pub fn finish(&mut self) -> Result<Option<FollowItem>, String> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let line = std::mem::take(&mut self.pending);
        self.take_line(&line)
    }

    /// The carried partial line (empty when the last feed ended exactly
    /// on a line boundary).
    pub fn pending(&self) -> &str {
        &self.pending
    }

    /// True once the summary line has been read: the document is
    /// complete and no further lines are valid.
    pub fn finished(&self) -> bool {
        self.summary_seen
    }

    /// Event lines accepted so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    fn take_line(&mut self, line: &str) -> Result<Option<FollowItem>, String> {
        self.lineno += 1;
        let lineno = self.lineno;
        let Some((_, _, _, declared_events)) = self.header else {
            let header = parse_json(line).map_err(|e| format!("line 1 (header): {e}"))?;
            let header = header
                .as_obj()
                .ok_or_else(|| "line 1 (header): not an object".to_owned())?;
            let schema = header
                .get("schema")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "header: missing string `schema`".to_owned())?;
            if schema != crate::jsonl::SCHEMA {
                return Err(format!(
                    "header: schema is `{schema}`, expected `{}`",
                    crate::jsonl::SCHEMA
                ));
            }
            let header_u64 = |key: &str| -> Result<u64, String> {
                header
                    .get(key)
                    .and_then(JsonValue::as_num)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("header: missing numeric `{key}`"))
            };
            let parsed = (
                header_u64("capacity")?,
                header_u64("emitted")?,
                header_u64("dropped")?,
                header_u64("events")?,
            );
            self.header = Some(parsed);
            return Ok(Some(FollowItem::Header {
                capacity: parsed.0,
                emitted: parsed.1,
                dropped: parsed.2,
                declared_events: parsed.3,
            }));
        };
        if line.trim().is_empty() {
            return Ok(None);
        }
        let value = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| format!("line {lineno}: not an object"))?;
        if let Some(summary_value) = obj.get("summary") {
            if self.summary_seen {
                return Err(format!("line {lineno}: duplicate summary line"));
            }
            if self.events_seen != declared_events {
                return Err(format!(
                    "header declares {declared_events} events, document has {}",
                    self.events_seen
                ));
            }
            self.summary_seen = true;
            return Ok(Some(FollowItem::Summary(summary_value.clone())));
        }
        if self.summary_seen {
            return Err(format!("line {lineno}: event after the summary line"));
        }
        let num = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("line {lineno}: missing numeric `{key}`"))
        };
        let event = TraceEvent {
            seq: num("seq")?,
            t_ms: num("t_ms")?,
            kind: obj
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {lineno}: missing string `kind`"))?
                .to_owned(),
            fields: obj
                .get("fields")
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| format!("line {lineno}: missing object `fields`"))?
                .clone(),
        };
        if event.kind.is_empty() {
            return Err(format!("line {lineno}: empty event kind"));
        }
        if let Some((prev_seq, prev_t)) = self.last {
            if event.seq <= prev_seq {
                return Err(format!(
                    "line {lineno}: seq {} not strictly increasing (previous {prev_seq})",
                    event.seq
                ));
            }
            if event.t_ms < prev_t {
                return Err(format!(
                    "line {lineno}: t_ms {} goes backwards (previous {prev_t})",
                    event.t_ms
                ));
            }
        }
        self.last = Some((event.seq, event.t_ms));
        self.events_seen += 1;
        Ok(Some(FollowItem::Event(event)))
    }
}

/// Parse a complete `flower-trace/v1` JSONL document: the
/// [`TraceFollower`] state machine run to end-of-input, requiring the
/// header, the declared event count, and the final summary line.
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    let mut follower = TraceFollower::new();
    let mut items = follower.feed(text)?;
    if let Some(item) = follower.finish()? {
        items.push(item);
    }
    let mut header = None;
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut summary = None;
    for item in items {
        match item {
            FollowItem::Header {
                capacity,
                emitted,
                dropped,
                declared_events,
            } => header = Some((capacity, emitted, dropped, declared_events)),
            FollowItem::Event(event) => events.push(event),
            FollowItem::Summary(value) => summary = Some(value),
        }
    }
    let Some((capacity, emitted, dropped, declared_events)) = header else {
        return Err("empty document: missing header line".to_owned());
    };
    let summary = summary.ok_or_else(|| "missing final summary line".to_owned())?;
    if events.len() as u64 != declared_events {
        return Err(format!(
            "header declares {declared_events} events, document has {}",
            events.len()
        ));
    }
    Ok(Trace {
        capacity,
        emitted,
        dropped,
        events,
        summary,
    })
}

/// Parse a single JSON document from `text`.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let end = start + 4;
                            let hex = self
                                .bytes
                                .get(start..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at offset {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at offset {}", self.pos))?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        raw.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number `{raw}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use flower_sim::SimTime;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), JsonValue::Num(-25.0));
        assert_eq!(
            parse_json("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn structures_parse() {
        let v = parse_json("{\"a\":[1,2,{\"b\":false}],\"c\":\"x\"}").unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj.len(), 2);
        match obj.get("a") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_error() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"open").is_err());
    }

    #[test]
    fn written_traces_round_trip() {
        let rec = Recorder::with_capacity(8);
        rec.set_now(SimTime::from_secs(30));
        rec.emit(
            "control.decision",
            &[("layer", "ingestion".into()), ("applied", 3u64.into())],
        );
        rec.set_now(SimTime::from_secs(60));
        rec.emit("cloud.throttle", &[("count", 12u64.into())]);
        rec.count("ticks", 2);
        let trace = parse_trace(&rec.to_jsonl()).unwrap();
        assert_eq!(trace.capacity, 8);
        assert_eq!(trace.emitted, 2);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, "control.decision");
        assert_eq!(trace.events[0].t_ms, 30_000);
        assert_eq!(trace.events[0].str("layer"), Some("ingestion"));
        assert_eq!(trace.events[1].f64("count"), Some(12.0));
        let counts = trace.counts_by_kind();
        assert_eq!(counts.get("cloud.throttle"), Some(&1));
        assert!(trace.summary.as_obj().is_some());
    }

    #[test]
    fn reexport_is_byte_identical() {
        // Exercise every writer shape: all field-value types, counters,
        // gauges, a histogram, and a closed span (the two aggregates
        // whose field order is schema-fixed, not alphabetical).
        let rec = Recorder::with_capacity(16);
        rec.set_now(SimTime::from_secs(5));
        rec.emit(
            "plan.outcome",
            &[
                ("accepted", true.into()),
                ("cost", 0.9714.into()),
                ("delta", (-2i64).into()),
                ("layer", "storage".into()),
                ("units", 431u64.into()),
            ],
        );
        rec.count("replan.rounds", 3);
        rec.gauge("cloud.shards", 6.0);
        rec.observe("util", 71.5);
        rec.observe("util", 12.0);
        let span = rec.span_enter("episode.run");
        rec.set_now(SimTime::from_secs(9));
        rec.span_exit(span);
        let doc = rec.to_jsonl();
        let trace = parse_trace(&doc).unwrap();
        assert_eq!(trace.to_jsonl(), doc, "re-export is not a fixed point");
    }

    #[test]
    fn schema_and_shape_violations_are_rejected() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("{\"schema\":\"flower-bench/nsga2/v1\"}\n").is_err());
        // Valid header but no summary line.
        let header =
            "{\"schema\":\"flower-trace/v1\",\"capacity\":4,\"events\":0,\"emitted\":0,\"dropped\":0}";
        assert!(parse_trace(header).is_err());
        // Event count mismatch.
        let doc = format!("{header}\n{{\"summary\":{{}}}}\n");
        assert!(parse_trace(&doc).is_ok());
        let bad = doc.replace("\"events\":0", "\"events\":3");
        assert!(parse_trace(&bad).is_err());
        // Non-monotonic seq.
        let two_events = concat!(
            "{\"schema\":\"flower-trace/v1\",\"capacity\":4,\"events\":2,\"emitted\":2,\"dropped\":0}\n",
            "{\"seq\":1,\"t_ms\":0,\"kind\":\"a\",\"fields\":{}}\n",
            "{\"seq\":1,\"t_ms\":0,\"kind\":\"a\",\"fields\":{}}\n",
            "{\"summary\":{}}\n"
        );
        assert!(parse_trace(two_events).is_err());
    }

    fn small_doc() -> String {
        let rec = Recorder::with_capacity(16);
        rec.set_now(SimTime::from_secs(1));
        rec.emit("control.decision", &[("layer", "ingestion".into())]);
        rec.set_now(SimTime::from_secs(2));
        rec.emit("cloud.resize", &[("units", 3u64.into())]);
        rec.count("ticks", 2);
        rec.to_jsonl()
    }

    #[test]
    fn truncated_document_is_rejected_whole_but_followable() {
        // A writer that died mid-episode: header + events, no summary.
        let doc = small_doc();
        let truncated: String = doc.lines().take(3).map(|l| format!("{l}\n")).collect();
        let err = parse_trace(&truncated).unwrap_err();
        assert!(err.contains("missing final summary line"), "{err}");

        // The follower accepts the same prefix and simply reports that
        // the document is not finished yet.
        let mut follower = TraceFollower::new();
        let items = follower.feed(&truncated).unwrap();
        assert_eq!(items.len(), 3);
        assert!(matches!(items[0], FollowItem::Header { .. }));
        assert!(!follower.finished());
        assert_eq!(follower.events_seen(), 2);
        assert!(follower.pending().is_empty());
    }

    #[test]
    fn interleaved_chunks_reassemble_every_line() {
        // Feed the document in 7-byte chunks: every line boundary and
        // most JSON tokens are split across reads.
        let doc = small_doc();
        let mut follower = TraceFollower::new();
        let mut items = Vec::new();
        let bytes = doc.as_bytes();
        for chunk in bytes.chunks(7) {
            let chunk = std::str::from_utf8(chunk).unwrap();
            items.extend(follower.feed(chunk).unwrap());
        }
        assert!(follower.finished());
        assert!(matches!(items.first(), Some(FollowItem::Header { .. })));
        assert!(matches!(items.last(), Some(FollowItem::Summary(_))));
        let events: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                FollowItem::Event(e) => Some(e.kind.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(events, ["control.decision", "cloud.resize"]);
    }

    #[test]
    fn mid_line_eof_is_carried_until_the_rest_arrives() {
        let doc = small_doc();
        // Stop mid-way through the second event line, as a tailing
        // reader would see while the writer is flushing.
        let split = doc.find("cloud.resize").unwrap();
        let (head, tail) = doc.split_at(split);
        let mut follower = TraceFollower::new();
        let items = follower.feed(head).unwrap();
        assert_eq!(items.len(), 2, "header + first event only");
        assert!(follower.pending().starts_with("{\"seq\""));
        assert_eq!(follower.events_seen(), 1);

        // finish() at a true mid-line EOF surfaces the malformed tail.
        let mut eof = TraceFollower::new();
        eof.feed(head).unwrap();
        assert!(eof.finish().is_err());

        // The tailing reader instead keeps the fragment and resumes.
        let items = follower.feed(tail).unwrap();
        assert!(follower.finished());
        assert!(matches!(items.last(), Some(FollowItem::Summary(_))));
        assert_eq!(follower.events_seen(), 2);
    }

    #[test]
    fn follower_rejects_lines_after_the_summary() {
        let doc = small_doc();
        let mut follower = TraceFollower::new();
        follower.feed(&doc).unwrap();
        assert!(follower.finished());
        let err = follower
            .feed("{\"seq\":99,\"t_ms\":0,\"kind\":\"a\",\"fields\":{}}\n")
            .unwrap_err();
        assert!(err.contains("event after the summary line"), "{err}");
    }
}
