//! The versioned `flower-trace/v1` JSONL export.
//!
//! Layout (one JSON object per line, `\n`-terminated):
//!
//! 1. **Header** — `{"schema":"flower-trace/v1","capacity":…,
//!    "events":…,"emitted":…,"dropped":…}`.
//! 2. **Events** — one line per buffered event, oldest first:
//!    `{"seq":…,"t_ms":…,"kind":"…","fields":{…}}` with fields in key
//!    order.
//! 3. **Summary** — a final `{"summary":{…}}` line folding in the
//!    counters, gauges, histograms, and closed-span aggregates.
//!
//! Determinism: all maps are `BTreeMap`s, floats are rendered with
//! Rust's shortest-round-trip `Display` (bit-identical for bit-identical
//! inputs), and non-finite floats become `null` — so the same recorder
//! state always serializes to the same bytes. `cargo xtask trace`
//! validates documents against this schema with the same hand-rolled
//! JSON machinery that validates `BENCH_nsga2.json`.

use std::fmt::Write as _;

use crate::event::FieldValue;
use crate::recorder::Flight;

/// The schema identifier stamped into every export.
pub const SCHEMA: &str = "flower-trace/v1";

pub(crate) fn write_jsonl(flight: &Flight) -> String {
    let mut out = String::new();
    // Header.
    let _ = writeln!(
        out,
        "{{\"schema\":{},\"capacity\":{},\"events\":{},\"emitted\":{},\"dropped\":{}}}",
        json_str(SCHEMA),
        flight.capacity,
        flight.events.len(),
        flight.next_seq,
        flight.dropped,
    );
    // Events, oldest first.
    for event in &flight.events {
        out.push_str(&event_line(event));
        out.push('\n');
    }
    // Summary.
    out.push_str("{\"summary\":{\"counters\":{");
    for (i, (name, value)) in flight.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_str(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in flight.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_str(name), json_f64(*value));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in flight.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            json_str(name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
        );
        for (j, bucket) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{bucket}");
        }
        out.push_str("]}");
    }
    out.push_str("},\"spans\":{");
    for (i, (name, stats)) in flight.span_stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"total_ms\":{},\"max_ms\":{}}}",
            json_str(name),
            stats.count,
            stats.total.as_millis(),
            stats.max.as_millis(),
        );
    }
    out.push_str("}}}\n");
    out
}

/// Render one event as its `flower-trace/v1` event line (no trailing
/// newline): `{"seq":…,"t_ms":…,"kind":"…","fields":{…}}` with fields
/// in key order. `flower serve` embeds exactly these bytes in its
/// `event` frames so live streams and file exports cannot diverge.
#[must_use]
pub fn event_line(event: &crate::event::Event) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"seq\":{},\"t_ms\":{},\"kind\":{},\"fields\":{{",
        event.seq,
        event.at.as_millis(),
        json_str(event.kind),
    );
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_str(key), json_value(value));
    }
    out.push_str("}}");
    out
}

/// Render a field value as a JSON scalar.
fn json_value(value: &FieldValue) -> String {
    match value {
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) => json_f64(*v),
        FieldValue::Str(s) => json_str(s),
    }
}

/// Floats render with Rust's shortest-round-trip `Display`; JSON has no
/// non-finite literals, so NaN/±inf map to `null`.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
#[must_use]
pub fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use flower_sim::SimTime;

    #[test]
    fn empty_recorder_exports_header_and_summary() {
        let rec = Recorder::with_capacity(4);
        let doc = rec.to_jsonl();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"schema\":\"flower-trace/v1\""));
        assert!(lines[1].starts_with("{\"summary\":"));
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn events_render_with_ordered_fields() {
        let rec = Recorder::with_capacity(4);
        rec.set_now(SimTime::from_secs(30));
        rec.emit(
            "control.decision",
            &[
                ("layer", "ingestion".into()),
                ("applied", 3u64.into()),
                ("accepted", true.into()),
                ("measurement", 71.5.into()),
            ],
        );
        let doc = rec.to_jsonl();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        // BTreeMap field order: accepted, applied, layer, measurement.
        assert_eq!(
            lines[1],
            "{\"seq\":0,\"t_ms\":30000,\"kind\":\"control.decision\",\"fields\":\
             {\"accepted\":true,\"applied\":3,\"layer\":\"ingestion\",\"measurement\":71.5}}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.25");
        assert_eq!(json_f64(2.0), "2");
    }

    #[test]
    fn string_escaping_round_trips_specials() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn summary_folds_in_counters_spans_histograms() {
        let rec = Recorder::with_capacity(4);
        rec.count("ticks", 7);
        rec.gauge("shards", 4.0);
        rec.observe("util", 50.0);
        rec.set_now(SimTime::from_secs(1));
        let s = rec.span_enter("round");
        rec.set_now(SimTime::from_secs(3));
        rec.span_exit(s);
        let doc = rec.to_jsonl();
        let last = doc.lines().last().unwrap_or_default();
        assert!(last.contains("\"counters\":{\"ticks\":7}"), "{last}");
        assert!(last.contains("\"gauges\":{\"shards\":4}"), "{last}");
        assert!(last.contains("\"util\":{\"count\":1"), "{last}");
        assert!(
            last.contains("\"round\":{\"count\":1,\"total_ms\":2000,\"max_ms\":2000}"),
            "{last}"
        );
    }

    #[test]
    fn export_is_reproducible() {
        let build = || {
            let rec = Recorder::with_capacity(8);
            rec.set_now(SimTime::from_secs(2));
            rec.emit("a", &[("x", 0.1.into()), ("y", (-3i64).into())]);
            rec.count("n", 1);
            rec.to_jsonl()
        };
        assert_eq!(build(), build());
    }
}
