//! The structured event model.
//!
//! Every event is a sim-time-stamped record with a dot-namespaced kind
//! and a small bag of typed payload fields. Field keys are `&'static
//! str` so that building an event payload on a hot path never allocates
//! for the keys; values allocate only for the [`FieldValue::Str`]
//! variant. Fields live in a [`BTreeMap`] so iteration (and therefore
//! the JSONL export) is deterministically key-ordered.

use std::collections::BTreeMap;
use std::fmt;

use flower_sim::SimTime;

/// A typed scalar payload value attached to an [`Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag (e.g. whether an actuation was accepted).
    Bool(bool),
    /// Unsigned integer — counts, sizes, generation numbers.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement — utilizations, gains, hypervolumes.
    F64(f64),
    /// Short label — layer names, alarm names, resources.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    /// The value as a float, when it is numeric (`U64`/`I64`/`F64`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            FieldValue::U64(v) => Some(v as f64),
            FieldValue::I64(v) => Some(v as f64),
            FieldValue::F64(v) => Some(v),
            FieldValue::Bool(_) | FieldValue::Str(_) => None,
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emit-order sequence number, unique and strictly increasing
    /// within a recorder (assigned at emit time, before any ring-buffer
    /// eviction — so it survives as a global ordering even when old
    /// events are dropped).
    pub seq: u64,
    /// Virtual timestamp: the recorder's ambient *now* at emit time.
    pub at: SimTime,
    /// Dot-namespaced kind, e.g. `control.decision` (see [`crate::kind`]).
    pub kind: &'static str,
    /// Payload fields, ordered by key.
    pub fields: BTreeMap<&'static str, FieldValue>,
}

impl Event {
    /// The field `name` as a float, when present and numeric.
    pub fn f64(&self, name: &str) -> Option<f64> {
        self.fields.get(name).and_then(FieldValue::as_f64)
    }

    /// The field `name` as a string slice, when present and a string.
    pub fn str(&self, name: &str) -> Option<&str> {
        match self.fields.get(name) {
            Some(FieldValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Dot-namespaced event kinds emitted by the Flower control stack.
///
/// Kinds are plain `&'static str` constants (not an enum) so that
/// downstream crates can add their own namespaces without a
/// coordination point; the JSONL schema treats the kind as an opaque
/// non-empty string.
pub mod kind {
    /// One per-layer sensor→controller→actuator decision per
    /// monitoring period (`ProvisioningManager::step`).
    pub const CONTROL_DECISION: &str = "control.decision";
    /// Controller gain trajectory sample — including whether the
    /// adaptive controller's gain memory produced a warm start.
    pub const CONTROL_GAIN: &str = "control.gain";
    /// A cloud resource actually changed size (shards, VMs, WCU, RCU),
    /// or a resize request was rejected by the platform.
    pub const CLOUD_RESIZE: &str = "cloud.resize";
    /// A tick saw throttled/dropped work at some layer.
    pub const CLOUD_THROTTLE: &str = "cloud.throttle";
    /// A CloudWatch-style alarm changed state.
    pub const ALARM_TRANSITION: &str = "alarm.transition";
    /// A replanning round completed with a chosen Pareto plan.
    pub const REPLAN_OUTCOME: &str = "replan.outcome";
    /// A planned resource share was clamped up to a layer's minimum
    /// deployable unit during rounding.
    pub const PLAN_CLAMP: &str = "plan.clamp";
    /// A replanning round failed (e.g. no feasible plan).
    pub const REPLAN_FAILED: &str = "replan.failed";
    /// NSGA-II per-generation progress (front size, hypervolume).
    pub const NSGA2_GENERATION: &str = "nsga2.generation";
    /// A named span was entered.
    pub const SPAN_ENTER: &str = "span.enter";
    /// A named span was exited (payload carries its sim-time duration).
    pub const SPAN_EXIT: &str = "span.exit";
    /// The chaos layer injected a fault (rejected, shortened, delayed
    /// or dropped an operation) at some layer.
    pub const CHAOS_FAULT: &str = "chaos.fault";
    /// The resilience policy retried a rejected actuation after its
    /// deterministic backoff elapsed.
    pub const RESILIENCE_RETRY: &str = "resilience.retry";
    /// A delayed actuation missed its deadline and was declared lost.
    pub const RESILIENCE_TIMEOUT: &str = "resilience.timeout";
    /// A control loop entered or left degraded mode (stale sensor —
    /// hold last-known-good share, freeze the adaptive gain).
    pub const RESILIENCE_DEGRADED: &str = "resilience.degraded";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_pick_the_right_variant() {
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_owned()));
    }

    #[test]
    fn numeric_accessor_spans_variants() {
        assert_eq!(FieldValue::U64(2).as_f64(), Some(2.0));
        assert_eq!(FieldValue::I64(-2).as_f64(), Some(-2.0));
        assert_eq!(FieldValue::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(FieldValue::Bool(true).as_f64(), None);
        assert_eq!(FieldValue::from("2").as_f64(), None);
    }

    #[test]
    fn event_field_accessors() {
        let mut fields = BTreeMap::new();
        fields.insert("gain", FieldValue::F64(0.25));
        fields.insert("layer", FieldValue::from("ingestion"));
        let e = Event {
            seq: 0,
            at: SimTime::from_secs(30),
            kind: kind::CONTROL_GAIN,
            fields,
        };
        assert_eq!(e.f64("gain"), Some(0.25));
        assert_eq!(e.str("layer"), Some("ingestion"));
        assert_eq!(e.f64("layer"), None);
        assert_eq!(e.str("gain"), None);
    }

    #[test]
    fn display_renders_scalars() {
        assert_eq!(FieldValue::from(0.5).to_string(), "0.5");
        assert_eq!(FieldValue::from("storage").to_string(), "storage");
        assert_eq!(FieldValue::from(false).to_string(), "false");
        assert_eq!(FieldValue::from(-1i64).to_string(), "-1");
    }
}
