// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-cloud
//!
//! Simulated cloud managed services — the substrate of the Flower
//! reproduction.
//!
//! The paper deploys its demo flow on AWS: Amazon Kinesis ingests click
//! streams, Apache Storm on EC2 processes them, DynamoDB persists the
//! aggregates, and CloudWatch carries the metrics Flower's sensors read.
//! None of that is available offline, so this crate implements faithful
//! laptop-scale simulators of each service's *control-relevant* dynamics:
//!
//! * [`kinesis`] — a shard-based stream: each shard accepts up to 1,000
//!   records/s and 1 MiB/s of writes (the exact limits the paper quotes),
//!   excess is throttled, and resharding takes time.
//! * [`storm`] — a topology (spout → bolts with per-bolt CPU cost and
//!   selectivity) executed on a fleet of VMs with boot latency; saturation
//!   grows a backlog, and cluster CPU% is what the analytics-layer sensor
//!   observes.
//! * [`dynamo`] — a table with provisioned write/read capacity units, a
//!   300-second burst-credit bucket, throttling, and the daily limit on
//!   capacity *decreases* that real DynamoDB imposes.
//! * [`metrics`] — a CloudWatch-like namespaced metric store with
//!   period-aligned statistics queries (including `p`-percentiles).
//! * [`alarms`] — CloudWatch-like metric alarms with the three-state
//!   `INSUFFICIENT_DATA → OK ⇄ ALARM` machine.
//! * [`pricing`] — 2017 us-east-1 list prices and a billing meter that
//!   integrates $-cost over virtual time.
//! * [`cache`] — an ElastiCache-like node-count-scaled read cache that
//!   can be interposed on the storage read path as a fourth tier.
//! * [`layer`] — the open layer registry: [`layer::LayerId`] identities,
//!   the [`layer::LayerService`] control-plane trait each simulator
//!   implements, and [`layer::ResourceVector`] plans indexed by layer.
//! * [`engine`] — [`engine::CloudEngine`] wires the services into
//!   the click-stream flow of the paper's Fig. 1 and publishes every
//!   metric each tick; it is the "world" the elasticity manager controls.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod alarms;
pub mod cache;
pub mod dynamo;
pub mod engine;
pub mod kinesis;
pub mod layer;
pub mod metrics;
pub mod pricing;
pub mod storm;

pub use alarms::{Alarm, AlarmSet, AlarmState, AlarmTransition, Comparison};
pub use cache::{CacheCluster, CacheConfig, CacheError, CacheOutcome};
pub use dynamo::{DynamoConfig, DynamoTable, ReadOutcome, WriteOutcome};
pub use engine::{CloudEngine, EngineConfig, ReadWorkloadConfig, TickReport};
pub use kinesis::{IngestOutcome, KinesisConfig, KinesisStream};
pub use layer::{LayerId, LayerService, ResourceVector, SensorProbe};
pub use metrics::{MetricId, MetricsStore, Statistic};
pub use pricing::{BillingMeter, PriceList, ResourceKind};
pub use storm::{Bolt, ProcessOutcome, StormCluster, StormConfig, Topology};
