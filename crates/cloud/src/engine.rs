//! The cloud engine: the paper's Fig. 1 click-stream flow as one
//! co-simulated world.
//!
//! Each tick the engine:
//! 1. feeds the step's click records to the Kinesis-like stream,
//! 2. hands the accepted records to the Storm-like cluster as tuples,
//! 3. writes the cluster's emitted aggregates to the DynamoDB-like table,
//! 4. publishes every service metric to the CloudWatch-like store, and
//! 5. accrues billing for all held resources.
//!
//! The chain is what creates the cross-layer workload dependencies the
//! paper's Fig. 2 exhibits — arrival rate upstream drives CPU% and
//! consumed write capacity downstream, with saturation and backlogs
//! decoupling the layers under overload.

use flower_obs::{kind, FieldValue, Recorder};
use flower_sim::{SimDuration, SimTime};
use flower_workload::ClickRecord;

use crate::cache::{CacheCluster, CacheConfig, CacheError, CacheOutcome};
use crate::dynamo::{DynamoConfig, DynamoError, DynamoTable, ReadOutcome, WriteOutcome};
use crate::kinesis::{IngestOutcome, KinesisConfig, KinesisError, KinesisStream};
use crate::layer::{LayerId, LayerService};
use crate::metrics::{MetricId, MetricsStore};
use crate::pricing::{BillingMeter, PriceList, ResourceKind};
use crate::storm::{ProcessOutcome, StormCluster, StormConfig, StormError, Topology};

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Ingestion layer configuration.
    pub kinesis: KinesisConfig,
    /// Analytics layer configuration.
    pub storm: StormConfig,
    /// Storage layer configuration.
    pub dynamo: DynamoConfig,
    /// The topology the cluster runs.
    pub topology: Topology,
    /// Price list used by the billing meter.
    pub prices: PriceList,
    /// Average size of an aggregate row written to storage.
    pub aggregate_item_bytes: u32,
    /// Read traffic against the storage layer (dashboards and consumers
    /// querying the aggregates) — §2 of the paper lists "DynamoDB
    /// read/write units" among the managed resources.
    pub read_workload: ReadWorkloadConfig,
    /// Optional fourth tier: a cache interposed on the storage read
    /// path. `None` reproduces the paper's three-layer flow exactly.
    pub cache: Option<CacheConfig>,
}

/// Read traffic against the aggregates table.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadWorkloadConfig {
    /// Baseline read rate in items/second (monitoring dashboards).
    pub base_rate: f64,
    /// Additional reads per ingested record (user-facing queries track
    /// site traffic).
    pub per_record: f64,
    /// Average read item size in bytes.
    pub avg_item_bytes: u32,
    /// Whether reads are eventually consistent (half RCU cost).
    pub eventually_consistent: bool,
}

impl Default for ReadWorkloadConfig {
    fn default() -> Self {
        ReadWorkloadConfig {
            base_rate: 0.0,
            per_record: 0.0,
            avg_item_bytes: 2_048,
            eventually_consistent: true,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            kinesis: KinesisConfig::default(),
            storm: StormConfig::default(),
            dynamo: DynamoConfig::default(),
            topology: Topology::clickstream(),
            prices: PriceList::default(),
            aggregate_item_bytes: 512,
            read_workload: ReadWorkloadConfig::default(),
            cache: None,
        }
    }
}

/// Everything that happened in one engine tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickReport {
    /// When the tick happened.
    pub at: SimTime,
    /// Ingestion-layer outcome.
    pub ingest: IngestOutcome,
    /// Analytics-layer outcome.
    pub process: ProcessOutcome,
    /// Storage-layer write outcome.
    pub write: WriteOutcome,
    /// Storage-layer read outcome (all-zero when no read workload is
    /// configured).
    pub read: ReadOutcome,
    /// Cache-tier outcome (`None` when no cache tier is deployed).
    pub cache: Option<CacheOutcome>,
    /// Dollars accrued during this tick.
    pub cost: f64,
}

/// Metric names the engine publishes (stable identifiers for sensors).
pub mod metric_names {
    /// Kinesis namespace.
    pub const NS_KINESIS: &str = "AWS/Kinesis";
    /// Storm/EC2 namespace.
    pub const NS_STORM: &str = "Storm";
    /// DynamoDB namespace.
    pub const NS_DYNAMO: &str = "AWS/DynamoDB";

    /// Records offered to the stream per tick.
    pub const INCOMING_RECORDS: &str = "IncomingRecords";
    /// Records throttled by the stream per tick.
    pub const WRITE_THROTTLED: &str = "WriteProvisionedThroughputExceeded";
    /// Stream utilization (offered rate / capacity).
    pub const SHARD_UTILIZATION: &str = "ShardUtilization";
    /// Open shard count.
    pub const OPEN_SHARDS: &str = "OpenShards";
    /// Utilization of the hottest shard (enhanced shard-level monitoring).
    pub const MAX_SHARD_UTILIZATION: &str = "MaxShardUtilization";

    /// Cluster CPU percent.
    pub const CPU_UTILIZATION: &str = "CpuUtilization";
    /// Tuples processed per tick.
    pub const TUPLES_PROCESSED: &str = "TuplesProcessed";
    /// Backlogged tuples.
    pub const BACKLOG: &str = "Backlog";
    /// Estimated processing latency (seconds).
    pub const PROCESS_LATENCY: &str = "ProcessLatencySecs";
    /// Running VM count.
    pub const RUNNING_VMS: &str = "RunningVms";

    /// Consumed write capacity units per second.
    pub const CONSUMED_WCU: &str = "ConsumedWriteCapacityUnits";
    /// Throttled storage writes per tick.
    pub const DYNAMO_THROTTLED: &str = "ThrottledRequests";
    /// Write utilization (consumed / provisioned).
    pub const WRITE_UTILIZATION: &str = "WriteUtilization";
    /// Provisioned WCU.
    pub const PROVISIONED_WCU: &str = "ProvisionedWriteCapacityUnits";
    /// Consumed read capacity units per second.
    pub const CONSUMED_RCU: &str = "ConsumedReadCapacityUnits";
    /// Throttled storage reads per tick.
    pub const DYNAMO_READ_THROTTLED: &str = "ReadThrottleEvents";
    /// Read utilization (consumed / provisioned).
    pub const READ_UTILIZATION: &str = "ReadUtilization";
    /// Provisioned RCU.
    pub const PROVISIONED_RCU: &str = "ProvisionedReadCapacityUnits";

    /// Cache-tier namespace.
    pub const NS_CACHE: &str = "ElastiCache";
    /// Read requests offered to the cache per tick.
    pub const CACHE_REQUESTS: &str = "CacheRequests";
    /// Hit ratio in effect, in `[0, 1]`.
    pub const CACHE_HIT_RATIO: &str = "CacheHitRate";
    /// Cache utilization (offered rate / fleet capacity).
    pub const CACHE_UTILIZATION: &str = "CacheUtilization";
    /// Running cache node count.
    pub const CACHE_NODES: &str = "CacheNodes";
}

/// Control-plane errors surfaced by the engine's actuator API.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Ingestion-layer rejection.
    Kinesis(KinesisError),
    /// Analytics-layer rejection.
    Storm(StormError),
    /// Storage-layer rejection.
    Dynamo(DynamoError),
    /// Cache-tier rejection.
    Cache(CacheError),
    /// The addressed layer is not registered with the engine.
    UnknownLayer(LayerId),
    /// The layer's control-plane API is transiently unavailable (e.g.
    /// an injected fault rejected the resize call).
    Unavailable(LayerId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Kinesis(e) => write!(f, "kinesis: {e}"),
            EngineError::Storm(e) => write!(f, "storm: {e}"),
            EngineError::Dynamo(e) => write!(f, "dynamo: {e}"),
            EngineError::Cache(e) => write!(f, "cache: {e}"),
            EngineError::UnknownLayer(layer) => {
                write!(f, "no service registered for layer {layer}")
            }
            EngineError::Unavailable(layer) => {
                write!(f, "layer {layer} control plane temporarily unavailable")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The co-simulated flow: the paper's three layers, plus any optional
/// extension tiers, behind an ordered [`LayerService`] registry.
pub struct CloudEngine {
    config: EngineConfig,
    kinesis: KinesisStream,
    storm: StormCluster,
    dynamo: DynamoTable,
    cache: Option<CacheCluster>,
    metrics: MetricsStore,
    billing: BillingMeter,
    last_cost_total: f64,
    /// Fractional read items carried between ticks so the configured
    /// read rate holds exactly in the long run.
    read_carry: f64,
    /// Structured-event sink (disabled by default; near-free when off).
    recorder: Recorder,
}

impl CloudEngine {
    /// Build the engine from configuration.
    pub fn new(config: EngineConfig) -> CloudEngine {
        let kinesis = KinesisStream::new(config.kinesis.clone());
        let storm = StormCluster::new(config.storm.clone(), config.topology.clone());
        let dynamo = DynamoTable::new(config.dynamo.clone());
        let cache = config.cache.clone().map(CacheCluster::new);
        CloudEngine {
            config,
            kinesis,
            storm,
            dynamo,
            cache,
            metrics: MetricsStore::new(),
            billing: BillingMeter::new(),
            last_cost_total: 0.0,
            read_carry: 0.0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attach a flight recorder; the engine emits [`kind::CLOUD_RESIZE`]
    /// and [`kind::CLOUD_THROTTLE`] events (plus per-layer gauges and
    /// counters) through it. Pass [`Recorder::disabled`] to detach.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The ingestion layer.
    pub fn kinesis(&self) -> &KinesisStream {
        &self.kinesis
    }

    /// The analytics layer.
    pub fn storm(&self) -> &StormCluster {
        &self.storm
    }

    /// The storage layer.
    pub fn dynamo(&self) -> &DynamoTable {
        &self.dynamo
    }

    /// The cache tier, when one is deployed.
    pub fn cache(&self) -> Option<&CacheCluster> {
        self.cache.as_ref()
    }

    /// The registered layer services, in ascending [`LayerId`] order.
    ///
    /// This order is the determinism contract everything downstream
    /// leans on: genome encodings, trace exports, and episode reports
    /// all iterate layers the way this registry yields them.
    pub fn services(&self) -> Vec<&dyn LayerService> {
        let mut services: Vec<&dyn LayerService> = vec![&self.kinesis, &self.storm, &self.dynamo];
        if let Some(cache) = &self.cache {
            services.push(cache);
        }
        services
    }

    /// The registered layers, in ascending [`LayerId`] order.
    pub fn layer_ids(&self) -> Vec<LayerId> {
        self.services().into_iter().map(LayerService::id).collect()
    }

    /// The service occupying `layer`, if registered.
    pub fn service(&self, layer: LayerId) -> Option<&dyn LayerService> {
        self.services().into_iter().find(|s| s.id() == layer)
    }

    fn service_mut(&mut self, layer: LayerId) -> Option<&mut dyn LayerService> {
        if LayerService::id(&self.kinesis) == layer {
            return Some(&mut self.kinesis);
        }
        if LayerService::id(&self.storm) == layer {
            return Some(&mut self.storm);
        }
        if LayerService::id(&self.dynamo) == layer {
            return Some(&mut self.dynamo);
        }
        match &mut self.cache {
            Some(cache) if LayerService::id(cache) == layer => Some(cache),
            _ => None,
        }
    }

    /// Units `layer` is converging to, if the layer is registered.
    pub fn target_units(&self, layer: LayerId) -> Option<f64> {
        self.service(layer).map(LayerService::target_units)
    }

    /// Units `layer` currently has deployed, if the layer is registered.
    pub fn actuator_units(&self, layer: LayerId) -> Option<f64> {
        self.service(layer).map(LayerService::actuator_units)
    }

    /// Actuator: request a resize of `layer` to `target` units.
    ///
    /// The layer's own [`LayerService::quantize`] decides how the
    /// continuous command lands on the service's actuation grid, and
    /// the attempt is traced as a [`kind::CLOUD_RESIZE`] event under the
    /// layer's resource name.
    pub fn actuate(
        &mut self,
        layer: LayerId,
        target: f64,
        now: SimTime,
    ) -> Result<(), EngineError> {
        let Some(service) = self.service(layer) else {
            return Err(EngineError::UnknownLayer(layer));
        };
        let from = service.actuator_units();
        let to = service.quantize(target);
        let result = match self.service_mut(layer) {
            Some(service) => service.actuate(target, now),
            None => Err(EngineError::UnknownLayer(layer)),
        };
        self.trace_resize(layer.resource(), from, to, &result, now);
        result
    }

    /// The metric store all layers publish into.
    pub fn metrics(&self) -> &MetricsStore {
        &self.metrics
    }

    /// The billing meter.
    pub fn billing(&self) -> &BillingMeter {
        &self.billing
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Actuator: request a shard-count change (compat wrapper over
    /// [`CloudEngine::actuate`] for the ingestion layer).
    pub fn scale_shards(&mut self, target: u32, now: SimTime) -> Result<(), EngineError> {
        self.actuate(crate::layer::INGESTION, f64::from(target), now)
    }

    /// Actuator: request a VM-count change (compat wrapper over
    /// [`CloudEngine::actuate`] for the analytics layer).
    pub fn scale_vms(&mut self, target: u32, now: SimTime) -> Result<(), EngineError> {
        self.actuate(crate::layer::ANALYTICS, f64::from(target), now)
    }

    /// Actuator: request a write-capacity change (compat wrapper over
    /// [`CloudEngine::actuate`] for the storage layer).
    pub fn scale_wcu(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        self.actuate(crate::layer::STORAGE, target, now)
    }

    /// Actuator: request a read-capacity change.
    pub fn scale_rcu(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        let from = self.dynamo.provisioned_rcu();
        let result = self
            .dynamo
            .update_read_capacity(target, now)
            .map_err(EngineError::Dynamo);
        self.trace_resize("rcu", from, target, &result, now);
        result
    }

    /// Emit a [`kind::CLOUD_RESIZE`] event for an actuation that changed
    /// something or was rejected (no-op re-assertions of the current
    /// size are not trace-worthy).
    fn trace_resize(
        &self,
        resource: &'static str,
        from: f64,
        to: f64,
        result: &Result<(), EngineError>,
        now: SimTime,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let accepted = result.is_ok();
        if accepted && from.to_bits() == to.to_bits() {
            return;
        }
        self.recorder.set_now(now);
        let mut fields: Vec<(&'static str, FieldValue)> = vec![
            ("accepted", accepted.into()),
            ("from", from.into()),
            ("resource", resource.into()),
            ("to", to.into()),
        ];
        if let Err(e) = result {
            fields.push(("error", e.to_string().into()));
        }
        self.recorder.emit(kind::CLOUD_RESIZE, &fields);
        self.recorder.count("cloud.resize_requests", 1);
        if !accepted {
            self.recorder.count("cloud.resize_rejections", 1);
        }
    }

    /// Advance the whole flow by one step of `dt`, feeding it the step's
    /// click records.
    pub fn tick(&mut self, records: &[ClickRecord], now: SimTime, dt: SimDuration) -> TickReport {
        // Layer 1: ingestion.
        let ingest = self.kinesis.ingest(records, now, dt);
        // Layer 2: analytics consumes what ingestion accepted.
        let process = self.storm.process(ingest.accepted, now, dt);
        // Layer 3: storage persists the emitted aggregates...
        let write = self
            .dynamo
            .write(process.emitted, self.config.aggregate_item_bytes, now, dt);
        // ...and serves the read traffic (dashboards + per-record
        // queries), through the cache tier when one is deployed: only
        // cache misses reach the table.
        let rw = &self.config.read_workload;
        let mut cache_outcome = None;
        let read = if rw.base_rate > 0.0 || rw.per_record > 0.0 {
            let demand = (rw.base_rate * dt.as_secs_f64() + rw.per_record * records.len() as f64)
                + self.read_carry;
            let items = demand.floor() as u64;
            self.read_carry = demand - items as f64;
            let table_items = match &mut self.cache {
                Some(cache) => {
                    let outcome = cache.serve(items, now, dt);
                    cache_outcome = Some(outcome);
                    outcome.misses
                }
                None => items,
            };
            self.dynamo.read(
                table_items,
                rw.avg_item_bytes,
                rw.eventually_consistent,
                now,
                dt,
            )
        } else {
            // No read traffic; still step the cache so in-flight fleet
            // resizes settle on time.
            if let Some(cache) = &mut self.cache {
                cache_outcome = Some(cache.serve(0, now, dt));
            }
            ReadOutcome::idle()
        };

        self.publish_metrics(now, records.len() as u64, &ingest, &process, &write, &read);
        self.publish_cache_metrics(now, cache_outcome.as_ref());
        self.trace_tick(now, &ingest, &process, &write, &read);

        // Billing: integrate held resources over the step.
        let prices = &self.config.prices;
        self.billing.accrue(
            prices,
            ResourceKind::Shard,
            self.kinesis.shards() as f64,
            dt,
        );
        self.billing.accrue(
            prices,
            ResourceKind::Vm,
            // Booting VMs bill too — you pay from launch, not from ready.
            self.storm.target_vms() as f64,
            dt,
        );
        self.billing.accrue(
            prices,
            ResourceKind::WriteCapacityUnit,
            self.dynamo.provisioned_wcu(),
            dt,
        );
        self.billing.accrue(
            prices,
            ResourceKind::ReadCapacityUnit,
            self.dynamo.provisioned_rcu(),
            dt,
        );
        if let Some(cache) = &self.cache {
            self.billing.accrue(
                prices,
                ResourceKind::CacheNode,
                // Like VMs, nodes bill from launch, not from ready.
                f64::from(cache.target_nodes()),
                dt,
            );
        }
        self.billing.accrue_put_records(prices, ingest.accepted);

        let cost = self.billing.total() - self.last_cost_total;
        self.last_cost_total = self.billing.total();

        TickReport {
            at: now,
            ingest,
            process,
            write,
            read,
            cache: cache_outcome,
            cost,
        }
    }

    /// Trace-side view of a tick: one [`kind::CLOUD_THROTTLE`] event per
    /// layer that throttled/dropped work, plus rolling counters, layer
    /// gauges, and a CPU histogram. One branch and no allocation when
    /// the recorder is disabled.
    fn trace_tick(
        &self,
        now: SimTime,
        ingest: &IngestOutcome,
        process: &ProcessOutcome,
        write: &WriteOutcome,
        read: &ReadOutcome,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.set_now(now);
        let throttles: [(&'static str, u64); 3] = [
            ("ingestion", ingest.throttled),
            ("storage", write.throttled),
            ("storage_read", read.throttled),
        ];
        for (layer, count) in throttles {
            if count > 0 {
                self.recorder.emit(
                    kind::CLOUD_THROTTLE,
                    &[("count", count.into()), ("layer", layer.into())],
                );
                self.recorder.count("cloud.throttled_records", count);
            }
        }
        self.recorder.count("cloud.ticks", 1);
        self.recorder
            .gauge("cloud.shards", f64::from(self.kinesis.shards()));
        self.recorder
            .gauge("cloud.vms", f64::from(self.storm.running_vms()));
        self.recorder
            .gauge("cloud.wcu", self.dynamo.provisioned_wcu());
        self.recorder
            .gauge("cloud.rcu", self.dynamo.provisioned_rcu());
        if let Some(cache) = &self.cache {
            self.recorder
                .gauge("cloud.cache_nodes", f64::from(cache.nodes()));
        }
        self.recorder.observe("cloud.cpu_pct", process.cpu_pct);
    }

    /// Publish the cache tier's metrics for the tick, when deployed.
    fn publish_cache_metrics(&mut self, now: SimTime, outcome: Option<&CacheOutcome>) {
        use metric_names::*;
        let Some(cache) = &self.cache else { return };
        let Some(outcome) = outcome else { return };
        let name = cache.name().to_owned();
        let nodes = cache.nodes();
        let m = &mut self.metrics;
        m.put(
            MetricId::new(NS_CACHE, CACHE_REQUESTS, &name),
            now,
            outcome.requests as f64,
        );
        m.put(
            MetricId::new(NS_CACHE, CACHE_HIT_RATIO, &name),
            now,
            outcome.hit_ratio,
        );
        m.put(
            MetricId::new(NS_CACHE, CACHE_UTILIZATION, &name),
            now,
            outcome.utilization,
        );
        m.put(
            MetricId::new(NS_CACHE, CACHE_NODES, &name),
            now,
            f64::from(nodes),
        );
    }

    fn publish_metrics(
        &mut self,
        now: SimTime,
        offered: u64,
        ingest: &IngestOutcome,
        process: &ProcessOutcome,
        write: &WriteOutcome,
        read: &ReadOutcome,
    ) {
        use metric_names::*;
        let stream = self.kinesis.name().to_owned();
        let cluster = self.storm.name().to_owned();
        let table = self.dynamo.name().to_owned();
        let m = &mut self.metrics;

        m.put(
            MetricId::new(NS_KINESIS, INCOMING_RECORDS, &stream),
            now,
            offered as f64,
        );
        m.put(
            MetricId::new(NS_KINESIS, WRITE_THROTTLED, &stream),
            now,
            ingest.throttled as f64,
        );
        m.put(
            MetricId::new(NS_KINESIS, SHARD_UTILIZATION, &stream),
            now,
            ingest.utilization,
        );
        m.put(
            MetricId::new(NS_KINESIS, OPEN_SHARDS, &stream),
            now,
            self.kinesis.shards() as f64,
        );
        m.put(
            MetricId::new(NS_KINESIS, MAX_SHARD_UTILIZATION, &stream),
            now,
            ingest.max_shard_utilization,
        );

        m.put(
            MetricId::new(NS_STORM, CPU_UTILIZATION, &cluster),
            now,
            process.cpu_pct,
        );
        m.put(
            MetricId::new(NS_STORM, TUPLES_PROCESSED, &cluster),
            now,
            process.processed as f64,
        );
        m.put(
            MetricId::new(NS_STORM, BACKLOG, &cluster),
            now,
            process.backlog as f64,
        );
        m.put(
            MetricId::new(NS_STORM, PROCESS_LATENCY, &cluster),
            now,
            process.latency_secs,
        );
        m.put(
            MetricId::new(NS_STORM, RUNNING_VMS, &cluster),
            now,
            self.storm.running_vms() as f64,
        );

        m.put(
            MetricId::new(NS_DYNAMO, CONSUMED_WCU, &table),
            now,
            write.consumed_wcu,
        );
        m.put(
            MetricId::new(NS_DYNAMO, DYNAMO_THROTTLED, &table),
            now,
            write.throttled as f64,
        );
        m.put(
            MetricId::new(NS_DYNAMO, WRITE_UTILIZATION, &table),
            now,
            write.utilization,
        );
        m.put(
            MetricId::new(NS_DYNAMO, PROVISIONED_WCU, &table),
            now,
            self.dynamo.provisioned_wcu(),
        );
        m.put(
            MetricId::new(NS_DYNAMO, CONSUMED_RCU, &table),
            now,
            read.consumed_rcu,
        );
        m.put(
            MetricId::new(NS_DYNAMO, DYNAMO_READ_THROTTLED, &table),
            now,
            read.throttled as f64,
        );
        m.put(
            MetricId::new(NS_DYNAMO, READ_UTILIZATION, &table),
            now,
            read.utilization,
        );
        m.put(
            MetricId::new(NS_DYNAMO, PROVISIONED_RCU, &table),
            now,
            self.dynamo.provisioned_rcu(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Statistic;
    use flower_sim::SimRng;
    use flower_workload::{ClickStreamConfig, ClickStreamGenerator, ConstantRate};

    fn engine() -> CloudEngine {
        CloudEngine::new(EngineConfig::default())
    }

    fn run_constant(engine: &mut CloudEngine, rate: f64, secs: u64, seed: u64) -> Vec<TickReport> {
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
        let mut process = ConstantRate::new(rate);
        let dt = SimDuration::from_secs(1);
        (0..secs)
            .map(|s| {
                let now = SimTime::from_secs(s);
                let records = generator.tick(&mut process, now, 1.0);
                engine.tick(&records, now, dt)
            })
            .collect()
    }

    #[test]
    fn layers_are_chained() {
        let mut e = engine();
        let reports = run_constant(&mut e, 1_000.0, 30, 1);
        let last = reports.last().unwrap();
        assert!(last.ingest.accepted > 0);
        assert!(last.process.processed > 0);
        // Aggregation 50:1 means some ticks write 15-25 items.
        let total_written: u64 = reports.iter().map(|r| r.write.written).sum();
        let total_processed: u64 = reports.iter().map(|r| r.process.processed).sum();
        let ratio = total_written as f64 / total_processed as f64;
        assert!((ratio - 0.02).abs() < 0.005, "aggregation ratio {ratio}");
    }

    #[test]
    fn metrics_are_published_every_tick() {
        let mut e = engine();
        run_constant(&mut e, 500.0, 10, 2);
        let m = e.metrics();
        assert_eq!(m.list_namespace("AWS/Kinesis").len(), 5);
        assert_eq!(m.list_namespace("Storm").len(), 5);
        assert_eq!(m.list_namespace("AWS/DynamoDB").len(), 8);
        let id = MetricId::new("Storm", "CpuUtilization", "storm-cluster");
        let count = m
            .window_stat(
                &id,
                Statistic::SampleCount,
                SimTime::ZERO,
                SimTime::from_secs(10),
            )
            .unwrap();
        assert_eq!(count, 10.0);
    }

    #[test]
    fn cpu_tracks_arrival_rate() {
        // The Fig. 2 dependency: higher arrival rate → higher CPU.
        let mut low = engine();
        let low_reports = run_constant(&mut low, 500.0, 20, 3);
        let mut high = engine();
        let high_reports = run_constant(&mut high, 1_800.0, 20, 3);
        let avg =
            |rs: &[TickReport]| rs.iter().map(|r| r.process.cpu_pct).sum::<f64>() / rs.len() as f64;
        assert!(
            avg(&high_reports) > avg(&low_reports) + 15.0,
            "low={}, high={}",
            avg(&low_reports),
            avg(&high_reports)
        );
    }

    #[test]
    fn cost_accrues_every_tick() {
        let mut e = engine();
        let reports = run_constant(&mut e, 100.0, 60, 4);
        assert!(reports.iter().all(|r| r.cost > 0.0));
        let total: f64 = reports.iter().map(|r| r.cost).sum();
        assert!((total - e.billing().total()).abs() < 1e-9);
        // 1 minute of 2 shards + 2 VMs + 100 WCU + 50 RCU ≈
        // (2·0.015 + 2·0.10 + 100·0.00065 + 50·0.00013)/60 ≈ $0.005.
        assert!(total > 0.003 && total < 0.01, "total=${total}");
    }

    #[test]
    fn actuators_reach_all_layers() {
        let mut e = engine();
        e.scale_shards(6, SimTime::ZERO).unwrap();
        e.scale_vms(5, SimTime::ZERO).unwrap();
        e.scale_wcu(700.0, SimTime::ZERO).unwrap();
        // Advance past every latency (VM boot = 60 s).
        run_constant(&mut e, 10.0, 61, 5);
        assert_eq!(e.kinesis().shards(), 6);
        assert_eq!(e.storm().running_vms(), 5);
        assert_eq!(e.dynamo().provisioned_wcu(), 700.0);
    }

    #[test]
    fn actuator_errors_are_typed() {
        let mut e = engine();
        assert!(matches!(
            e.scale_shards(0, SimTime::ZERO),
            Err(EngineError::Kinesis(_))
        ));
        assert!(matches!(
            e.scale_vms(0, SimTime::ZERO),
            Err(EngineError::Storm(_))
        ));
        assert!(matches!(
            e.scale_wcu(0.0, SimTime::ZERO),
            Err(EngineError::Dynamo(_))
        ));
    }

    #[test]
    fn overload_shows_up_across_layers() {
        // Tiny deployment, heavy load: ingestion throttles, analytics
        // saturates, and the backlog throttles the arrival the storage
        // layer sees.
        let mut e = CloudEngine::new(EngineConfig {
            kinesis: KinesisConfig {
                initial_shards: 4,
                ..Default::default()
            },
            storm: StormConfig {
                initial_vms: 1,
                ..Default::default()
            },
            dynamo: DynamoConfig {
                initial_wcu: 5.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let reports = run_constant(&mut e, 6_000.0, 30, 6);
        let last = reports.last().unwrap();
        assert!(last.ingest.throttled > 0, "kinesis should throttle");
        assert!(last.process.cpu_pct > 99.0, "storm should saturate");
        let any_dynamo_throttle = reports.iter().any(|r| r.write.throttled > 0);
        assert!(any_dynamo_throttle, "dynamo should throttle eventually");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut e1 = engine();
        let r1 = run_constant(&mut e1, 800.0, 20, 7);
        let mut e2 = engine();
        let r2 = run_constant(&mut e2, 800.0, 20, 7);
        assert_eq!(r1, r2);
    }

    #[test]
    fn traced_engine_emits_resize_and_throttle_events() {
        let rec = Recorder::with_capacity(1 << 12);
        let mut e = CloudEngine::new(EngineConfig {
            kinesis: KinesisConfig {
                initial_shards: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        e.set_recorder(rec.clone());
        // A real change and a rejected change both trace; a no-op does not.
        e.scale_shards(4, SimTime::ZERO).unwrap();
        e.scale_vms(e.storm().target_vms(), SimTime::ZERO).unwrap();
        assert!(e.scale_wcu(0.0, SimTime::ZERO).is_err());
        // Overload a tiny deployment so throttling shows up.
        run_constant(&mut e, 6_000.0, 10, 11);
        let events = rec.events();
        let resizes: Vec<_> = events
            .iter()
            .filter(|ev| ev.kind == kind::CLOUD_RESIZE)
            .collect();
        assert_eq!(resizes.len(), 2, "no-op vm resize must not trace");
        assert_eq!(resizes[0].str("resource"), Some("shards"));
        assert_eq!(resizes[0].f64("to"), Some(4.0));
        assert_eq!(resizes[1].str("resource"), Some("wcu"));
        assert!(resizes[1].str("error").is_some());
        assert!(
            events
                .iter()
                .any(|ev| ev.kind == kind::CLOUD_THROTTLE && ev.str("layer") == Some("ingestion")),
            "overload must emit ingestion throttle events"
        );
        assert_eq!(rec.counter("cloud.ticks"), 10);
        assert!(rec.counter("cloud.throttled_records") > 0);
        assert_eq!(rec.counter("cloud.resize_rejections"), 1);
        assert!(rec.gauge_value("cloud.shards").is_some());
        assert!(rec
            .histogram("cloud.cpu_pct")
            .is_some_and(|h| h.count == 10));
    }

    #[test]
    fn disabled_recorder_changes_nothing() {
        // A tick stream with the default (disabled) recorder matches one
        // with an enabled recorder attached: tracing is observational.
        let mut plain = engine();
        let r1 = run_constant(&mut plain, 800.0, 15, 9);
        let mut traced = engine();
        traced.set_recorder(Recorder::with_capacity(64));
        let r2 = run_constant(&mut traced, 800.0, 15, 9);
        assert_eq!(r1, r2);
    }
}
