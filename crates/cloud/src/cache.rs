//! An ElastiCache-like read cache (the fourth, extension tier).
//!
//! The paper's demo flow has three layers, but Flower's architecture is
//! layer-generic — this simulator exists to prove it. A cache cluster
//! sits on the storage *read* path: read requests hit the cache first,
//! and only the misses fall through to DynamoDB. Its scaled resource is
//! the node count, with the usual control-relevant dynamics:
//!
//! * each node serves a fixed read rate and holds a fixed number of
//!   items, so the achievable hit ratio grows with the fleet until the
//!   working set fits (capped by `max_hit_ratio` for the compulsory
//!   miss floor);
//! * resizing the fleet is not instantaneous and concurrent resizes are
//!   rejected, like a cluster in a `modifying` state.

use flower_sim::{SimDuration, SimTime};

use crate::alarms::{Alarm, Comparison};
use crate::engine::{metric_names, EngineError, TickReport};
use crate::layer::{LayerId, LayerService, SensorProbe, CACHE};
use crate::metrics::{MetricId, Statistic};
use crate::pricing::PriceList;

/// Static configuration of a simulated cache cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Cluster name (metric dimension).
    pub name: String,
    /// Initial number of cache nodes.
    pub initial_nodes: u32,
    /// Per-node read service rate (requests/second).
    pub reads_per_node_sec: f64,
    /// Items one node can hold.
    pub items_per_node: f64,
    /// Size of the hot working set the reads draw from, in items.
    pub working_set_items: f64,
    /// Hit-ratio ceiling (compulsory misses keep it below 1).
    pub max_hit_ratio: f64,
    /// Time a fleet resize takes to complete.
    pub resize_latency: SimDuration,
    /// Upper bound on node count (account limit).
    pub max_nodes: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            name: "hot-aggregates".to_owned(),
            initial_nodes: 1,
            reads_per_node_sec: 2_000.0,
            items_per_node: 1_000_000.0,
            working_set_items: 4_000_000.0,
            max_hit_ratio: 0.95,
            resize_latency: SimDuration::from_secs(60),
            max_nodes: 20,
        }
    }
}

/// Result of one cache step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    /// Read requests offered to the cache this step.
    pub requests: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that fell through to the backing store.
    pub misses: u64,
    /// Offered read rate over fleet service capacity, in `[0, ∞)`.
    pub utilization: f64,
    /// The hit ratio in effect this step, in `[0, 1]`.
    pub hit_ratio: f64,
}

impl CacheOutcome {
    /// A step with no read traffic.
    pub fn idle() -> CacheOutcome {
        CacheOutcome {
            requests: 0,
            hits: 0,
            misses: 0,
            utilization: 0.0,
            hit_ratio: 0.0,
        }
    }
}

/// Errors from cache control-plane operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A fleet resize is already in flight.
    ResizeInProgress,
    /// Target node count out of `[1, max_nodes]`.
    InvalidNodeCount {
        /// The rejected target.
        requested: u32,
        /// The account limit.
        max: u32,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::ResizeInProgress => write!(f, "cluster is modifying; resize in progress"),
            CacheError::InvalidNodeCount { requested, max } => {
                write!(f, "invalid node count {requested} (allowed 1..={max})")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// The simulated cache cluster.
#[derive(Debug, Clone)]
pub struct CacheCluster {
    config: CacheConfig,
    nodes: u32,
    pending_resize: Option<(u32, SimTime)>,
    total_requests: u64,
    total_hits: u64,
    total_misses: u64,
    resize_count: u64,
}

impl CacheCluster {
    /// Create a cluster per `config`.
    pub fn new(config: CacheConfig) -> CacheCluster {
        assert!(config.initial_nodes >= 1, "need at least one node");
        assert!(config.initial_nodes <= config.max_nodes);
        assert!(config.reads_per_node_sec > 0.0 && config.items_per_node > 0.0);
        assert!(config.working_set_items > 0.0);
        assert!((0.0..=1.0).contains(&config.max_hit_ratio));
        CacheCluster {
            nodes: config.initial_nodes,
            config,
            pending_resize: None,
            total_requests: 0,
            total_hits: 0,
            total_misses: 0,
            resize_count: 0,
        }
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Currently running nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The resize target, when one is in flight.
    pub fn pending_resize(&self) -> Option<(u32, SimTime)> {
        self.pending_resize
    }

    /// The node count the cluster is converging to.
    pub fn target_nodes(&self) -> u32 {
        self.pending_resize.map(|(t, _)| t).unwrap_or(self.nodes)
    }

    /// Lifetime counters: `(requests, hits, misses, resizes)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.total_requests,
            self.total_hits,
            self.total_misses,
            self.resize_count,
        )
    }

    /// The hit ratio the current fleet achieves on the working set.
    pub fn hit_ratio(&self) -> f64 {
        let coverage =
            self.nodes as f64 * self.config.items_per_node / self.config.working_set_items;
        self.config.max_hit_ratio.min(coverage)
    }

    /// Request a fleet resize to `target` nodes at `now`; takes effect
    /// after `resize_latency`. Requesting the current count is a no-op.
    pub fn set_node_target(&mut self, target: u32, now: SimTime) -> Result<(), CacheError> {
        self.settle_resize(now);
        if target == self.nodes && self.pending_resize.is_none() {
            return Ok(());
        }
        if self.pending_resize.is_some() {
            return Err(CacheError::ResizeInProgress);
        }
        if target < 1 || target > self.config.max_nodes {
            return Err(CacheError::InvalidNodeCount {
                requested: target,
                max: self.config.max_nodes,
            });
        }
        self.pending_resize = Some((target, now + self.config.resize_latency));
        Ok(())
    }

    fn settle_resize(&mut self, now: SimTime) {
        if let Some((target, ready_at)) = self.pending_resize {
            if now >= ready_at {
                self.nodes = target;
                self.pending_resize = None;
                self.resize_count += 1;
            }
        }
    }

    /// Serve `requests` read requests spanning a step of `dt`.
    ///
    /// Requests beyond the fleet's service capacity bypass the cache
    /// (they count as misses), so an undersized fleet shows up both as
    /// utilization above 1 and as extra load on the backing store.
    pub fn serve(&mut self, requests: u64, now: SimTime, dt: SimDuration) -> CacheOutcome {
        self.settle_resize(now);
        let dt_secs = dt.as_secs_f64();
        assert!(dt_secs > 0.0, "cache step must have positive length");
        let capacity_rate = self.nodes as f64 * self.config.reads_per_node_sec;
        let capacity = (capacity_rate * dt_secs).floor() as u64;
        let hit_ratio = self.hit_ratio();
        let served = requests.min(capacity);
        let hits = (served as f64 * hit_ratio).floor() as u64;
        let misses = requests - hits;
        let utilization = (requests as f64 / dt_secs) / capacity_rate;
        self.total_requests += requests;
        self.total_hits += hits;
        self.total_misses += misses;
        CacheOutcome {
            requests,
            hits,
            misses,
            utilization,
            hit_ratio,
        }
    }
}

impl LayerService for CacheCluster {
    fn id(&self) -> LayerId {
        CACHE
    }

    fn service_name(&self) -> &str {
        self.name()
    }

    fn actuator_units(&self) -> f64 {
        f64::from(self.nodes)
    }

    fn target_units(&self) -> f64 {
        f64::from(self.target_nodes())
    }

    fn max_units(&self) -> f64 {
        f64::from(self.config.max_nodes)
    }

    fn unit_price(&self, prices: &PriceList) -> f64 {
        prices.cache_node_hour
    }

    fn quantize(&self, target: f64) -> f64 {
        f64::from(target as u32)
    }

    fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        self.set_node_target(target as u32, now)
            .map_err(EngineError::Cache)
    }

    fn utilization_sensor(&self) -> SensorProbe {
        SensorProbe {
            metric: MetricId::new(
                metric_names::NS_CACHE,
                metric_names::CACHE_UTILIZATION,
                self.name(),
            ),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    fn measurement(&self, tick: &TickReport) -> Option<f64> {
        tick.cache.map(|c| c.utilization * 100.0)
    }

    fn headline_metrics(&self) -> Vec<MetricId> {
        use metric_names::*;
        [
            CACHE_REQUESTS,
            CACHE_HIT_RATIO,
            CACHE_UTILIZATION,
            CACHE_NODES,
        ]
        .into_iter()
        .map(|m| MetricId::new(NS_CACHE, m, self.name()))
        .collect()
    }

    fn default_alarm(&self) -> Option<Alarm> {
        Some(Alarm::new(
            format!("{}-hit-low", CACHE.label()),
            MetricId::new(
                metric_names::NS_CACHE,
                metric_names::CACHE_HIT_RATIO,
                self.name(),
            ),
            Statistic::Average,
            SimDuration::from_mins(1),
            Comparison::LessThan,
            0.5,
            2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: u32) -> CacheCluster {
        CacheCluster::new(CacheConfig {
            initial_nodes: nodes,
            ..Default::default()
        })
    }

    #[test]
    fn hit_ratio_grows_with_fleet_until_capped() {
        // 1M items/node over a 4M working set: 25% per node, capped 95%.
        assert_eq!(cluster(1).hit_ratio(), 0.25);
        assert_eq!(cluster(3).hit_ratio(), 0.75);
        assert_eq!(cluster(8).hit_ratio(), 0.95);
    }

    #[test]
    fn serve_splits_hits_and_misses() {
        let mut c = cluster(2); // 50% hit ratio, 4,000 req/s capacity
        let out = c.serve(1_000, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(out.requests, 1_000);
        assert_eq!(out.hits, 500);
        assert_eq!(out.misses, 500);
        assert_eq!(out.hits + out.misses, out.requests);
        assert_eq!(out.utilization, 0.25);
        let (req, hits, misses, _) = c.counters();
        assert_eq!((req, hits, misses), (1_000, 500, 500));
    }

    #[test]
    fn overload_bypasses_to_the_backing_store() {
        let mut c = cluster(1); // 2,000 req/s capacity, 25% hit ratio
        let out = c.serve(6_000, SimTime::ZERO, SimDuration::from_secs(1));
        // Only the served fraction can hit; the rest miss through.
        assert_eq!(out.hits, 500);
        assert_eq!(out.misses, 5_500);
        assert!(out.utilization > 2.9);
    }

    #[test]
    fn resize_takes_effect_after_latency() {
        let mut c = cluster(1);
        c.set_node_target(4, SimTime::ZERO).unwrap();
        assert_eq!(c.nodes(), 1, "not yet effective");
        assert_eq!(c.target_nodes(), 4);
        c.serve(100, SimTime::from_secs(30), SimDuration::from_secs(1));
        assert_eq!(c.nodes(), 1);
        c.serve(100, SimTime::from_secs(60), SimDuration::from_secs(1));
        assert_eq!(c.nodes(), 4);
        assert!(c.pending_resize().is_none());
        assert_eq!(c.counters().3, 1);
    }

    #[test]
    fn concurrent_resize_rejected_and_bounds_enforced() {
        let mut c = cluster(1);
        c.set_node_target(2, SimTime::ZERO).unwrap();
        assert_eq!(
            c.set_node_target(3, SimTime::from_secs(1)),
            Err(CacheError::ResizeInProgress)
        );
        let mut c = cluster(1);
        assert!(matches!(
            c.set_node_target(0, SimTime::ZERO),
            Err(CacheError::InvalidNodeCount { .. })
        ));
        assert!(matches!(
            c.set_node_target(10_000, SimTime::ZERO),
            Err(CacheError::InvalidNodeCount { .. })
        ));
        c.set_node_target(1, SimTime::ZERO).unwrap();
        assert!(c.pending_resize().is_none(), "same-count resize is a no-op");
    }

    #[test]
    fn layer_service_contract() {
        let c = cluster(2);
        assert_eq!(LayerService::id(&c), CACHE);
        assert_eq!(c.actuator_units(), 2.0);
        assert_eq!(c.max_units(), 20.0);
        assert_eq!(c.min_units(), 1.0);
        assert_eq!(c.quantize(3.7), 3.0);
        assert_eq!(c.unit_price(&PriceList::default()), 0.090);
        let probe = c.utilization_sensor();
        assert_eq!(probe.metric.metric, metric_names::CACHE_UTILIZATION);
        assert_eq!(probe.scale, 100.0);
        assert_eq!(c.headline_metrics().len(), 4);
        let alarm = c.default_alarm().unwrap();
        assert_eq!(alarm.name, "cache-hit-low");
    }
}
