//! A Storm-like analytics cluster simulator (analytics layer).
//!
//! A [`Topology`] is a linear spout→bolt pipeline; each bolt charges a
//! CPU cost per tuple and emits `selectivity` output tuples per input.
//! The cluster executes the topology on a fleet of identical worker VMs:
//!
//! * aggregate capacity = `vms · cores · 1000 ms` of CPU per second;
//! * demand above capacity accumulates in a bounded backlog (beyond the
//!   bound, tuples are dropped — Storm's spout back-pressure analogue);
//! * cluster CPU% = idle baseline + busy fraction, so the fitted
//!   dependency between arrival rate and CPU has a positive intercept —
//!   the shape of the paper's Eq. 2 (`CPU ≈ 0.0002·WriteCapacity + 4.8`);
//! * adding VMs takes a boot delay; removing VMs is immediate (drain).

use flower_sim::{SimDuration, SimRng, SimTime};

use crate::alarms::{Alarm, Comparison};
use crate::engine::{metric_names, EngineError, TickReport};
use crate::layer::{LayerId, LayerService, SensorProbe, ANALYTICS};
use crate::metrics::{MetricId, Statistic};
use crate::pricing::PriceList;

/// One bolt of the topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Bolt {
    /// Bolt name (for reports).
    pub name: String,
    /// CPU milliseconds consumed per input tuple.
    pub cpu_ms_per_tuple: f64,
    /// Output tuples emitted per input tuple (e.g. 0.1 for a 10:1
    /// aggregation, 2.0 for a splitter).
    pub selectivity: f64,
}

impl Bolt {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cpu_ms_per_tuple: f64, selectivity: f64) -> Bolt {
        assert!(cpu_ms_per_tuple >= 0.0, "negative CPU cost");
        assert!(selectivity >= 0.0, "negative selectivity");
        Bolt {
            name: name.into(),
            cpu_ms_per_tuple,
            selectivity,
        }
    }
}

/// A linear spout→bolt pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Topology name.
    pub name: String,
    /// The bolts, in pipeline order.
    pub bolts: Vec<Bolt>,
}

impl Topology {
    /// Build a topology; needs at least one bolt.
    pub fn new(name: impl Into<String>, bolts: Vec<Bolt>) -> Topology {
        assert!(!bolts.is_empty(), "topology needs at least one bolt");
        Topology {
            name: name.into(),
            bolts,
        }
    }

    /// The click-stream counting topology of the paper's demo flow
    /// (after Amazon's reference architecture): parse → sessionize →
    /// windowed count, aggregating ~50 input records into one output row.
    pub fn clickstream() -> Topology {
        Topology::new(
            "clickstream-counts",
            vec![
                Bolt::new("parse", 0.20, 1.0),
                Bolt::new("sessionize", 0.35, 1.0),
                Bolt::new("window-count", 0.25, 0.02),
            ],
        )
    }

    /// Total CPU milliseconds charged per spout tuple, accounting for
    /// selectivity shrinking/growing the tuple volume along the pipeline.
    pub fn cpu_ms_per_input_tuple(&self) -> f64 {
        let mut volume = 1.0;
        let mut total = 0.0;
        for bolt in &self.bolts {
            total += volume * bolt.cpu_ms_per_tuple;
            volume *= bolt.selectivity;
        }
        total
    }

    /// Output tuples emitted per spout tuple.
    pub fn output_per_input_tuple(&self) -> f64 {
        self.bolts.iter().map(|b| b.selectivity).product()
    }
}

/// Static configuration of the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct StormConfig {
    /// Cluster name (metric dimension).
    pub name: String,
    /// Initial VM count.
    pub initial_vms: u32,
    /// Cores per VM.
    pub cores_per_vm: u32,
    /// Boot delay of a new VM.
    pub vm_boot_delay: SimDuration,
    /// Maximum queued tuples before drops.
    pub max_backlog: u64,
    /// Maximum VM count (account limit).
    pub max_vms: u32,
    /// CPU% consumed by the OS and Storm daemons when idle.
    pub idle_cpu_pct: f64,
    /// Stationary standard deviation of the AR(1) measurement noise
    /// added to the reported CPU% (0 = noiseless sensor, the default).
    /// Real cluster CPU readings carry GC pauses, co-tenant interference
    /// and sampling lag — *temporally correlated* disturbances, which is
    /// why the noise is an Ornstein–Uhlenbeck process (correlation time
    /// ~2 min) rather than white: it survives per-minute averaging and is
    /// what keeps the Fig. 2 correlation at ~0.95 instead of 1.0.
    pub cpu_noise_std: f64,
    /// Seed of the measurement-noise stream.
    pub noise_seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            name: "storm-cluster".to_owned(),
            initial_vms: 2,
            cores_per_vm: 2,
            vm_boot_delay: SimDuration::from_secs(60),
            max_backlog: 2_000_000,
            max_vms: 100,
            idle_cpu_pct: 4.8,
            cpu_noise_std: 0.0,
            noise_seed: 0x5707,
        }
    }
}

/// Result of one processing step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessOutcome {
    /// Tuples fully processed this step.
    pub processed: u64,
    /// Output tuples emitted downstream (to the storage layer).
    pub emitted: u64,
    /// Tuples dropped because the backlog bound was hit.
    pub dropped: u64,
    /// Current backlog after the step.
    pub backlog: u64,
    /// Cluster CPU utilization in percent (idle baseline included).
    pub cpu_pct: f64,
    /// Estimated processing latency in seconds (backlog over service
    /// rate; infinite backlog growth reads as very large, not ∞).
    pub latency_secs: f64,
}

/// Errors from control-plane operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StormError {
    /// VM target outside `[1, max_vms]`.
    InvalidVmCount {
        /// The rejected target.
        requested: u32,
        /// The account limit.
        max: u32,
    },
}

impl std::fmt::Display for StormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StormError::InvalidVmCount { requested, max } => {
                write!(f, "invalid VM count {requested} (allowed 1..={max})")
            }
        }
    }
}

impl std::error::Error for StormError {}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct StormCluster {
    config: StormConfig,
    topology: Topology,
    noise_rng: SimRng,
    /// Current AR(1) noise state.
    noise_state: f64,
    running_vms: u32,
    /// VMs that have been requested but not booted: `(count, ready_at)`.
    booting: Vec<(u32, SimTime)>,
    backlog: u64,
    /// Fractional output tuples carried between steps so aggregation
    /// ratios hold exactly in the long run.
    emit_carry: f64,
    total_processed: u64,
    total_dropped: u64,
}

impl StormCluster {
    /// Create a cluster running `topology` per `config`.
    pub fn new(config: StormConfig, topology: Topology) -> StormCluster {
        assert!(config.initial_vms >= 1 && config.initial_vms <= config.max_vms);
        assert!(config.cores_per_vm >= 1);
        assert!((0.0..100.0).contains(&config.idle_cpu_pct));
        StormCluster {
            running_vms: config.initial_vms,
            noise_rng: SimRng::seed(config.noise_seed),
            noise_state: 0.0,
            config,
            topology,
            booting: Vec::new(),
            backlog: 0,
            emit_carry: 0.0,
            total_processed: 0,
            total_dropped: 0,
        }
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The topology in execution.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// VMs currently serving (excludes booting ones).
    pub fn running_vms(&self) -> u32 {
        self.running_vms
    }

    /// VMs requested but still booting.
    pub fn booting_vms(&self) -> u32 {
        self.booting.iter().map(|&(n, _)| n).sum()
    }

    /// The VM count the cluster is converging to.
    pub fn target_vms(&self) -> u32 {
        self.running_vms + self.booting_vms()
    }

    /// Current backlog in tuples.
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Lifetime counters: `(processed, dropped)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.total_processed, self.total_dropped)
    }

    /// Aggregate tuple service rate (tuples/second) at the current
    /// running VM count.
    pub fn service_rate(&self) -> f64 {
        let cpu_ms_per_sec = self.running_vms as f64 * self.config.cores_per_vm as f64 * 1_000.0;
        cpu_ms_per_sec / self.topology.cpu_ms_per_input_tuple()
    }

    /// Set the cluster's target VM count at time `now`. Scale-out boots
    /// after `vm_boot_delay`; scale-in takes effect immediately.
    pub fn set_vm_target(&mut self, target: u32, now: SimTime) -> Result<(), StormError> {
        self.settle_boots(now);
        if target < 1 || target > self.config.max_vms {
            return Err(StormError::InvalidVmCount {
                requested: target,
                max: self.config.max_vms,
            });
        }
        let current_target = self.target_vms();
        match target.cmp(&current_target) {
            std::cmp::Ordering::Greater => {
                self.booting
                    .push((target - current_target, now + self.config.vm_boot_delay));
            }
            std::cmp::Ordering::Less => {
                let mut to_remove = current_target - target;
                // Cancel booting VMs first (cheapest), newest first.
                while to_remove > 0 {
                    if let Some(last) = self.booting.last_mut() {
                        let cancel = last.0.min(to_remove);
                        last.0 -= cancel;
                        to_remove -= cancel;
                        if last.0 == 0 {
                            self.booting.pop();
                        }
                    } else {
                        self.running_vms -= to_remove;
                        to_remove = 0;
                    }
                }
            }
            std::cmp::Ordering::Equal => {}
        }
        Ok(())
    }

    fn settle_boots(&mut self, now: SimTime) {
        let mut booted = 0;
        self.booting.retain(|&(n, ready)| {
            if now >= ready {
                booted += n;
                false
            } else {
                true
            }
        });
        self.running_vms += booted;
    }

    /// Process `incoming` tuples over a step of `dt`.
    pub fn process(&mut self, incoming: u64, now: SimTime, dt: SimDuration) -> ProcessOutcome {
        self.settle_boots(now);
        let dt_secs = dt.as_secs_f64();
        assert!(dt_secs > 0.0, "process step must have positive length");

        let capacity = (self.service_rate() * dt_secs).floor() as u64;
        let demand = self.backlog + incoming;
        let processed = demand.min(capacity);
        let mut backlog = demand - processed;
        let dropped = backlog.saturating_sub(self.config.max_backlog);
        backlog -= dropped;
        self.backlog = backlog;

        // Exact long-run aggregation ratio via fractional carry.
        let emitted_f = processed as f64 * self.topology.output_per_input_tuple() + self.emit_carry;
        let emitted = emitted_f.floor() as u64;
        self.emit_carry = emitted_f - emitted as f64;

        self.total_processed += processed;
        self.total_dropped += dropped;

        let busy_fraction = if capacity == 0 {
            1.0
        } else {
            (demand as f64 / capacity as f64).min(1.0)
        };
        let mut cpu_pct =
            self.config.idle_cpu_pct + (100.0 - self.config.idle_cpu_pct) * busy_fraction;
        if self.config.cpu_noise_std > 0.0 {
            // AR(1) with a ~2-minute correlation time per 1-second step.
            const RHO: f64 = 0.9917; // exp(-1/120)
            let innovation_std = self.config.cpu_noise_std * (1.0 - RHO * RHO).sqrt();
            self.noise_state = RHO * self.noise_state + self.noise_rng.normal(0.0, innovation_std);
            cpu_pct = (cpu_pct + self.noise_state).clamp(0.0, 100.0);
        }
        let service = self.service_rate();
        let latency_secs = if service > 0.0 {
            backlog as f64 / service
        } else {
            f64::MAX
        };

        ProcessOutcome {
            processed,
            emitted,
            dropped,
            backlog,
            cpu_pct,
            latency_secs,
        }
    }
}

impl LayerService for StormCluster {
    fn id(&self) -> LayerId {
        ANALYTICS
    }

    fn service_name(&self) -> &str {
        self.name()
    }

    /// VMs bill (and trace) from launch, so the actuator baseline is the
    /// target fleet, booting included.
    fn actuator_units(&self) -> f64 {
        f64::from(self.target_vms())
    }

    fn target_units(&self) -> f64 {
        f64::from(self.target_vms())
    }

    fn max_units(&self) -> f64 {
        f64::from(self.config.max_vms)
    }

    fn unit_price(&self, prices: &PriceList) -> f64 {
        prices.vm_hour
    }

    fn quantize(&self, target: f64) -> f64 {
        f64::from(target as u32)
    }

    fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        self.set_vm_target(target as u32, now)
            .map_err(EngineError::Storm)
    }

    fn utilization_sensor(&self) -> SensorProbe {
        SensorProbe {
            metric: MetricId::new(
                metric_names::NS_STORM,
                metric_names::CPU_UTILIZATION,
                self.name(),
            ),
            statistic: Statistic::Average,
            scale: 1.0,
        }
    }

    fn measurement(&self, tick: &TickReport) -> Option<f64> {
        Some(tick.process.cpu_pct)
    }

    fn headline_metrics(&self) -> Vec<MetricId> {
        use metric_names::*;
        [
            CPU_UTILIZATION,
            TUPLES_PROCESSED,
            BACKLOG,
            PROCESS_LATENCY,
            RUNNING_VMS,
        ]
        .into_iter()
        .map(|m| MetricId::new(NS_STORM, m, self.name()))
        .collect()
    }

    fn default_alarm(&self) -> Option<Alarm> {
        Some(Alarm::new(
            "analytics-cpu-high",
            MetricId::new(
                metric_names::NS_STORM,
                metric_names::CPU_UTILIZATION,
                self.name(),
            ),
            Statistic::Average,
            SimDuration::from_mins(1),
            Comparison::GreaterThan,
            85.0,
            2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(vms: u32) -> StormCluster {
        StormCluster::new(
            StormConfig {
                initial_vms: vms,
                ..Default::default()
            },
            Topology::clickstream(),
        )
    }

    const DT: SimDuration = SimDuration::from_secs(1);

    #[test]
    fn topology_cost_accounting() {
        let t = Topology::clickstream();
        // parse 0.20 + sessionize 0.35 + window-count 0.25, all at full
        // volume until the last bolt.
        assert!((t.cpu_ms_per_input_tuple() - 0.80).abs() < 1e-12);
        assert!((t.output_per_input_tuple() - 0.02).abs() < 1e-12);
        // Selectivity shrinks downstream volume:
        let t2 = Topology::new(
            "x",
            vec![Bolt::new("a", 1.0, 0.5), Bolt::new("b", 1.0, 1.0)],
        );
        assert!((t2.cpu_ms_per_input_tuple() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn service_rate_scales_with_vms() {
        // 2 VMs × 2 cores × 1000 ms / 0.8 ms/tuple = 5,000 tuples/s.
        assert!((cluster(2).service_rate() - 5_000.0).abs() < 1e-9);
        assert!((cluster(4).service_rate() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn underload_processes_everything() {
        let mut c = cluster(2);
        let out = c.process(3_000, SimTime::ZERO, DT);
        assert_eq!(out.processed, 3_000);
        assert_eq!(out.backlog, 0);
        assert_eq!(out.dropped, 0);
        // busy = 3000/5000 = 0.6 → cpu ≈ 4.8 + 95.2·0.6 ≈ 61.9
        assert!((out.cpu_pct - 61.92).abs() < 0.1, "cpu={}", out.cpu_pct);
    }

    #[test]
    fn overload_builds_backlog_then_drains() {
        let mut c = cluster(2); // 5,000 tuples/s
        let out1 = c.process(8_000, SimTime::ZERO, DT);
        assert_eq!(out1.processed, 5_000);
        assert_eq!(out1.backlog, 3_000);
        assert!((out1.cpu_pct - 100.0).abs() < 1e-9);
        assert!(out1.latency_secs > 0.5);
        // Light next tick: backlog drains first.
        let out2 = c.process(1_000, SimTime::from_secs(1), DT);
        assert_eq!(out2.processed, 4_000);
        assert_eq!(out2.backlog, 0);
    }

    #[test]
    fn backlog_bound_drops_tuples() {
        let mut c = StormCluster::new(
            StormConfig {
                initial_vms: 1,
                max_backlog: 1_000,
                ..Default::default()
            },
            Topology::clickstream(),
        );
        let out = c.process(50_000, SimTime::ZERO, DT);
        assert_eq!(out.backlog, 1_000);
        assert!(out.dropped > 40_000);
        assert_eq!(c.counters().1, out.dropped);
    }

    #[test]
    fn emitted_respects_aggregation_ratio() {
        let mut c = cluster(4);
        let mut total_emitted = 0u64;
        let mut total_processed = 0u64;
        for s in 0..100 {
            let out = c.process(5_000, SimTime::from_secs(s), DT);
            total_emitted += out.emitted;
            total_processed += out.processed;
        }
        let ratio = total_emitted as f64 / total_processed as f64;
        assert!((ratio - 0.02).abs() < 1e-4, "ratio={ratio}");
    }

    #[test]
    fn scale_out_waits_for_boot() {
        let mut c = cluster(2);
        c.set_vm_target(4, SimTime::ZERO).unwrap();
        assert_eq!(c.running_vms(), 2);
        assert_eq!(c.booting_vms(), 2);
        assert_eq!(c.target_vms(), 4);
        c.process(0, SimTime::from_secs(30), DT);
        assert_eq!(c.running_vms(), 2, "still booting at t=30s");
        c.process(0, SimTime::from_secs(60), DT);
        assert_eq!(c.running_vms(), 4);
        assert_eq!(c.booting_vms(), 0);
    }

    #[test]
    fn scale_in_is_immediate_and_cancels_boots_first() {
        let mut c = cluster(4);
        c.set_vm_target(8, SimTime::ZERO).unwrap();
        assert_eq!(c.target_vms(), 8);
        // Scale back to 6: cancels 2 booting VMs, keeps 4 running.
        c.set_vm_target(6, SimTime::from_secs(1)).unwrap();
        assert_eq!(c.running_vms(), 4);
        assert_eq!(c.booting_vms(), 2);
        // Scale to 2: cancels remaining boots, stops 2 running VMs now.
        c.set_vm_target(2, SimTime::from_secs(2)).unwrap();
        assert_eq!(c.running_vms(), 2);
        assert_eq!(c.booting_vms(), 0);
    }

    #[test]
    fn invalid_vm_targets_rejected() {
        let mut c = cluster(2);
        assert!(matches!(
            c.set_vm_target(0, SimTime::ZERO),
            Err(StormError::InvalidVmCount { .. })
        ));
        assert!(matches!(
            c.set_vm_target(1_000, SimTime::ZERO),
            Err(StormError::InvalidVmCount { .. })
        ));
    }

    #[test]
    fn idle_cluster_reports_idle_cpu() {
        let mut c = cluster(2);
        let out = c.process(0, SimTime::ZERO, DT);
        assert!((out.cpu_pct - 4.8).abs() < 1e-9);
        assert_eq!(out.processed, 0);
    }

    #[test]
    fn cpu_is_linear_in_load_below_saturation() {
        // The linearity behind the paper's Eq. 2.
        let mut c = cluster(4); // 10,000 tuples/s
        let mut pts = Vec::new();
        for (i, load) in [1_000u64, 3_000, 5_000, 7_000, 9_000].iter().enumerate() {
            let out = c.process(*load, SimTime::from_secs(i as u64), DT);
            assert_eq!(out.backlog, 0);
            pts.push((*load as f64, out.cpu_pct));
        }
        // Slope between consecutive points must be constant.
        let slope01 = (pts[1].1 - pts[0].1) / (pts[1].0 - pts[0].0);
        let slope34 = (pts[4].1 - pts[3].1) / (pts[4].0 - pts[3].0);
        assert!((slope01 - slope34).abs() < 1e-9);
        // Intercept extrapolates to the idle baseline.
        let intercept = pts[0].1 - slope01 * pts[0].0;
        assert!((intercept - 4.8).abs() < 1e-6, "intercept={intercept}");
    }

    #[test]
    #[should_panic(expected = "at least one bolt")]
    fn empty_topology_panics() {
        Topology::new("x", vec![]);
    }
}
