//! CloudWatch-like metric alarms.
//!
//! An [`Alarm`] watches one metric statistic over a period and moves
//! through the CloudWatch state machine `INSUFFICIENT_DATA → OK ⇄ ALARM`
//! after a configurable number of consecutive breaching evaluations.
//! The demo's rule-based autoscaling baseline is exactly "alarm → scaling
//! action", and the cross-platform monitor surfaces alarm states next to
//! the raw metrics.

use flower_sim::{SimDuration, SimTime};

use crate::metrics::{MetricId, MetricsStore, Statistic};

/// Comparison operator of an alarm condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Breach when `value > threshold`.
    GreaterThan,
    /// Breach when `value >= threshold`.
    GreaterOrEqual,
    /// Breach when `value < threshold`.
    LessThan,
    /// Breach when `value <= threshold`.
    LessOrEqual,
}

impl Comparison {
    fn breaches(self, value: f64, threshold: f64) -> bool {
        match self {
            Comparison::GreaterThan => value > threshold,
            Comparison::GreaterOrEqual => value >= threshold,
            Comparison::LessThan => value < threshold,
            Comparison::LessOrEqual => value <= threshold,
        }
    }
}

/// Alarm states, following CloudWatch's three-state model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmState {
    /// Not enough datapoints to evaluate yet.
    InsufficientData,
    /// The condition does not hold.
    Ok,
    /// The condition held for the configured number of evaluations.
    Alarm,
}

impl std::fmt::Display for AlarmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AlarmState::InsufficientData => "INSUFFICIENT_DATA",
            AlarmState::Ok => "OK",
            AlarmState::Alarm => "ALARM",
        })
    }
}

/// A state transition, returned when an evaluation changes the state.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmTransition {
    /// Alarm name.
    pub alarm: String,
    /// When the transition happened.
    pub at: SimTime,
    /// Previous state.
    pub from: AlarmState,
    /// New state.
    pub to: AlarmState,
    /// The statistic value that drove the transition (`None` for
    /// transitions into `INSUFFICIENT_DATA`).
    pub value: Option<f64>,
}

/// A metric alarm.
#[derive(Debug, Clone)]
pub struct Alarm {
    /// Alarm name.
    pub name: String,
    /// The watched metric.
    pub metric: MetricId,
    /// Statistic evaluated per period.
    pub statistic: Statistic,
    /// Evaluation period.
    pub period: SimDuration,
    /// Threshold compared against.
    pub threshold: f64,
    /// Comparison direction.
    pub comparison: Comparison,
    /// Consecutive breaching evaluations required to enter `ALARM`
    /// (and non-breaching ones to return to `OK`).
    pub evaluation_periods: u32,
    state: AlarmState,
    breaching_streak: u32,
    ok_streak: u32,
    /// Consecutive empty evaluation windows the alarm tolerates before
    /// falling back to `INSUFFICIENT_DATA` (CloudWatch "treat missing
    /// data as ignore", bounded). While tolerated, the alarm holds its
    /// state *and* its streaks, so a single stale window caused by a
    /// sensor dropout cannot flap the state machine.
    missing_tolerance: u32,
    missing_streak: u32,
}

impl Alarm {
    /// Create an alarm in the `INSUFFICIENT_DATA` state.
    pub fn new(
        name: impl Into<String>,
        metric: MetricId,
        statistic: Statistic,
        period: SimDuration,
        comparison: Comparison,
        threshold: f64,
        evaluation_periods: u32,
    ) -> Alarm {
        assert!(!period.is_zero(), "alarm period must be non-zero");
        assert!(
            evaluation_periods >= 1,
            "need at least one evaluation period"
        );
        Alarm {
            name: name.into(),
            metric,
            statistic,
            period,
            threshold,
            comparison,
            evaluation_periods,
            state: AlarmState::InsufficientData,
            breaching_streak: 0,
            ok_streak: 0,
            missing_tolerance: 0,
            missing_streak: 0,
        }
    }

    /// Tolerate up to `windows` consecutive empty evaluation windows
    /// before resetting to `INSUFFICIENT_DATA`. The default of 0 keeps
    /// the strict behavior (any empty window resets immediately).
    #[must_use]
    pub fn tolerate_missing(mut self, windows: u32) -> Alarm {
        self.missing_tolerance = windows;
        self
    }

    /// Current state.
    pub fn state(&self) -> AlarmState {
        self.state
    }

    /// Evaluate the alarm at `now` against the store (reads the last full
    /// period `[now − period, now)`). Returns a transition when the state
    /// changed.
    pub fn evaluate(&mut self, store: &MetricsStore, now: SimTime) -> Option<AlarmTransition> {
        let value = store.window_stat(&self.metric, self.statistic, now - self.period, now);
        let new_state = match value {
            None => {
                self.missing_streak += 1;
                if self.missing_streak <= self.missing_tolerance {
                    self.state // tolerated gap: hold state and streaks
                } else {
                    self.breaching_streak = 0;
                    self.ok_streak = 0;
                    AlarmState::InsufficientData
                }
            }
            Some(v) => {
                self.missing_streak = 0;
                if self.comparison.breaches(v, self.threshold) {
                    self.breaching_streak += 1;
                    self.ok_streak = 0;
                } else {
                    self.ok_streak += 1;
                    self.breaching_streak = 0;
                }
                if self.breaching_streak >= self.evaluation_periods {
                    AlarmState::Alarm
                } else if self.ok_streak >= self.evaluation_periods
                    || self.state == AlarmState::InsufficientData
                {
                    AlarmState::Ok
                } else {
                    self.state // streak not long enough: hold
                }
            }
        };
        if new_state != self.state {
            let transition = AlarmTransition {
                alarm: self.name.clone(),
                at: now,
                from: self.state,
                to: new_state,
                value,
            };
            self.state = new_state;
            Some(transition)
        } else {
            None
        }
    }
}

/// A set of alarms evaluated together (per monitoring tick).
#[derive(Debug, Clone, Default)]
pub struct AlarmSet {
    alarms: Vec<Alarm>,
    history: Vec<AlarmTransition>,
}

impl AlarmSet {
    /// An empty set.
    pub fn new() -> AlarmSet {
        AlarmSet::default()
    }

    /// Add an alarm. Names must be unique.
    pub fn add(&mut self, alarm: Alarm) {
        assert!(
            !self.alarms.iter().any(|a| a.name == alarm.name),
            "duplicate alarm name '{}'",
            alarm.name
        );
        self.alarms.push(alarm);
    }

    /// Number of alarms.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// Evaluate every alarm; returns this round's transitions.
    pub fn evaluate(&mut self, store: &MetricsStore, now: SimTime) -> Vec<AlarmTransition> {
        let mut out = Vec::new();
        for alarm in &mut self.alarms {
            if let Some(t) = alarm.evaluate(store, now) {
                out.push(t.clone());
                self.history.push(t);
            }
        }
        out
    }

    /// The state of a named alarm.
    pub fn state(&self, name: &str) -> Option<AlarmState> {
        self.alarms
            .iter()
            .find(|a| a.name == name)
            .map(Alarm::state)
    }

    /// All alarms in the set, in registration order (the consolidated
    /// monitor view renders every alarm with its state, not just the
    /// firing ones).
    pub fn iter(&self) -> impl Iterator<Item = &Alarm> {
        self.alarms.iter()
    }

    /// `(name, state)` for every alarm, in registration order.
    pub fn states(&self) -> Vec<(&str, AlarmState)> {
        self.alarms
            .iter()
            .map(|a| (a.name.as_str(), a.state()))
            .collect()
    }

    /// All alarms currently in `ALARM`.
    pub fn firing(&self) -> Vec<&Alarm> {
        self.alarms
            .iter()
            .filter(|a| a.state() == AlarmState::Alarm)
            .collect()
    }

    /// Every transition ever observed, in order.
    pub fn history(&self) -> &[AlarmTransition] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> MetricId {
        MetricId::new("Storm", "CpuUtilization", "counter")
    }

    fn store_with(values: &[f64]) -> MetricsStore {
        let mut store = MetricsStore::new();
        for (i, &v) in values.iter().enumerate() {
            store.put(id(), SimTime::from_secs(i as u64 * 60), v);
        }
        store
    }

    fn cpu_alarm(evaluations: u32) -> Alarm {
        Alarm::new(
            "cpu-high",
            id(),
            Statistic::Average,
            SimDuration::from_secs(60),
            Comparison::GreaterThan,
            80.0,
            evaluations,
        )
    }

    #[test]
    fn starts_insufficient_then_ok() {
        let mut alarm = cpu_alarm(2);
        assert_eq!(alarm.state(), AlarmState::InsufficientData);
        let store = store_with(&[50.0]);
        let t = alarm
            .evaluate(&store, SimTime::from_secs(60))
            .expect("transition to OK");
        assert_eq!(t.from, AlarmState::InsufficientData);
        assert_eq!(t.to, AlarmState::Ok);
        assert_eq!(t.value, Some(50.0));
    }

    #[test]
    fn needs_consecutive_breaches_to_fire() {
        let mut alarm = cpu_alarm(2);
        let store = store_with(&[50.0, 90.0, 95.0]);
        assert!(alarm.evaluate(&store, SimTime::from_secs(60)).is_some()); // → OK
        assert!(alarm.evaluate(&store, SimTime::from_secs(120)).is_none()); // 1st breach holds
        assert_eq!(alarm.state(), AlarmState::Ok);
        let t = alarm
            .evaluate(&store, SimTime::from_secs(180))
            .expect("2nd consecutive breach fires");
        assert_eq!(t.to, AlarmState::Alarm);
    }

    #[test]
    fn recovers_after_consecutive_ok_evaluations() {
        let mut alarm = cpu_alarm(2);
        let store = store_with(&[90.0, 95.0, 50.0, 40.0]);
        alarm.evaluate(&store, SimTime::from_secs(60)); // → OK? value 90 breaches…
                                                        // First evaluation from INSUFFICIENT_DATA with a breach: streak 1,
                                                        // not yet ALARM, so state becomes OK (data exists).
        assert_eq!(alarm.state(), AlarmState::Ok);
        alarm.evaluate(&store, SimTime::from_secs(120)); // breach #2 → ALARM
        assert_eq!(alarm.state(), AlarmState::Alarm);
        assert!(alarm.evaluate(&store, SimTime::from_secs(180)).is_none()); // ok #1 holds
        let t = alarm
            .evaluate(&store, SimTime::from_secs(240))
            .expect("ok #2 recovers");
        assert_eq!(t.to, AlarmState::Ok);
    }

    #[test]
    fn missing_data_resets_to_insufficient() {
        let mut alarm = cpu_alarm(1);
        let store = store_with(&[90.0]);
        alarm.evaluate(&store, SimTime::from_secs(60));
        assert_eq!(alarm.state(), AlarmState::Alarm);
        // A window with no datapoints.
        let t = alarm
            .evaluate(&store, SimTime::from_secs(600))
            .expect("transition");
        assert_eq!(t.to, AlarmState::InsufficientData);
        assert_eq!(t.value, None);
    }

    #[test]
    fn tolerated_dropout_does_not_flap() {
        // An injected single-window metric dropout must not flap the
        // alarm: with tolerance 1, one empty window holds the state and
        // the breach streak survives the gap.
        let mut alarm = cpu_alarm(2).tolerate_missing(1);
        let store = store_with(&[90.0, 95.0]);
        alarm.evaluate(&store, SimTime::from_secs(60)); // breach #1 → OK
        alarm.evaluate(&store, SimTime::from_secs(120)); // breach #2 → ALARM
        assert_eq!(alarm.state(), AlarmState::Alarm);
        // Stale window (no datapoints in [180s, 240s)): held, no transition.
        assert!(alarm.evaluate(&store, SimTime::from_secs(240)).is_none());
        assert_eq!(alarm.state(), AlarmState::Alarm);
        // A second consecutive empty window exceeds the tolerance.
        let t = alarm
            .evaluate(&store, SimTime::from_secs(300))
            .expect("tolerance exhausted");
        assert_eq!(t.to, AlarmState::InsufficientData);
    }

    #[test]
    fn dropout_mid_streak_preserves_the_streak() {
        // OK alarm one breach away from firing: a tolerated gap must not
        // zero the breaching streak, so the next breach still fires.
        let mut alarm = cpu_alarm(2).tolerate_missing(1);
        let mut store = MetricsStore::new();
        store.put(id(), SimTime::from_secs(0), 50.0);
        store.put(id(), SimTime::from_secs(60), 90.0);
        // 120–180s left empty (dropout), breach resumes at 180s.
        store.put(id(), SimTime::from_secs(180), 95.0);
        alarm.evaluate(&store, SimTime::from_secs(60)); // 50 → OK
        assert!(alarm.evaluate(&store, SimTime::from_secs(120)).is_none()); // breach #1
        assert!(alarm.evaluate(&store, SimTime::from_secs(180)).is_none()); // gap, held
        let t = alarm
            .evaluate(&store, SimTime::from_secs(240))
            .expect("breach #2 after the tolerated gap fires");
        assert_eq!(t.to, AlarmState::Alarm);
    }

    #[test]
    fn fresh_data_resets_missing_streak() {
        let mut alarm = cpu_alarm(1).tolerate_missing(1);
        let mut store = MetricsStore::new();
        store.put(id(), SimTime::from_secs(0), 90.0);
        store.put(id(), SimTime::from_secs(120), 90.0);
        store.put(id(), SimTime::from_secs(240), 90.0);
        alarm.evaluate(&store, SimTime::from_secs(60)); // → ALARM
        assert_eq!(alarm.state(), AlarmState::Alarm);
        // Alternating gap/data stays in ALARM throughout: each gap is
        // within tolerance and each datapoint resets the gap streak.
        for s in [180, 240, 300] {
            assert!(alarm.evaluate(&store, SimTime::from_secs(s)).is_none());
            assert_eq!(alarm.state(), AlarmState::Alarm, "flapped at t={s}s");
        }
    }

    #[test]
    fn default_tolerance_keeps_strict_reset() {
        let mut alarm = cpu_alarm(1);
        let store = store_with(&[90.0]);
        alarm.evaluate(&store, SimTime::from_secs(60));
        assert_eq!(alarm.state(), AlarmState::Alarm);
        let t = alarm
            .evaluate(&store, SimTime::from_secs(600))
            .expect("strict alarms reset on the first empty window");
        assert_eq!(t.to, AlarmState::InsufficientData);
    }

    #[test]
    fn comparison_directions() {
        assert!(Comparison::GreaterThan.breaches(81.0, 80.0));
        assert!(!Comparison::GreaterThan.breaches(80.0, 80.0));
        assert!(Comparison::GreaterOrEqual.breaches(80.0, 80.0));
        assert!(Comparison::LessThan.breaches(79.0, 80.0));
        assert!(!Comparison::LessThan.breaches(80.0, 80.0));
        assert!(Comparison::LessOrEqual.breaches(80.0, 80.0));
    }

    #[test]
    fn alarm_set_tracks_transitions_and_firing() {
        let mut set = AlarmSet::new();
        set.add(cpu_alarm(1));
        set.add(Alarm::new(
            "cpu-low",
            id(),
            Statistic::Average,
            SimDuration::from_secs(60),
            Comparison::LessThan,
            30.0,
            1,
        ));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());

        let store = store_with(&[90.0, 20.0]);
        let transitions = set.evaluate(&store, SimTime::from_secs(60));
        assert_eq!(transitions.len(), 2, "both alarms leave INSUFFICIENT_DATA");
        assert_eq!(set.state("cpu-high"), Some(AlarmState::Alarm));
        assert_eq!(set.state("cpu-low"), Some(AlarmState::Ok));
        assert_eq!(set.firing().len(), 1);

        let transitions = set.evaluate(&store, SimTime::from_secs(120));
        assert_eq!(transitions.len(), 2, "both flip at the second sample");
        assert_eq!(set.state("cpu-high"), Some(AlarmState::Ok));
        assert_eq!(set.state("cpu-low"), Some(AlarmState::Alarm));
        assert_eq!(set.history().len(), 4);
        assert_eq!(set.state("absent"), None);
    }

    #[test]
    fn iteration_exposes_every_alarm_with_state() {
        let mut set = AlarmSet::new();
        set.add(cpu_alarm(1));
        set.add(Alarm::new(
            "cpu-low",
            id(),
            Statistic::Average,
            SimDuration::from_secs(60),
            Comparison::LessThan,
            30.0,
            1,
        ));
        let names: Vec<&str> = set.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["cpu-high", "cpu-low"]);
        assert_eq!(
            set.states(),
            vec![
                ("cpu-high", AlarmState::InsufficientData),
                ("cpu-low", AlarmState::InsufficientData),
            ]
        );
        let store = store_with(&[90.0]);
        set.evaluate(&store, SimTime::from_secs(60));
        assert_eq!(
            set.states(),
            vec![("cpu-high", AlarmState::Alarm), ("cpu-low", AlarmState::Ok)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate alarm name")]
    fn duplicate_names_rejected() {
        let mut set = AlarmSet::new();
        set.add(cpu_alarm(1));
        set.add(cpu_alarm(1));
    }

    #[test]
    fn display_states() {
        assert_eq!(AlarmState::Alarm.to_string(), "ALARM");
        assert_eq!(AlarmState::Ok.to_string(), "OK");
        assert_eq!(
            AlarmState::InsufficientData.to_string(),
            "INSUFFICIENT_DATA"
        );
    }
}
