//! A CloudWatch-like metric store.
//!
//! Services publish datapoints under `(namespace, metric, resource)`
//! identifiers; consumers query period-aligned statistics over arbitrary
//! windows — exactly the API shape Flower's sensor module needs
//! ("resource usage stats as per the specified monitoring window", §2).

use std::collections::BTreeMap;

use flower_sim::{SimDuration, SimTime};

/// Identifies one metric stream, CloudWatch-style: a namespace (the
/// service), a metric name, and a resource dimension (stream/cluster/
/// table name).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Service namespace, e.g. `AWS/Kinesis`.
    pub namespace: String,
    /// Metric name, e.g. `IncomingRecords`.
    pub metric: String,
    /// Resource dimension, e.g. the stream name.
    pub resource: String,
}

impl MetricId {
    /// Convenience constructor.
    pub fn new(
        namespace: impl Into<String>,
        metric: impl Into<String>,
        resource: impl Into<String>,
    ) -> MetricId {
        MetricId {
            namespace: namespace.into(),
            metric: metric.into(),
            resource: resource.into(),
        }
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}[{}]", self.namespace, self.metric, self.resource)
    }
}

/// Statistic to compute over the datapoints of a period bucket or window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Statistic {
    /// Arithmetic mean.
    Average,
    /// Sum.
    Sum,
    /// Minimum.
    Minimum,
    /// Maximum.
    Maximum,
    /// Number of datapoints.
    SampleCount,
    /// Percentile in `[0, 100]` (CloudWatch's `p50`/`p90`/`p99`
    /// extended statistics), linearly interpolated.
    Percentile(f64),
}

impl Statistic {
    /// The `p99`-style label CloudWatch uses.
    pub fn label(&self) -> String {
        match self {
            Statistic::Average => "Average".to_owned(),
            Statistic::Sum => "Sum".to_owned(),
            Statistic::Minimum => "Minimum".to_owned(),
            Statistic::Maximum => "Maximum".to_owned(),
            Statistic::SampleCount => "SampleCount".to_owned(),
            Statistic::Percentile(p) => format!("p{p}"),
        }
    }
}

fn apply(stat: Statistic, values: &[f64]) -> f64 {
    match stat {
        Statistic::Average => values.iter().sum::<f64>() / values.len() as f64,
        Statistic::Sum => values.iter().sum(),
        Statistic::Minimum => values.iter().copied().fold(f64::INFINITY, f64::min),
        Statistic::Maximum => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        Statistic::SampleCount => values.len() as f64,
        Statistic::Percentile(p) => {
            assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
            let mut sorted = values.to_vec();
            sorted.sort_by(f64::total_cmp);
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = rank - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        }
    }
}

/// The metric store.
///
/// ```
/// use flower_cloud::{MetricId, MetricsStore, Statistic};
/// use flower_sim::SimTime;
///
/// let mut store = MetricsStore::new();
/// let id = MetricId::new("AWS/Kinesis", "IncomingRecords", "clicks");
/// for i in 0..5u64 {
///     store.put(id.clone(), SimTime::from_secs(i), i as f64 * 10.0);
/// }
/// let avg = store
///     .window_stat(&id, Statistic::Average, SimTime::ZERO, SimTime::from_secs(5))
///     .unwrap();
/// assert_eq!(avg, 20.0);
/// ```
#[derive(Debug, Default)]
pub struct MetricsStore {
    series: BTreeMap<MetricId, Vec<(SimTime, f64)>>,
}

impl MetricsStore {
    /// An empty store.
    pub fn new() -> MetricsStore {
        MetricsStore::default()
    }

    /// Publish one datapoint. Time must be non-decreasing per metric.
    pub fn put(&mut self, id: MetricId, t: SimTime, value: f64) {
        debug_assert!(value.is_finite(), "non-finite datapoint for {id}");
        let series = self.series.entry(id).or_default();
        if let Some(&(last, _)) = series.last() {
            assert!(t >= last, "datapoint time went backwards ({last} then {t})");
        }
        series.push((t, value));
    }

    /// All metric ids currently present, in sorted order.
    pub fn list(&self) -> Vec<&MetricId> {
        self.series.keys().collect()
    }

    /// All metric ids in a namespace.
    pub fn list_namespace(&self, namespace: &str) -> Vec<&MetricId> {
        self.series
            .keys()
            .filter(|id| id.namespace == namespace)
            .collect()
    }

    /// The most recent datapoint of a metric.
    pub fn latest(&self, id: &MetricId) -> Option<(SimTime, f64)> {
        self.series.get(id).and_then(|s| s.last().copied())
    }

    /// Raw datapoints in `[from, to)`.
    pub fn raw(&self, id: &MetricId, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        match self.series.get(id) {
            None => Vec::new(),
            Some(s) => {
                let lo = s.partition_point(|&(t, _)| t < from);
                let hi = s.partition_point(|&(t, _)| t < to);
                s[lo..hi].to_vec()
            }
        }
    }

    /// A single statistic over all datapoints in `[from, to)`.
    /// `None` when the window holds no datapoints.
    pub fn window_stat(
        &self,
        id: &MetricId,
        stat: Statistic,
        from: SimTime,
        to: SimTime,
    ) -> Option<f64> {
        let pts = self.raw(id, from, to);
        if pts.is_empty() {
            return None;
        }
        let values: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
        Some(apply(stat, &values))
    }

    /// Period-aligned statistics over `[from, to)`, CloudWatch-style:
    /// datapoints are bucketed into `period`-aligned bins and the
    /// statistic is applied per bin. Empty bins are omitted.
    pub fn get_statistics(
        &self,
        id: &MetricId,
        stat: Statistic,
        period: SimDuration,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(SimTime, f64)> {
        assert!(!period.is_zero(), "period must be non-zero");
        let pts = self.raw(id, from, to);
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut bucket: Option<SimTime> = None;
        let mut values: Vec<f64> = Vec::new();
        for (t, v) in pts {
            let b = t.align_down(period);
            match bucket {
                Some(cur) if cur == b => values.push(v),
                Some(cur) => {
                    out.push((cur, apply(stat, &values)));
                    values.clear();
                    values.push(v);
                    bucket = Some(b);
                }
                None => {
                    bucket = Some(b);
                    values.push(v);
                }
            }
        }
        if let Some(cur) = bucket {
            out.push((cur, apply(stat, &values)));
        }
        out
    }

    /// Total number of stored datapoints across all metrics.
    pub fn total_datapoints(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }

    /// Drop datapoints older than `horizon` before `now` (retention).
    pub fn prune(&mut self, now: SimTime, horizon: SimDuration) {
        let cutoff = now - horizon;
        for series in self.series.values_mut() {
            let keep_from = series.partition_point(|&(t, _)| t < cutoff);
            series.drain(..keep_from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> MetricId {
        MetricId::new("AWS/Kinesis", "IncomingRecords", "clicks")
    }

    fn seeded_store() -> MetricsStore {
        let mut store = MetricsStore::new();
        for i in 0..10u64 {
            store.put(id(), SimTime::from_secs(i * 30), i as f64);
        }
        store
    }

    #[test]
    fn latest_returns_newest() {
        let store = seeded_store();
        assert_eq!(store.latest(&id()), Some((SimTime::from_secs(270), 9.0)));
        assert_eq!(store.latest(&MetricId::new("x", "y", "z")), None);
    }

    #[test]
    fn raw_is_half_open_window() {
        let store = seeded_store();
        let pts = store.raw(&id(), SimTime::from_secs(30), SimTime::from_secs(90));
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (SimTime::from_secs(30), 1.0));
        assert_eq!(pts[1], (SimTime::from_secs(60), 2.0));
    }

    #[test]
    fn window_statistics() {
        let store = seeded_store();
        let w = |stat| {
            store
                .window_stat(&id(), stat, SimTime::ZERO, SimTime::from_secs(300))
                .unwrap()
        };
        assert_eq!(w(Statistic::SampleCount), 10.0);
        assert_eq!(w(Statistic::Sum), 45.0);
        assert_eq!(w(Statistic::Average), 4.5);
        assert_eq!(w(Statistic::Minimum), 0.0);
        assert_eq!(w(Statistic::Maximum), 9.0);
        assert_eq!(
            store.window_stat(
                &id(),
                Statistic::Sum,
                SimTime::from_hours(2),
                SimTime::from_hours(3)
            ),
            None
        );
    }

    #[test]
    fn period_aligned_statistics() {
        let store = seeded_store(); // points every 30 s
        let stats = store.get_statistics(
            &id(),
            Statistic::Sum,
            SimDuration::from_secs(60),
            SimTime::ZERO,
            SimTime::from_secs(300),
        );
        // Buckets: [0,60) holds 0+1, [60,120) holds 2+3, ...
        assert_eq!(stats.len(), 5);
        assert_eq!(stats[0], (SimTime::ZERO, 1.0));
        assert_eq!(stats[1], (SimTime::from_secs(60), 5.0));
        assert_eq!(stats[4], (SimTime::from_secs(240), 17.0));
    }

    #[test]
    fn namespace_listing() {
        let mut store = seeded_store();
        store.put(
            MetricId::new("AWS/DynamoDB", "ConsumedWCU", "t"),
            SimTime::ZERO,
            1.0,
        );
        assert_eq!(store.list().len(), 2);
        assert_eq!(store.list_namespace("AWS/Kinesis").len(), 1);
        assert_eq!(store.list_namespace("AWS/DynamoDB").len(), 1);
        assert!(store.list_namespace("AWS/EC2").is_empty());
    }

    #[test]
    fn prune_drops_old_points() {
        let mut store = seeded_store();
        assert_eq!(store.total_datapoints(), 10);
        store.prune(SimTime::from_secs(270), SimDuration::from_secs(60));
        // Cutoff at t=210: keeps 210, 240, 270.
        assert_eq!(store.total_datapoints(), 3);
        assert_eq!(store.latest(&id()), Some((SimTime::from_secs(270), 9.0)));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn out_of_order_put_panics() {
        let mut store = seeded_store();
        store.put(id(), SimTime::ZERO, 1.0);
    }

    #[test]
    fn percentile_statistics() {
        let store = seeded_store(); // values 0..=9
        let p = |pct| {
            store
                .window_stat(
                    &id(),
                    Statistic::Percentile(pct),
                    SimTime::ZERO,
                    SimTime::from_secs(300),
                )
                .unwrap()
        };
        assert_eq!(p(0.0), 0.0);
        assert_eq!(p(100.0), 9.0);
        assert!((p(50.0) - 4.5).abs() < 1e-12);
        assert!((p(90.0) - 8.1).abs() < 1e-9);
        assert_eq!(Statistic::Percentile(99.0).label(), "p99");
        assert_eq!(Statistic::Maximum.label(), "Maximum");
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn out_of_range_percentile_panics() {
        let store = seeded_store();
        store.window_stat(
            &id(),
            Statistic::Percentile(150.0),
            SimTime::ZERO,
            SimTime::from_secs(300),
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(id().to_string(), "AWS/Kinesis/IncomingRecords[clicks]");
    }
}
