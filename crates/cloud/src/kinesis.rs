//! A Kinesis-like stream simulator (ingestion layer).
//!
//! Model scope — everything a shard-count controller can observe or
//! influence:
//!
//! * per-shard write limits of **1,000 records/s and 1 MiB/s** (the paper
//!   quotes the records limit verbatim in §3.1);
//! * records are routed to shards by hashing their partition key, so a
//!   skewed key distribution throttles hot shards while the stream as a
//!   whole is under-utilized — exactly the pathology coarse "average
//!   utilization" autoscaling rules miss;
//! * resharding (split/merge) is not instantaneous: a target shard count
//!   takes effect only after a configurable latency, during which further
//!   reshard requests are rejected, as in the real service where a stream
//!   in `UPDATING` state cannot be resharded again.

use flower_sim::{SimDuration, SimTime};
use flower_workload::ClickRecord;

use crate::alarms::{Alarm, Comparison};
use crate::engine::{metric_names, EngineError, TickReport};
use crate::layer::{LayerId, LayerService, SensorProbe, INGESTION};
use crate::metrics::{MetricId, Statistic};
use crate::pricing::PriceList;

/// Static configuration of a simulated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct KinesisConfig {
    /// Stream name (metric dimension).
    pub name: String,
    /// Initial number of shards.
    pub initial_shards: u32,
    /// Per-shard record rate limit (records/second).
    pub records_per_shard_sec: f64,
    /// Per-shard byte rate limit (bytes/second).
    pub bytes_per_shard_sec: f64,
    /// Time a reshard operation takes to complete.
    pub reshard_latency: SimDuration,
    /// Upper bound on shard count (account limit).
    pub max_shards: u32,
}

impl Default for KinesisConfig {
    fn default() -> Self {
        KinesisConfig {
            name: "clickstream".to_owned(),
            initial_shards: 2,
            records_per_shard_sec: 1_000.0,
            bytes_per_shard_sec: 1024.0 * 1024.0,
            reshard_latency: SimDuration::from_secs(30),
            max_shards: 500,
        }
    }
}

/// Result of one ingestion step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestOutcome {
    /// Records accepted into the stream.
    pub accepted: u64,
    /// Records rejected with `ProvisionedThroughputExceeded`.
    pub throttled: u64,
    /// Bytes accepted.
    pub accepted_bytes: u64,
    /// Stream-level utilization in `[0, ∞)`: offered record rate over
    /// aggregate capacity (can exceed 1 under overload).
    pub utilization: f64,
    /// Utilization of the *hottest* shard this step. Under a skewed
    /// partition-key distribution this diverges from the stream-level
    /// average — the signal an "enhanced shard-level monitoring" sensor
    /// would alert on while the coarse average looks healthy.
    pub max_shard_utilization: f64,
}

/// Errors from control-plane operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KinesisError {
    /// A reshard is already in flight.
    ResourceInUse,
    /// Target shard count out of `[1, max_shards]`.
    InvalidShardCount {
        /// The rejected target.
        requested: u32,
        /// The account limit.
        max: u32,
    },
}

impl std::fmt::Display for KinesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KinesisError::ResourceInUse => write!(f, "stream is UPDATING; reshard in progress"),
            KinesisError::InvalidShardCount { requested, max } => {
                write!(f, "invalid shard count {requested} (allowed 1..={max})")
            }
        }
    }
}

impl std::error::Error for KinesisError {}

/// The simulated stream.
///
/// ```
/// use flower_cloud::{KinesisConfig, KinesisStream};
/// use flower_sim::{SimDuration, SimRng, SimTime};
/// use flower_workload::{ClickStreamConfig, ClickStreamGenerator};
///
/// let mut stream = KinesisStream::new(KinesisConfig::default()); // 2 shards
/// let mut generator =
///     ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(1));
/// let batch = generator.generate(SimTime::ZERO, 3_000);
/// let out = stream.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
/// // Two shards accept at most 2,000 records/s; the rest throttle.
/// assert!(out.accepted <= 2_000);
/// assert_eq!(out.accepted + out.throttled, 3_000);
/// ```
#[derive(Debug, Clone)]
pub struct KinesisStream {
    config: KinesisConfig,
    shards: u32,
    pending_reshard: Option<(u32, SimTime)>,
    total_accepted: u64,
    total_throttled: u64,
    reshard_count: u64,
}

impl KinesisStream {
    /// Create a stream per `config`.
    pub fn new(config: KinesisConfig) -> KinesisStream {
        assert!(config.initial_shards >= 1, "need at least one shard");
        assert!(config.initial_shards <= config.max_shards);
        assert!(config.records_per_shard_sec > 0.0 && config.bytes_per_shard_sec > 0.0);
        KinesisStream {
            shards: config.initial_shards,
            config,
            pending_reshard: None,
            total_accepted: 0,
            total_throttled: 0,
            reshard_count: 0,
        }
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Currently open shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The reshard target, when one is in flight.
    pub fn pending_reshard(&self) -> Option<(u32, SimTime)> {
        self.pending_reshard
    }

    /// Aggregate record capacity (records/second).
    pub fn capacity_records_per_sec(&self) -> f64 {
        self.shards as f64 * self.config.records_per_shard_sec
    }

    /// Lifetime counters: `(accepted, throttled, reshards)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.total_accepted,
            self.total_throttled,
            self.reshard_count,
        )
    }

    /// The shard count the stream is converging to (pending target when a
    /// reshard is in flight, else the current count).
    pub fn target_shards(&self) -> u32 {
        self.pending_reshard.map(|(t, _)| t).unwrap_or(self.shards)
    }

    /// Request a reshard to `target` shards at time `now`; takes effect
    /// after `reshard_latency`. Requesting the current count is a no-op.
    pub fn update_shard_count(&mut self, target: u32, now: SimTime) -> Result<(), KinesisError> {
        self.settle_reshard(now);
        if target == self.shards && self.pending_reshard.is_none() {
            return Ok(());
        }
        if self.pending_reshard.is_some() {
            return Err(KinesisError::ResourceInUse);
        }
        if target < 1 || target > self.config.max_shards {
            return Err(KinesisError::InvalidShardCount {
                requested: target,
                max: self.config.max_shards,
            });
        }
        self.pending_reshard = Some((target, now + self.config.reshard_latency));
        Ok(())
    }

    /// Complete a due reshard; call at the start of every tick.
    fn settle_reshard(&mut self, now: SimTime) {
        if let Some((target, ready_at)) = self.pending_reshard {
            if now >= ready_at {
                self.shards = target;
                self.pending_reshard = None;
                self.reshard_count += 1;
            }
        }
    }

    /// Ingest a batch of records spanning a step of `dt`.
    ///
    /// Records are routed to shards by partition-key hash; each shard
    /// enforces its own record and byte limits, so skew throttles early.
    pub fn ingest(
        &mut self,
        records: &[ClickRecord],
        now: SimTime,
        dt: SimDuration,
    ) -> IngestOutcome {
        self.settle_reshard(now);
        let dt_secs = dt.as_secs_f64();
        assert!(dt_secs > 0.0, "ingest step must have positive length");
        let n_shards = self.shards as usize;
        let record_cap = (self.config.records_per_shard_sec * dt_secs).floor() as u64;
        let byte_cap = (self.config.bytes_per_shard_sec * dt_secs).floor() as u64;

        let mut shard_records = vec![0u64; n_shards];
        let mut shard_bytes = vec![0u64; n_shards];
        let mut accepted = 0u64;
        let mut throttled = 0u64;
        let mut accepted_bytes = 0u64;

        for record in records {
            // The same multiplicative hash Kinesis-style key routing
            // reduces to for our u64 keys.
            let shard = (record.partition_key().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
                % n_shards;
            let bytes = record.payload_bytes as u64;
            if shard_records[shard] < record_cap && shard_bytes[shard] + bytes <= byte_cap {
                shard_records[shard] += 1;
                shard_bytes[shard] += bytes;
                accepted += 1;
                accepted_bytes += bytes;
            } else {
                throttled += 1;
            }
        }

        self.total_accepted += accepted;
        self.total_throttled += throttled;
        let offered_rate = records.len() as f64 / dt_secs;
        let utilization = offered_rate / self.capacity_records_per_sec();
        // Per-shard offered load = accepted + throttled attributed to the
        // shard; we track accepted per shard, so approximate the hottest
        // shard's utilization from accepted counts plus its share of the
        // throttles (throttles only occur on saturated shards).
        let max_shard_offered = shard_records
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(if throttled > 0 { record_cap } else { 0 });
        let max_shard_utilization = if record_cap == 0 {
            0.0
        } else {
            max_shard_offered as f64 / record_cap as f64
                + if throttled > 0 {
                    throttled as f64 / record_cap as f64
                } else {
                    0.0
                }
        };
        IngestOutcome {
            accepted,
            throttled,
            accepted_bytes,
            utilization,
            max_shard_utilization,
        }
    }
}

impl LayerService for KinesisStream {
    fn id(&self) -> LayerId {
        INGESTION
    }

    fn service_name(&self) -> &str {
        self.name()
    }

    fn actuator_units(&self) -> f64 {
        f64::from(self.shards())
    }

    fn target_units(&self) -> f64 {
        f64::from(self.target_shards())
    }

    fn max_units(&self) -> f64 {
        f64::from(self.config.max_shards)
    }

    fn unit_price(&self, prices: &PriceList) -> f64 {
        prices.shard_hour
    }

    fn quantize(&self, target: f64) -> f64 {
        f64::from(target as u32)
    }

    fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        self.update_shard_count(target as u32, now)
            .map_err(EngineError::Kinesis)
    }

    fn utilization_sensor(&self) -> SensorProbe {
        SensorProbe {
            metric: MetricId::new(
                metric_names::NS_KINESIS,
                metric_names::SHARD_UTILIZATION,
                self.name(),
            ),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    fn measurement(&self, tick: &TickReport) -> Option<f64> {
        Some(tick.ingest.utilization * 100.0)
    }

    fn headline_metrics(&self) -> Vec<MetricId> {
        use metric_names::*;
        [
            INCOMING_RECORDS,
            WRITE_THROTTLED,
            SHARD_UTILIZATION,
            OPEN_SHARDS,
        ]
        .into_iter()
        .map(|m| MetricId::new(NS_KINESIS, m, self.name()))
        .collect()
    }

    fn default_alarm(&self) -> Option<Alarm> {
        Some(Alarm::new(
            "ingestion-throttling",
            MetricId::new(
                metric_names::NS_KINESIS,
                metric_names::WRITE_THROTTLED,
                self.name(),
            ),
            Statistic::Sum,
            SimDuration::from_mins(1),
            Comparison::GreaterThan,
            0.0,
            2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_sim::SimRng;
    use flower_workload::{ClickStreamConfig, ClickStreamGenerator};

    fn records(n: u64, seed: u64) -> Vec<ClickRecord> {
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
        generator.generate(SimTime::ZERO, n)
    }

    fn stream(shards: u32) -> KinesisStream {
        KinesisStream::new(KinesisConfig {
            initial_shards: shards,
            ..Default::default()
        })
    }

    #[test]
    fn under_capacity_accepts_everything() {
        let mut s = stream(2);
        let batch = records(1_500, 1); // capacity 2,000/s
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(out.accepted + out.throttled, 1_500);
        // Mild skew may throttle a handful; the bulk must land.
        assert!(out.accepted > 1_400, "accepted={}", out.accepted);
        assert!(out.utilization > 0.7 && out.utilization < 0.8);
    }

    #[test]
    fn over_capacity_throttles_excess() {
        let mut s = stream(2);
        let batch = records(5_000, 2); // capacity 2,000/s
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        assert!(out.throttled >= 3_000, "throttled={}", out.throttled);
        assert!(out.accepted <= 2_000);
        assert!(out.utilization > 2.0);
        let (acc, thr, _) = s.counters();
        assert_eq!(acc, out.accepted);
        assert_eq!(thr, out.throttled);
    }

    #[test]
    fn more_shards_absorb_more() {
        let batch = records(5_000, 3);
        let mut small = stream(2);
        let mut large = stream(8);
        let out_small = small.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        let out_large = large.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        assert!(out_large.accepted > out_small.accepted * 2);
        assert!(out_large.throttled < out_small.throttled);
    }

    #[test]
    fn byte_limit_binds_for_large_payloads() {
        // 2,000 records of ~600 B ≈ 1.2 MB > 1 MiB/s on one shard.
        let mut s = stream(1);
        let batch = records(2_000, 4);
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        // Record cap alone would admit 1,000; byte cap must also hold.
        assert!(out.accepted_bytes <= 1024 * 1024);
        assert!(out.accepted <= 1_000);
    }

    #[test]
    fn reshard_takes_effect_after_latency() {
        let mut s = stream(2);
        s.update_shard_count(6, SimTime::ZERO).unwrap();
        assert_eq!(s.shards(), 2, "not yet effective");
        assert!(s.pending_reshard().is_some());
        // Tick before the latency elapses: still 2 shards.
        let batch = records(100, 5);
        s.ingest(&batch, SimTime::from_secs(10), SimDuration::from_secs(1));
        assert_eq!(s.shards(), 2);
        // After 30 s it settles.
        s.ingest(&batch, SimTime::from_secs(30), SimDuration::from_secs(1));
        assert_eq!(s.shards(), 6);
        assert!(s.pending_reshard().is_none());
        assert_eq!(s.counters().2, 1);
    }

    #[test]
    fn concurrent_reshard_rejected() {
        let mut s = stream(2);
        s.update_shard_count(4, SimTime::ZERO).unwrap();
        assert_eq!(
            s.update_shard_count(8, SimTime::from_secs(1)),
            Err(KinesisError::ResourceInUse)
        );
    }

    #[test]
    fn reshard_to_same_count_is_noop() {
        let mut s = stream(3);
        s.update_shard_count(3, SimTime::ZERO).unwrap();
        assert!(s.pending_reshard().is_none());
    }

    #[test]
    fn invalid_shard_counts_rejected() {
        let mut s = stream(2);
        assert!(matches!(
            s.update_shard_count(0, SimTime::ZERO),
            Err(KinesisError::InvalidShardCount { .. })
        ));
        assert!(matches!(
            s.update_shard_count(10_000, SimTime::ZERO),
            Err(KinesisError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn skewed_keys_throttle_despite_headroom() {
        // All records share one partition key → one hot shard.
        let mut batch = records(1_900, 6);
        for r in &mut batch {
            r.user_id = 7;
        }
        let mut s = stream(4); // aggregate capacity 4,000/s
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        // Only the hot shard's 1,000 records/s can land.
        assert!(out.accepted <= 1_000);
        assert!(out.throttled >= 900);
        assert!(
            out.utilization < 0.5,
            "stream-level utilization looks healthy"
        );
    }

    #[test]
    fn hot_shard_utilization_diverges_from_average_under_skew() {
        let mut batch = records(1_900, 8);
        for r in &mut batch {
            r.user_id = 7; // one hot partition key
        }
        let mut s = stream(4);
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        assert!(out.utilization < 0.5, "average looks healthy");
        assert!(
            out.max_shard_utilization > 1.5,
            "hot shard should read saturated: {}",
            out.max_shard_utilization
        );
    }

    #[test]
    fn uniform_keys_keep_shard_utilizations_close() {
        let batch = records(1_600, 9);
        let mut s = stream(4);
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_secs(1));
        // Uniform routing: hottest shard near the 0.4 average.
        assert!(out.max_shard_utilization < out.utilization * 2.0);
    }

    #[test]
    fn subsecond_ticks_scale_caps() {
        let mut s = stream(1);
        let batch = records(600, 7);
        let out = s.ingest(&batch, SimTime::ZERO, SimDuration::from_millis(500));
        // Cap is 500 records per half-second tick.
        assert!(out.accepted <= 500);
    }
}
