//! The open layer registry: [`LayerId`], [`LayerService`], and
//! [`ResourceVector`].
//!
//! Flower's architecture (§3) is layer-generic — dependency analysis,
//! NSGA-II share search, and per-layer adaptive controllers are defined
//! over an arbitrary set of layers. This module is the substrate for
//! that generality: a layer is an identity ([`LayerId`]) plus a service
//! behind a uniform trait ([`LayerService`]), and a resource plan is a
//! vector indexed by layer ([`ResourceVector`]) instead of a hard-wired
//! `{shards, vms, wcu}` triple.
//!
//! # Determinism rules
//!
//! Everything downstream (NSGA-II genome encoding, JSONL traces, CSV
//! exports) iterates layers in **ascending [`LayerId`] order**, which is
//! position-major. Registry iteration must therefore be reproducible:
//!
//! * a [`LayerId`]'s `position` is part of its public identity and must
//!   never change once traces reference it (stability policy: positions
//!   0–2 are the paper's layers, 3+ are extensions, and a position is
//!   never reused for a different tier);
//! * [`ResourceVector`] keeps its entries sorted by layer at all times;
//! * `CloudEngine` yields services in ascending layer order.

use flower_sim::SimTime;

use crate::alarms::Alarm;
use crate::engine::{EngineError, TickReport};
use crate::metrics::{MetricId, Statistic};
use crate::pricing::PriceList;

/// Identity of one layer in a data analytics flow.
///
/// A `LayerId` is a value, not an enum variant: any crate can mint new
/// layers with [`LayerId::new`] without touching this one. The derived
/// ordering is position-major (the `position` field is declared first),
/// which is what fixes registry iteration order, genome encoding order,
/// and the flow direction used by dependency analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId {
    position: u8,
    name: &'static str,
    resource: &'static str,
    resource_unit: &'static str,
    symbol: &'static str,
}

/// The paper's ingestion layer (position 0).
pub const INGESTION: LayerId = LayerId::new(0, "ingestion", "shards", "shards", "I");
/// The paper's analytics layer (position 1).
pub const ANALYTICS: LayerId = LayerId::new(1, "analytics", "vms", "VMs", "A");
/// The paper's storage layer (position 2).
pub const STORAGE: LayerId = LayerId::new(2, "storage", "wcu", "write capacity units", "S");
/// The cache tier extension layer (position 3).
pub const CACHE: LayerId = LayerId::new(3, "cache", "cache_nodes", "cache nodes", "C");

impl LayerId {
    /// The three layers of the paper's demo flow, in flow order.
    pub const ALL: [LayerId; 3] = [INGESTION, ANALYTICS, STORAGE];

    /// Compat aliases so call sites read `Layer::INGESTION`.
    pub const INGESTION: LayerId = INGESTION;
    /// See [`ANALYTICS`].
    pub const ANALYTICS: LayerId = ANALYTICS;
    /// See [`STORAGE`].
    pub const STORAGE: LayerId = STORAGE;
    /// See [`CACHE`].
    pub const CACHE: LayerId = CACHE;

    /// Mint a new layer identity.
    ///
    /// `position` fixes where the layer sorts relative to others (and
    /// therefore its place in genome encodings and registry iteration);
    /// `name` is the human label used in traces and tables; `resource`
    /// is the snake_case key used for trace fields and plan columns;
    /// `resource_unit` is the prose unit; `symbol` is the short
    /// algebraic symbol used in constraint labels (`r_I <= 5*r_A`).
    pub const fn new(
        position: u8,
        name: &'static str,
        resource: &'static str,
        resource_unit: &'static str,
        symbol: &'static str,
    ) -> LayerId {
        LayerId {
            position,
            name,
            resource,
            resource_unit,
            symbol,
        }
    }

    /// Sort position in the flow (0 = most upstream).
    pub const fn position(self) -> u8 {
        self.position
    }

    /// Human-readable label, e.g. `"ingestion"`.
    pub const fn label(self) -> &'static str {
        self.name
    }

    /// The snake_case resource key used in traces and plans, e.g.
    /// `"shards"`.
    pub const fn resource(self) -> &'static str {
        self.resource
    }

    /// The unit of the scaled resource, e.g. `"write capacity units"`.
    pub const fn resource_unit(self) -> &'static str {
        self.resource_unit
    }

    /// Short algebraic symbol for constraint labels, e.g. `"I"`.
    pub const fn symbol(self) -> &'static str {
        self.symbol
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

/// How to read a layer's utilization signal from the metric store.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorProbe {
    /// The metric to read.
    pub metric: MetricId,
    /// The statistic to aggregate the window with.
    pub statistic: Statistic,
    /// Multiplier applied to the statistic (e.g. 100 for a fraction
    /// published in `[0, 1]` that the controller wants in percent).
    pub scale: f64,
}

/// Uniform control-plane interface over one simulated layer service.
///
/// Implemented by [`KinesisStream`](crate::KinesisStream),
/// [`StormCluster`](crate::StormCluster),
/// [`DynamoTable`](crate::DynamoTable) and
/// [`CacheCluster`](crate::CacheCluster); external crates can add their
/// own tiers the same way. All methods must be deterministic functions
/// of the service state — no ambient clocks or randomness.
pub trait LayerService {
    /// The layer this service occupies.
    fn id(&self) -> LayerId;

    /// The deployed resource name (metric dimension), e.g. the stream
    /// name.
    fn service_name(&self) -> &str;

    /// Units currently deployed, as the actuator trace reports them.
    ///
    /// This is the `from` side of a resize event and the baseline the
    /// episode's actuator trace records each tick.
    fn actuator_units(&self) -> f64;

    /// Units the service is converging to (pending target if a resize
    /// is in flight, else the deployed amount). Used to re-synchronize
    /// a controller whose command was rejected.
    fn target_units(&self) -> f64;

    /// Smallest admissible resource amount.
    fn min_units(&self) -> f64 {
        1.0
    }

    /// Largest admissible resource amount (account limit).
    fn max_units(&self) -> f64;

    /// Price of one resource-unit-hour under `prices`.
    fn unit_price(&self, prices: &PriceList) -> f64;

    /// Project a continuous controller command onto the service's
    /// actuation grid (e.g. whole shards). Must match what
    /// [`LayerService::actuate`] will actually request, so the resize
    /// trace records the true `to` value.
    fn quantize(&self, target: f64) -> f64 {
        target
    }

    /// Request a resize to `target` units at `now`.
    fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError>;

    /// The utilization signal a controller for this layer should watch.
    fn utilization_sensor(&self) -> SensorProbe;

    /// This layer's utilization measurement for one completed tick, in
    /// percent. `None` when the tick carries no signal for the layer.
    fn measurement(&self, tick: &TickReport) -> Option<f64>;

    /// The metrics a cross-platform monitor should register for this
    /// layer, in display order.
    fn headline_metrics(&self) -> Vec<MetricId>;

    /// A service-recommended alarm on its own health signal, if any.
    fn default_alarm(&self) -> Option<Alarm> {
        None
    }
}

/// A resource amount per layer — the N-layer generalization of the
/// paper's `(shards, vms, wcu)` triple.
///
/// Entries are kept sorted by ascending [`LayerId`] so that iteration
/// order (and everything serialized from it) is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourceVector {
    entries: Vec<(LayerId, f64)>,
}

impl ResourceVector {
    /// An empty vector.
    pub fn new() -> ResourceVector {
        ResourceVector::default()
    }

    /// Build from `(layer, units)` pairs; later pairs win on duplicate
    /// layers, and the result is sorted by layer.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (LayerId, f64)>) -> ResourceVector {
        let mut v = ResourceVector::new();
        for (layer, units) in pairs {
            v.set(layer, units);
        }
        v
    }

    /// Set the amount for `layer`, inserting or replacing.
    pub fn set(&mut self, layer: LayerId, units: f64) {
        match self.entries.binary_search_by(|(l, _)| l.cmp(&layer)) {
            Ok(i) => self.entries[i].1 = units,
            Err(i) => self.entries.insert(i, (layer, units)),
        }
    }

    /// The amount for `layer`, if present.
    pub fn get(&self, layer: LayerId) -> Option<f64> {
        self.entries
            .binary_search_by(|(l, _)| l.cmp(&layer))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The amount for `layer`, defaulting to zero for absent layers.
    pub fn of(&self, layer: LayerId) -> f64 {
        self.get(layer).unwrap_or(0.0)
    }

    /// Iterate `(layer, units)` in ascending layer order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The layers present, in ascending order.
    pub fn layers(&self) -> impl Iterator<Item = LayerId> + '_ {
        self.entries.iter().map(|&(l, _)| l)
    }

    /// Number of layers present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no layer is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(LayerId, f64)> for ResourceVector {
    fn from_iter<T: IntoIterator<Item = (LayerId, f64)>>(iter: T) -> ResourceVector {
        ResourceVector::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layers_sort_in_flow_order() {
        assert!(INGESTION < ANALYTICS && ANALYTICS < STORAGE && STORAGE < CACHE);
        assert_eq!(LayerId::ALL, [INGESTION, ANALYTICS, STORAGE]);
        assert_eq!(LayerId::INGESTION, INGESTION);
    }

    #[test]
    fn layer_metadata_is_stable() {
        assert_eq!(INGESTION.label(), "ingestion");
        assert_eq!(INGESTION.resource(), "shards");
        assert_eq!(ANALYTICS.resource_unit(), "VMs");
        assert_eq!(STORAGE.symbol(), "S");
        assert_eq!(CACHE.position(), 3);
        assert_eq!(format!("{STORAGE}"), "storage");
    }

    #[test]
    fn custom_layers_slot_into_the_order() {
        let edge = LayerId::new(4, "edge", "pods", "pods", "E");
        assert!(CACHE < edge);
        assert_eq!(edge.label(), "edge");
    }

    #[test]
    fn vector_stays_sorted_and_last_write_wins() {
        let mut v = ResourceVector::new();
        v.set(STORAGE, 100.0);
        v.set(INGESTION, 2.0);
        v.set(STORAGE, 214.0);
        let layers: Vec<_> = v.layers().collect();
        assert_eq!(layers, vec![INGESTION, STORAGE]);
        assert_eq!(v.of(STORAGE), 214.0);
        assert_eq!(v.of(ANALYTICS), 0.0);
        assert_eq!(v.get(ANALYTICS), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let v = ResourceVector::from_pairs([(CACHE, 3.0), (INGESTION, 21.0), (CACHE, 4.0)]);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            vec![(INGESTION, 21.0), (CACHE, 4.0)]
        );
        assert!(!v.is_empty());
    }
}
