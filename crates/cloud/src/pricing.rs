//! Service pricing and billing.
//!
//! Flower's resource share analyzer (§3.2) needs the cost dimension `c_d`
//! of every resource to enforce the budget constraint (Eq. 4), and the
//! holistic-savings experiment (E5) integrates actual spend over time.
//! Prices default to 2017 us-east-1 list prices; only their *ratios*
//! matter to the reproduced shapes.

use flower_sim::SimDuration;

/// The provisionable resource kinds across the three layers of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A Kinesis shard (ingestion layer).
    Shard,
    /// A Storm worker VM (analytics layer).
    Vm,
    /// A DynamoDB write capacity unit (storage layer).
    WriteCapacityUnit,
    /// A DynamoDB read capacity unit (storage layer).
    ReadCapacityUnit,
    /// An ElastiCache-style cache node (cache tier).
    CacheNode,
}

impl ResourceKind {
    /// All kinds, for iteration.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Shard,
        ResourceKind::Vm,
        ResourceKind::WriteCapacityUnit,
        ResourceKind::ReadCapacityUnit,
        ResourceKind::CacheNode,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Shard => "shard",
            ResourceKind::Vm => "vm",
            ResourceKind::WriteCapacityUnit => "wcu",
            ResourceKind::ReadCapacityUnit => "rcu",
            ResourceKind::CacheNode => "cache_node",
        }
    }
}

/// Hourly unit prices, in dollars.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceList {
    /// $/shard-hour (Kinesis, 2017: $0.015).
    pub shard_hour: f64,
    /// $/million PUT payload units (Kinesis, 2017: $0.014).
    pub put_million_records: f64,
    /// $/VM-hour (EC2 m4.large on-demand, 2017: $0.10).
    pub vm_hour: f64,
    /// $/WCU-hour (DynamoDB, 2017: $0.00065).
    pub wcu_hour: f64,
    /// $/RCU-hour (DynamoDB, 2017: $0.00013).
    pub rcu_hour: f64,
    /// $/cache-node-hour (ElastiCache cache.m3.medium, 2017: $0.090).
    pub cache_node_hour: f64,
}

impl Default for PriceList {
    fn default() -> Self {
        PriceList {
            shard_hour: 0.015,
            put_million_records: 0.014,
            vm_hour: 0.10,
            wcu_hour: 0.00065,
            rcu_hour: 0.00013,
            cache_node_hour: 0.090,
        }
    }
}

impl PriceList {
    /// Hourly price of one unit of `kind`.
    pub fn unit_hour(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Shard => self.shard_hour,
            ResourceKind::Vm => self.vm_hour,
            ResourceKind::WriteCapacityUnit => self.wcu_hour,
            ResourceKind::ReadCapacityUnit => self.rcu_hour,
            ResourceKind::CacheNode => self.cache_node_hour,
        }
    }

    /// Hourly cost of a resource bundle
    /// `(shards, vms, wcu, rcu)` — the left side of the paper's budget
    /// constraint (Eq. 4) for one time unit.
    pub fn hourly_cost(&self, shards: f64, vms: f64, wcu: f64, rcu: f64) -> f64 {
        shards * self.shard_hour + vms * self.vm_hour + wcu * self.wcu_hour + rcu * self.rcu_hour
    }
}

/// Integrates dollar spend over virtual time.
#[derive(Debug, Clone, Default)]
pub struct BillingMeter {
    total: f64,
    by_kind: [f64; 5],
    request_charges: f64,
}

impl BillingMeter {
    /// A zeroed meter.
    pub fn new() -> BillingMeter {
        BillingMeter::default()
    }

    fn kind_index(kind: ResourceKind) -> usize {
        match kind {
            ResourceKind::Shard => 0,
            ResourceKind::Vm => 1,
            ResourceKind::WriteCapacityUnit => 2,
            ResourceKind::ReadCapacityUnit => 3,
            ResourceKind::CacheNode => 4,
        }
    }

    /// Accrue the cost of holding `amount` units of `kind` for `dt`.
    pub fn accrue(&mut self, prices: &PriceList, kind: ResourceKind, amount: f64, dt: SimDuration) {
        debug_assert!(amount >= 0.0, "negative resource amount");
        let cost = amount * prices.unit_hour(kind) * dt.as_hours_f64();
        self.total += cost;
        self.by_kind[Self::kind_index(kind)] += cost;
    }

    /// Accrue Kinesis per-record PUT charges.
    pub fn accrue_put_records(&mut self, prices: &PriceList, records: u64) {
        let cost = records as f64 / 1e6 * prices.put_million_records;
        self.total += cost;
        self.request_charges += cost;
    }

    /// Total dollars accrued.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Dollars accrued for one resource kind (excludes request charges).
    pub fn by_kind(&self, kind: ResourceKind) -> f64 {
        self.by_kind[Self::kind_index(kind)]
    }

    /// Dollars accrued as per-request charges (Kinesis PUTs).
    pub fn request_charges(&self) -> f64 {
        self.request_charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prices_match_2017_list() {
        let p = PriceList::default();
        assert_eq!(p.unit_hour(ResourceKind::Shard), 0.015);
        assert_eq!(p.unit_hour(ResourceKind::Vm), 0.10);
        assert_eq!(p.unit_hour(ResourceKind::WriteCapacityUnit), 0.00065);
        assert_eq!(p.unit_hour(ResourceKind::ReadCapacityUnit), 0.00013);
        assert_eq!(p.unit_hour(ResourceKind::CacheNode), 0.090);
    }

    #[test]
    fn hourly_cost_sums_dimensions() {
        let p = PriceList::default();
        let c = p.hourly_cost(10.0, 4.0, 1_000.0, 500.0);
        let expected = 10.0 * 0.015 + 4.0 * 0.10 + 1_000.0 * 0.00065 + 500.0 * 0.00013;
        assert!((c - expected).abs() < 1e-12);
    }

    #[test]
    fn meter_integrates_over_time() {
        let p = PriceList::default();
        let mut m = BillingMeter::new();
        // 4 VMs for 30 minutes = 2 VM-hours = $0.20.
        m.accrue(&p, ResourceKind::Vm, 4.0, SimDuration::from_mins(30));
        assert!((m.total() - 0.20).abs() < 1e-12);
        assert!((m.by_kind(ResourceKind::Vm) - 0.20).abs() < 1e-12);
        assert_eq!(m.by_kind(ResourceKind::Shard), 0.0);
        // 10 shards for 1 hour = $0.15 more.
        m.accrue(&p, ResourceKind::Shard, 10.0, SimDuration::from_hours(1));
        assert!((m.total() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn put_charges_accumulate_separately() {
        let p = PriceList::default();
        let mut m = BillingMeter::new();
        m.accrue_put_records(&p, 2_000_000);
        assert!((m.request_charges() - 0.028).abs() < 1e-12);
        assert!((m.total() - 0.028).abs() < 1e-12);
        assert_eq!(m.by_kind(ResourceKind::Shard), 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ResourceKind::Shard.label(), "shard");
        assert_eq!(ResourceKind::Vm.label(), "vm");
        assert_eq!(ResourceKind::WriteCapacityUnit.label(), "wcu");
        assert_eq!(ResourceKind::ReadCapacityUnit.label(), "rcu");
        assert_eq!(ResourceKind::CacheNode.label(), "cache_node");
        assert_eq!(ResourceKind::ALL.len(), 5);
    }
}
