//! A DynamoDB-like table simulator (storage layer).
//!
//! Model scope — what a capacity-unit controller observes and actuates:
//!
//! * provisioned write/read capacity units (WCU = one ≤1 KiB write per
//!   second, RCU = one ≤4 KiB strongly-consistent read per second);
//! * the **burst-credit bucket**: up to 300 seconds of unused provisioned
//!   capacity accumulates and absorbs short spikes, exactly the
//!   documented DynamoDB behaviour — it is why naive threshold rules see
//!   no throttles until credit runs out, then a cliff;
//! * capacity increases apply after a short control-plane delay;
//!   **decreases are limited per day** (four in 2017), a real asymmetry a
//!   holistic controller must respect;
//! * throttled writes surface as `ThrottledRequests`.

use flower_sim::{SimDuration, SimTime};

use crate::alarms::{Alarm, Comparison};
use crate::engine::{metric_names, EngineError, TickReport};
use crate::layer::{LayerId, LayerService, SensorProbe, STORAGE};
use crate::metrics::{MetricId, Statistic};
use crate::pricing::PriceList;

/// Static configuration of a simulated table.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamoConfig {
    /// Table name (metric dimension).
    pub name: String,
    /// Initial provisioned write capacity units.
    pub initial_wcu: f64,
    /// Initial provisioned read capacity units.
    pub initial_rcu: f64,
    /// Bytes covered by one WCU.
    pub wcu_item_bytes: u32,
    /// Bytes covered by one RCU (strongly consistent read).
    pub rcu_item_bytes: u32,
    /// Seconds of unused capacity the burst bucket can hold.
    pub burst_seconds: f64,
    /// Control-plane delay for capacity changes.
    pub update_latency: SimDuration,
    /// Maximum capacity decreases per day.
    pub max_decreases_per_day: u32,
    /// Account limit on provisioned WCU.
    pub max_wcu: f64,
}

impl Default for DynamoConfig {
    fn default() -> Self {
        DynamoConfig {
            name: "click-aggregates".to_owned(),
            initial_wcu: 100.0,
            initial_rcu: 50.0,
            wcu_item_bytes: 1024,
            rcu_item_bytes: 4096,
            burst_seconds: 300.0,
            update_latency: SimDuration::from_secs(10),
            max_decreases_per_day: 4,
            max_wcu: 40_000.0,
        }
    }
}

/// Result of one write step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOutcome {
    /// Capacity units consumed (provisioned + burst).
    pub consumed_wcu: f64,
    /// Items written successfully.
    pub written: u64,
    /// Items throttled.
    pub throttled: u64,
    /// Consumed-over-provisioned utilization for the step.
    pub utilization: f64,
    /// Remaining burst credit (in capacity-unit-seconds).
    pub burst_credit: f64,
}

/// Result of one read step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Capacity units consumed (provisioned + burst).
    pub consumed_rcu: f64,
    /// Items read successfully.
    pub read: u64,
    /// Items throttled.
    pub throttled: u64,
    /// Consumed-over-provisioned utilization for the step.
    pub utilization: f64,
    /// Remaining read burst credit (in capacity-unit-seconds).
    pub burst_credit: f64,
}

impl ReadOutcome {
    /// The all-zero outcome of a step with no read traffic.
    pub fn idle() -> ReadOutcome {
        ReadOutcome {
            consumed_rcu: 0.0,
            read: 0,
            throttled: 0,
            utilization: 0.0,
            burst_credit: 0.0,
        }
    }
}

/// Errors from control-plane operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamoError {
    /// Capacity target out of range.
    InvalidCapacity {
        /// The rejected target.
        requested: f64,
        /// The account limit.
        max: f64,
    },
    /// The daily capacity-decrease budget is spent.
    DecreaseLimitReached {
        /// Decreases already performed in the current day.
        used: u32,
        /// The daily limit.
        limit: u32,
    },
    /// A capacity update is already in flight.
    UpdateInProgress,
}

impl std::fmt::Display for DynamoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamoError::InvalidCapacity { requested, max } => {
                write!(f, "invalid capacity {requested} (allowed 1..={max})")
            }
            DynamoError::DecreaseLimitReached { used, limit } => {
                write!(f, "capacity decrease limit reached ({used}/{limit} today)")
            }
            DynamoError::UpdateInProgress => write!(f, "a capacity update is in progress"),
        }
    }
}

impl std::error::Error for DynamoError {}

/// The simulated table.
#[derive(Debug, Clone)]
pub struct DynamoTable {
    config: DynamoConfig,
    provisioned_wcu: f64,
    provisioned_rcu: f64,
    pending_update: Option<(f64, SimTime)>,
    pending_rcu_update: Option<(f64, SimTime)>,
    /// Burst credit in WCU-seconds.
    burst_credit: f64,
    /// Burst credit in RCU-seconds.
    burst_credit_rcu: f64,
    decreases_today: u32,
    day_start: SimTime,
    total_written: u64,
    total_throttled: u64,
    total_read: u64,
    total_read_throttled: u64,
}

impl DynamoTable {
    /// Create a table per `config`.
    pub fn new(config: DynamoConfig) -> DynamoTable {
        assert!(config.initial_wcu >= 1.0 && config.initial_wcu <= config.max_wcu);
        assert!(config.initial_rcu >= 1.0);
        assert!(config.burst_seconds >= 0.0);
        DynamoTable {
            provisioned_wcu: config.initial_wcu,
            provisioned_rcu: config.initial_rcu,
            burst_credit: 0.0,
            burst_credit_rcu: 0.0,
            config,
            pending_update: None,
            pending_rcu_update: None,
            decreases_today: 0,
            day_start: SimTime::ZERO,
            total_written: 0,
            total_throttled: 0,
            total_read: 0,
            total_read_throttled: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Currently provisioned WCU.
    pub fn provisioned_wcu(&self) -> f64 {
        self.provisioned_wcu
    }

    /// Currently provisioned RCU.
    pub fn provisioned_rcu(&self) -> f64 {
        self.provisioned_rcu
    }

    /// Remaining burst credit in WCU-seconds.
    pub fn burst_credit(&self) -> f64 {
        self.burst_credit
    }

    /// Capacity decreases used in the current day.
    pub fn decreases_today(&self) -> u32 {
        self.decreases_today
    }

    /// Lifetime counters: `(written, throttled)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.total_written, self.total_throttled)
    }

    /// Lifetime read counters: `(read, throttled)`.
    pub fn read_counters(&self) -> (u64, u64) {
        (self.total_read, self.total_read_throttled)
    }

    /// Remaining read burst credit in RCU-seconds.
    pub fn read_burst_credit(&self) -> f64 {
        self.burst_credit_rcu
    }

    /// The RCU the table is converging to (pending target when an update
    /// is in flight, else the provisioned value).
    pub fn target_rcu(&self) -> f64 {
        self.pending_rcu_update
            .map(|(t, _)| t)
            .unwrap_or(self.provisioned_rcu)
    }

    /// Request a provisioned-RCU change at time `now`; applies after
    /// `update_latency`. Decreases draw on the same daily budget as
    /// write-capacity decreases (real `UpdateTable` counts one decrease
    /// per call regardless of which throughput moved).
    pub fn update_read_capacity(&mut self, target: f64, now: SimTime) -> Result<(), DynamoError> {
        self.roll_day(now);
        self.settle_rcu_update(now);
        let target = target.round();
        if (target - self.provisioned_rcu).abs() < 0.5 && self.pending_rcu_update.is_none() {
            return Ok(());
        }
        if self.pending_rcu_update.is_some() {
            return Err(DynamoError::UpdateInProgress);
        }
        if target < 1.0 || target > self.config.max_wcu {
            return Err(DynamoError::InvalidCapacity {
                requested: target,
                max: self.config.max_wcu,
            });
        }
        if target < self.provisioned_rcu {
            if self.decreases_today >= self.config.max_decreases_per_day {
                return Err(DynamoError::DecreaseLimitReached {
                    used: self.decreases_today,
                    limit: self.config.max_decreases_per_day,
                });
            }
            self.decreases_today += 1;
        }
        self.pending_rcu_update = Some((target, now + self.config.update_latency));
        Ok(())
    }

    fn settle_rcu_update(&mut self, now: SimTime) {
        if let Some((target, ready)) = self.pending_rcu_update {
            if now >= ready {
                self.provisioned_rcu = target;
                self.burst_credit_rcu = self
                    .burst_credit_rcu
                    .min(self.config.burst_seconds * self.provisioned_rcu);
                self.pending_rcu_update = None;
            }
        }
    }

    /// Read `items` of `avg_item_bytes` each over a step of `dt`.
    /// Eventually-consistent reads cost half an RCU per 4-KiB unit, as
    /// in the real service.
    pub fn read(
        &mut self,
        items: u64,
        avg_item_bytes: u32,
        eventually_consistent: bool,
        now: SimTime,
        dt: SimDuration,
    ) -> ReadOutcome {
        self.roll_day(now);
        self.settle_rcu_update(now);
        let dt_secs = dt.as_secs_f64();
        assert!(dt_secs > 0.0, "read step must have positive length");

        let mut rcu_per_item = (avg_item_bytes as f64 / self.config.rcu_item_bytes as f64)
            .ceil()
            .max(1.0);
        if eventually_consistent {
            rcu_per_item *= 0.5;
        }
        let demand_rcu = items as f64 * rcu_per_item;
        let provisioned_step = self.provisioned_rcu * dt_secs;

        let (consumed, throttled_rcu) = if demand_rcu <= provisioned_step {
            self.burst_credit_rcu = (self.burst_credit_rcu + (provisioned_step - demand_rcu))
                .min(self.config.burst_seconds * self.provisioned_rcu);
            (demand_rcu, 0.0)
        } else {
            let deficit = demand_rcu - provisioned_step;
            let from_burst = deficit.min(self.burst_credit_rcu);
            self.burst_credit_rcu -= from_burst;
            (provisioned_step + from_burst, deficit - from_burst)
        };

        let throttled = (throttled_rcu / rcu_per_item).round() as u64;
        let read = items - throttled.min(items);
        self.total_read += read;
        self.total_read_throttled += throttled;

        ReadOutcome {
            consumed_rcu: consumed / dt_secs,
            read,
            throttled,
            utilization: demand_rcu / provisioned_step.max(f64::MIN_POSITIVE),
            burst_credit: self.burst_credit_rcu,
        }
    }

    /// The WCU the table is converging to (pending target when an update
    /// is in flight, else the provisioned value).
    pub fn target_wcu(&self) -> f64 {
        self.pending_update
            .map(|(t, _)| t)
            .unwrap_or(self.provisioned_wcu)
    }

    /// Request a provisioned-WCU change at time `now`; applies after
    /// `update_latency`. Decreases consume the daily budget.
    pub fn update_write_capacity(&mut self, target: f64, now: SimTime) -> Result<(), DynamoError> {
        self.roll_day(now);
        self.settle_update(now);
        let target = target.round();
        if (target - self.provisioned_wcu).abs() < 0.5 && self.pending_update.is_none() {
            return Ok(());
        }
        if self.pending_update.is_some() {
            return Err(DynamoError::UpdateInProgress);
        }
        if target < 1.0 || target > self.config.max_wcu {
            return Err(DynamoError::InvalidCapacity {
                requested: target,
                max: self.config.max_wcu,
            });
        }
        if target < self.provisioned_wcu {
            if self.decreases_today >= self.config.max_decreases_per_day {
                return Err(DynamoError::DecreaseLimitReached {
                    used: self.decreases_today,
                    limit: self.config.max_decreases_per_day,
                });
            }
            self.decreases_today += 1;
        }
        self.pending_update = Some((target, now + self.config.update_latency));
        Ok(())
    }

    fn roll_day(&mut self, now: SimTime) {
        while now - self.day_start >= SimDuration::from_hours(24) {
            // lint:allow(fixed-step-loop): day-boundary catch-up runs at most once per elapsed day, not per quiet second
            self.day_start += SimDuration::from_hours(24);
            self.decreases_today = 0;
        }
    }

    fn settle_update(&mut self, now: SimTime) {
        if let Some((target, ready)) = self.pending_update {
            if now >= ready {
                self.provisioned_wcu = target;
                // Burst credit never exceeds the bucket for the *new*
                // capacity.
                self.burst_credit = self
                    .burst_credit
                    .min(self.config.burst_seconds * self.provisioned_wcu);
                self.pending_update = None;
            }
        }
    }

    /// Write `items` of `avg_item_bytes` each over a step of `dt`.
    pub fn write(
        &mut self,
        items: u64,
        avg_item_bytes: u32,
        now: SimTime,
        dt: SimDuration,
    ) -> WriteOutcome {
        self.roll_day(now);
        self.settle_update(now);
        let dt_secs = dt.as_secs_f64();
        assert!(dt_secs > 0.0, "write step must have positive length");

        // WCUs per item: ceil(bytes / 1 KiB), minimum 1.
        let wcu_per_item = (avg_item_bytes as f64 / self.config.wcu_item_bytes as f64)
            .ceil()
            .max(1.0);
        let demand_wcu = items as f64 * wcu_per_item;
        let provisioned_step = self.provisioned_wcu * dt_secs;

        let (consumed, throttled_wcu) = if demand_wcu <= provisioned_step {
            // Unused capacity tops up the burst bucket.
            self.burst_credit = (self.burst_credit + (provisioned_step - demand_wcu))
                .min(self.config.burst_seconds * self.provisioned_wcu);
            (demand_wcu, 0.0)
        } else {
            let deficit = demand_wcu - provisioned_step;
            let from_burst = deficit.min(self.burst_credit);
            self.burst_credit -= from_burst;
            (provisioned_step + from_burst, deficit - from_burst)
        };

        let throttled = (throttled_wcu / wcu_per_item).round() as u64;
        let written = items - throttled.min(items);
        self.total_written += written;
        self.total_throttled += throttled;

        WriteOutcome {
            consumed_wcu: consumed / dt_secs,
            written,
            throttled,
            utilization: demand_wcu / provisioned_step.max(f64::MIN_POSITIVE),
            burst_credit: self.burst_credit,
        }
    }
}

impl LayerService for DynamoTable {
    fn id(&self) -> LayerId {
        STORAGE
    }

    fn service_name(&self) -> &str {
        self.name()
    }

    fn actuator_units(&self) -> f64 {
        self.provisioned_wcu()
    }

    fn target_units(&self) -> f64 {
        self.target_wcu()
    }

    fn max_units(&self) -> f64 {
        self.config.max_wcu
    }

    fn unit_price(&self, prices: &PriceList) -> f64 {
        prices.wcu_hour
    }

    fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        self.update_write_capacity(target, now)
            .map_err(EngineError::Dynamo)
    }

    fn utilization_sensor(&self) -> SensorProbe {
        SensorProbe {
            metric: MetricId::new(
                metric_names::NS_DYNAMO,
                metric_names::WRITE_UTILIZATION,
                self.name(),
            ),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    fn measurement(&self, tick: &TickReport) -> Option<f64> {
        Some(tick.write.utilization * 100.0)
    }

    fn headline_metrics(&self) -> Vec<MetricId> {
        use metric_names::*;
        [
            CONSUMED_WCU,
            DYNAMO_THROTTLED,
            WRITE_UTILIZATION,
            PROVISIONED_WCU,
            CONSUMED_RCU,
            DYNAMO_READ_THROTTLED,
            READ_UTILIZATION,
            PROVISIONED_RCU,
        ]
        .into_iter()
        .map(|m| MetricId::new(NS_DYNAMO, m, self.name()))
        .collect()
    }

    fn default_alarm(&self) -> Option<Alarm> {
        Some(Alarm::new(
            "storage-throttling",
            MetricId::new(
                metric_names::NS_DYNAMO,
                metric_names::DYNAMO_THROTTLED,
                self.name(),
            ),
            Statistic::Sum,
            SimDuration::from_mins(1),
            Comparison::GreaterThan,
            0.0,
            2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_secs(1);

    fn table(wcu: f64) -> DynamoTable {
        DynamoTable::new(DynamoConfig {
            initial_wcu: wcu,
            ..Default::default()
        })
    }

    #[test]
    fn under_capacity_writes_all_and_banks_credit() {
        let mut t = table(100.0);
        let out = t.write(60, 512, SimTime::ZERO, DT);
        assert_eq!(out.written, 60);
        assert_eq!(out.throttled, 0);
        assert!((out.consumed_wcu - 60.0).abs() < 1e-9);
        assert!((out.utilization - 0.6).abs() < 1e-9);
        assert!(
            (out.burst_credit - 40.0).abs() < 1e-9,
            "unused 40 WCU banked"
        );
    }

    #[test]
    fn burst_credit_absorbs_spikes_then_cliff() {
        let mut t = table(100.0);
        // Bank credit for 100 seconds at half load → 5,000 credit... capped
        // at 300 × 100 = 30,000; here we accumulate 50/step.
        for s in 0..100 {
            t.write(50, 512, SimTime::from_secs(s), DT);
        }
        let credit = t.burst_credit();
        assert!((credit - 5_000.0).abs() < 1e-6, "credit={credit}");
        // Spike at 3× capacity: 200 WCU/s over provisioned; credit covers
        // 5,000/200 = 25 seconds.
        let mut first_throttle_at = None;
        for s in 100..200 {
            let out = t.write(300, 512, SimTime::from_secs(s), DT);
            if out.throttled > 0 && first_throttle_at.is_none() {
                first_throttle_at = Some(s - 100);
            }
        }
        let cliff = first_throttle_at.expect("spike must eventually throttle");
        assert!(
            (24..=26).contains(&cliff),
            "cliff at {cliff}s, expected ~25s"
        );
    }

    #[test]
    fn burst_bucket_is_capped() {
        let mut t = table(100.0);
        for s in 0..1_000 {
            t.write(0, 512, SimTime::from_secs(s), DT);
        }
        assert!((t.burst_credit() - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn large_items_cost_multiple_wcu() {
        let mut t = table(100.0);
        // 2.5 KiB items cost 3 WCU each → 40 items = 120 WCU > 100.
        let out = t.write(40, 2_560, SimTime::ZERO, DT);
        assert!(out.throttled > 0, "expected throttling, got {out:?}");
    }

    #[test]
    fn capacity_update_applies_after_latency() {
        let mut t = table(100.0);
        t.update_write_capacity(400.0, SimTime::ZERO).unwrap();
        assert_eq!(t.provisioned_wcu(), 100.0);
        t.write(0, 512, SimTime::from_secs(5), DT);
        assert_eq!(t.provisioned_wcu(), 100.0, "not yet at t=5s");
        t.write(0, 512, SimTime::from_secs(10), DT);
        assert_eq!(t.provisioned_wcu(), 400.0);
    }

    #[test]
    fn decrease_limit_enforced_and_resets_daily() {
        let mut t = table(1_000.0);
        let mut now = SimTime::ZERO;
        for target in [900.0, 800.0, 700.0, 600.0] {
            t.update_write_capacity(target, now).unwrap();
            now += SimDuration::from_mins(30);
            t.write(0, 512, now, DT); // settle
            now += SimDuration::from_mins(30);
        }
        assert_eq!(t.decreases_today(), 4);
        assert!(matches!(
            t.update_write_capacity(500.0, now),
            Err(DynamoError::DecreaseLimitReached { used: 4, limit: 4 })
        ));
        // Increases still allowed.
        t.update_write_capacity(800.0, now).unwrap();
        t.write(0, 512, now + SimDuration::from_mins(1), DT);
        // Next day the budget resets.
        let tomorrow = SimTime::from_hours(25);
        t.update_write_capacity(500.0, tomorrow).unwrap();
        assert_eq!(t.decreases_today(), 1);
    }

    #[test]
    fn concurrent_update_rejected() {
        let mut t = table(100.0);
        t.update_write_capacity(200.0, SimTime::ZERO).unwrap();
        assert_eq!(
            t.update_write_capacity(300.0, SimTime::from_secs(1)),
            Err(DynamoError::UpdateInProgress)
        );
    }

    #[test]
    fn noop_update_consumes_nothing() {
        let mut t = table(100.0);
        t.update_write_capacity(100.0, SimTime::ZERO).unwrap();
        assert!(t.pending_update.is_none());
        assert_eq!(t.decreases_today(), 0);
    }

    #[test]
    fn invalid_capacity_rejected() {
        let mut t = table(100.0);
        assert!(matches!(
            t.update_write_capacity(0.0, SimTime::ZERO),
            Err(DynamoError::InvalidCapacity { .. })
        ));
        assert!(matches!(
            t.update_write_capacity(1e9, SimTime::ZERO),
            Err(DynamoError::InvalidCapacity { .. })
        ));
    }

    #[test]
    fn shrinking_capacity_clips_burst_credit() {
        let mut t = table(100.0);
        for s in 0..400 {
            t.write(0, 512, SimTime::from_secs(s), DT);
        }
        assert!((t.burst_credit() - 30_000.0).abs() < 1e-6);
        t.update_write_capacity(10.0, SimTime::from_secs(400))
            .unwrap();
        t.write(0, 512, SimTime::from_secs(450), DT);
        assert_eq!(t.provisioned_wcu(), 10.0);
        assert!(t.burst_credit() <= 3_000.0 + 1e-9);
    }

    #[test]
    fn utilization_reflects_demand_over_provisioned() {
        let mut t = table(200.0);
        let out = t.write(300, 512, SimTime::ZERO, DT);
        assert!((out.utilization - 1.5).abs() < 1e-9);
    }

    #[test]
    fn read_under_capacity_banks_credit() {
        let mut t = table(100.0); // initial_rcu = 50 by default
        let out = t.read(30, 2_048, false, SimTime::ZERO, DT);
        assert_eq!(out.read, 30);
        assert_eq!(out.throttled, 0);
        // 2 KiB strongly consistent = 1 RCU each → 30 consumed, 20 banked.
        assert!((out.consumed_rcu - 30.0).abs() < 1e-9);
        assert!((out.burst_credit - 20.0).abs() < 1e-9);
        assert!((out.utilization - 0.6).abs() < 1e-9);
    }

    #[test]
    fn eventually_consistent_reads_cost_half() {
        let mut strong = table(100.0);
        let mut eventual = table(100.0);
        let s = strong.read(40, 4_096, false, SimTime::ZERO, DT);
        let e = eventual.read(40, 4_096, true, SimTime::ZERO, DT);
        assert!((s.consumed_rcu - 40.0).abs() < 1e-9);
        assert!((e.consumed_rcu - 20.0).abs() < 1e-9);
    }

    #[test]
    fn large_reads_cost_multiple_rcu() {
        let mut t = table(100.0); // 50 RCU
                                  // 10 KiB items cost 3 RCU each → 30 items = 90 RCU > 50.
        let out = t.read(30, 10_240, false, SimTime::ZERO, DT);
        assert!(out.throttled > 0, "expected read throttling: {out:?}");
    }

    #[test]
    fn read_burst_credit_absorbs_then_throttles() {
        let mut t = table(100.0); // 50 RCU
        for s in 0..100 {
            t.read(25, 4_096, false, SimTime::from_secs(s), DT); // banks 25/s
        }
        assert!((t.read_burst_credit() - 2_500.0).abs() < 1e-6);
        // 3× capacity: 100 RCU over provisioned; credit covers 25 s.
        let mut first_throttle = None;
        for s in 100..200 {
            let out = t.read(150, 4_096, false, SimTime::from_secs(s), DT);
            if out.throttled > 0 && first_throttle.is_none() {
                first_throttle = Some(s - 100);
            }
        }
        let cliff = first_throttle.expect("must throttle");
        assert!((24..=26).contains(&cliff), "cliff at {cliff}");
    }

    #[test]
    fn rcu_update_applies_after_latency_and_shares_decrease_budget() {
        let mut t = table(1_000.0);
        t.update_read_capacity(200.0, SimTime::ZERO).unwrap();
        assert_eq!(t.provisioned_rcu(), 50.0);
        t.read(0, 4_096, false, SimTime::from_secs(10), DT);
        assert_eq!(t.provisioned_rcu(), 200.0);
        assert_eq!(t.target_rcu(), 200.0);
        // Four decreases (mixing read and write) exhaust the shared budget.
        let mut now = SimTime::from_mins(1);
        for (i, target) in [150.0, 120.0].iter().enumerate() {
            t.update_read_capacity(*target, now).unwrap();
            now += SimDuration::from_mins(2);
            t.read(0, 4_096, false, now, DT);
            now += SimDuration::from_mins(2);
            let _ = i;
        }
        for target in [900.0, 800.0] {
            t.update_write_capacity(target, now).unwrap();
            now += SimDuration::from_mins(2);
            t.write(0, 512, now, DT);
            now += SimDuration::from_mins(2);
        }
        assert_eq!(t.decreases_today(), 4);
        assert!(matches!(
            t.update_read_capacity(100.0, now),
            Err(DynamoError::DecreaseLimitReached { .. })
        ));
    }

    #[test]
    fn concurrent_rcu_update_rejected_independently_of_wcu() {
        let mut t = table(100.0);
        t.update_read_capacity(80.0, SimTime::ZERO).unwrap();
        assert_eq!(
            t.update_read_capacity(90.0, SimTime::from_secs(1)),
            Err(DynamoError::UpdateInProgress)
        );
        // A write-capacity update is a separate control-plane slot here.
        t.update_write_capacity(150.0, SimTime::from_secs(1))
            .unwrap();
    }

    #[test]
    fn read_counters_and_idle_outcome() {
        let mut t = table(100.0);
        t.read(10, 4_096, false, SimTime::ZERO, DT);
        t.read(200, 4_096, false, SimTime::from_secs(1), DT);
        let (read, throttled) = t.read_counters();
        assert!(read >= 10);
        assert!(throttled > 0);
        let idle = ReadOutcome::idle();
        assert_eq!(idle.read, 0);
        assert_eq!(idle.consumed_rcu, 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = table(10.0);
        t.write(5, 512, SimTime::ZERO, DT);
        t.write(50, 512, SimTime::from_secs(1), DT);
        let (written, throttled) = t.counters();
        assert!(written >= 15);
        assert!(throttled > 0);
    }
}
