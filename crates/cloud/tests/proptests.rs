// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Property-based tests for the simulated cloud services: conservation
//! laws and invariants that must hold for *any* workload, capacity, or
//! tick pattern. Driven by the deterministic `testkit` harness.

use flower_cloud::{
    CloudEngine, DynamoConfig, DynamoTable, EngineConfig, KinesisConfig, KinesisStream,
    StormCluster, StormConfig, Topology,
};
use flower_sim::testkit::{forall, vec_u64};
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::{ClickStreamConfig, ClickStreamGenerator};

const DT: SimDuration = SimDuration::from_secs(1);

/// Kinesis conserves records: accepted + throttled == offered, and
/// accepted never exceeds aggregate capacity.
#[test]
fn kinesis_conserves_records() {
    forall(32, |rng| {
        let shards = 1 + rng.below(15) as u32;
        let batch_sizes = vec_u64(rng, 5_000, 1, 19);
        let seed = rng.below(1_000);
        let mut stream = KinesisStream::new(KinesisConfig {
            initial_shards: shards,
            ..Default::default()
        });
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
        let mut offered_total = 0u64;
        for (i, &n) in batch_sizes.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            let batch = generator.generate(now, n);
            let out = stream.ingest(&batch, now, DT);
            assert_eq!(out.accepted + out.throttled, n);
            assert!(out.accepted <= u64::from(shards) * 1_000);
            offered_total += n;
        }
        let (accepted, throttled, _) = stream.counters();
        assert_eq!(accepted + throttled, offered_total);
    });
}

/// Storm conserves tuples: processed + dropped + backlog == offered, and
/// CPU stays within [idle, 100].
#[test]
fn storm_conserves_tuples() {
    forall(32, |rng| {
        let vms = 1 + rng.below(9) as u32;
        let loads = vec_u64(rng, 30_000, 1, 29);
        let mut cluster = StormCluster::new(
            StormConfig {
                initial_vms: vms,
                max_backlog: 50_000,
                ..Default::default()
            },
            Topology::clickstream(),
        );
        let mut offered = 0u64;
        let mut processed = 0u64;
        let mut dropped = 0u64;
        let mut backlog = 0u64;
        for (i, &n) in loads.iter().enumerate() {
            let out = cluster.process(n, SimTime::from_secs(i as u64), DT);
            offered += n;
            processed += out.processed;
            dropped += out.dropped;
            backlog = out.backlog;
            assert!(out.cpu_pct >= 4.8 - 1e-9 && out.cpu_pct <= 100.0 + 1e-9);
            assert!(out.latency_secs >= 0.0);
        }
        assert_eq!(processed + dropped + backlog, offered);
    });
}

/// DynamoDB conserves items, never consumes more than provisioned +
/// burst, and the burst bucket stays within its cap.
#[test]
fn dynamo_write_invariants() {
    forall(32, |rng| {
        let wcu = rng.uniform(1.0, 500.0);
        let items = vec_u64(rng, 2_000, 1, 29);
        let mut table = DynamoTable::new(DynamoConfig {
            initial_wcu: wcu,
            ..Default::default()
        });
        for (i, &n) in items.iter().enumerate() {
            let out = table.write(n, 512, SimTime::from_secs(i as u64), DT);
            assert_eq!(out.written + out.throttled, n);
            // Consumed rate can exceed provisioned only via burst credit.
            assert!(out.consumed_wcu <= wcu + 300.0 * wcu + 1e-6);
            assert!(out.burst_credit >= 0.0);
            assert!(out.burst_credit <= 300.0 * wcu + 1e-6);
        }
    });
}

/// The read path obeys the same invariants independently.
#[test]
fn dynamo_read_invariants() {
    forall(32, |rng| {
        let rcu = rng.uniform(1.0, 500.0);
        let items = vec_u64(rng, 2_000, 1, 29);
        let eventually = rng.chance(0.5);
        let mut table = DynamoTable::new(DynamoConfig {
            initial_wcu: 10.0,
            initial_rcu: rcu,
            ..Default::default()
        });
        for (i, &n) in items.iter().enumerate() {
            let out = table.read(n, 4_096, eventually, SimTime::from_secs(i as u64), DT);
            assert_eq!(out.read + out.throttled, n);
            assert!(out.burst_credit >= 0.0);
            assert!(out.burst_credit <= 300.0 * rcu + 1e-6);
        }
    });
}

/// The full engine: money only ever accrues, layer conservation holds
/// end-to-end, and a bigger deployment never accepts fewer records on
/// the same workload.
#[test]
fn engine_monotonicity_and_conservation() {
    forall(32, |rng| {
        let rate = 100 + rng.below(3_900);
        let seed = rng.below(500);
        let run = |shards: u32, vms: u32| {
            let mut engine = CloudEngine::new(EngineConfig {
                kinesis: KinesisConfig {
                    initial_shards: shards,
                    ..Default::default()
                },
                storm: StormConfig {
                    initial_vms: vms,
                    ..Default::default()
                },
                ..Default::default()
            });
            let mut generator =
                ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
            let mut accepted = 0u64;
            let mut offered = 0u64;
            let mut last_cost = 0.0;
            for s in 0..20u64 {
                let now = SimTime::from_secs(s);
                let batch = generator.generate(now, rate);
                let tick = engine.tick(&batch, now, DT);
                assert!(tick.cost > 0.0, "resources always cost money");
                assert!(engine.billing().total() > last_cost);
                last_cost = engine.billing().total();
                accepted += tick.ingest.accepted;
                offered += rate;
            }
            assert!(accepted <= offered);
            accepted
        };
        let small = run(1, 1);
        let large = run(8, 8);
        assert!(
            large >= small,
            "bigger deployment accepted less: {large} < {small}"
        );
    });
}
