//! Property-based tests for the simulated cloud services: conservation
//! laws and invariants that must hold for *any* workload, capacity, or
//! tick pattern.

use flower_cloud::{
    CloudEngine, DynamoConfig, DynamoTable, EngineConfig, KinesisConfig, KinesisStream,
    StormCluster, StormConfig, Topology,
};
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::{ClickStreamConfig, ClickStreamGenerator};
use proptest::prelude::*;

const DT: SimDuration = SimDuration::from_secs(1);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kinesis conserves records: accepted + throttled == offered, and
    /// accepted never exceeds aggregate capacity.
    #[test]
    fn kinesis_conserves_records(
        shards in 1u32..16,
        batch_sizes in prop::collection::vec(0u64..5_000, 1..20),
        seed in 0u64..1_000,
    ) {
        let mut stream = KinesisStream::new(KinesisConfig {
            initial_shards: shards,
            ..Default::default()
        });
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
        let mut offered_total = 0u64;
        for (i, &n) in batch_sizes.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            let batch = generator.generate(now, n);
            let out = stream.ingest(&batch, now, DT);
            prop_assert_eq!(out.accepted + out.throttled, n);
            prop_assert!(out.accepted <= shards as u64 * 1_000);
            offered_total += n;
        }
        let (accepted, throttled, _) = stream.counters();
        prop_assert_eq!(accepted + throttled, offered_total);
    }

    /// Storm conserves tuples: processed + dropped + backlog == offered,
    /// and CPU stays within [idle, 100].
    #[test]
    fn storm_conserves_tuples(
        vms in 1u32..10,
        loads in prop::collection::vec(0u64..30_000, 1..30),
    ) {
        let mut cluster = StormCluster::new(
            StormConfig {
                initial_vms: vms,
                max_backlog: 50_000,
                ..Default::default()
            },
            Topology::clickstream(),
        );
        let mut offered = 0u64;
        let mut processed = 0u64;
        let mut dropped = 0u64;
        let mut backlog = 0u64;
        for (i, &n) in loads.iter().enumerate() {
            let out = cluster.process(n, SimTime::from_secs(i as u64), DT);
            offered += n;
            processed += out.processed;
            dropped += out.dropped;
            backlog = out.backlog;
            prop_assert!(out.cpu_pct >= 4.8 - 1e-9 && out.cpu_pct <= 100.0 + 1e-9);
            prop_assert!(out.latency_secs >= 0.0);
        }
        prop_assert_eq!(processed + dropped + backlog, offered);
    }

    /// DynamoDB conserves items, never consumes more than provisioned +
    /// burst, and the burst bucket stays within its cap.
    #[test]
    fn dynamo_write_invariants(
        wcu in 1.0f64..500.0,
        items in prop::collection::vec(0u64..2_000, 1..30),
    ) {
        let mut table = DynamoTable::new(DynamoConfig {
            initial_wcu: wcu,
            ..Default::default()
        });
        for (i, &n) in items.iter().enumerate() {
            let out = table.write(n, 512, SimTime::from_secs(i as u64), DT);
            prop_assert_eq!(out.written + out.throttled, n);
            // Consumed rate can exceed provisioned only via burst credit.
            prop_assert!(out.consumed_wcu <= wcu + 300.0 * wcu + 1e-6);
            prop_assert!(out.burst_credit >= 0.0);
            prop_assert!(out.burst_credit <= 300.0 * wcu + 1e-6);
        }
    }

    /// The read path obeys the same invariants independently.
    #[test]
    fn dynamo_read_invariants(
        rcu in 1.0f64..500.0,
        items in prop::collection::vec(0u64..2_000, 1..30),
        eventually in prop::bool::ANY,
    ) {
        let mut table = DynamoTable::new(DynamoConfig {
            initial_wcu: 10.0,
            initial_rcu: rcu,
            ..Default::default()
        });
        for (i, &n) in items.iter().enumerate() {
            let out = table.read(n, 4_096, eventually, SimTime::from_secs(i as u64), DT);
            prop_assert_eq!(out.read + out.throttled, n);
            prop_assert!(out.burst_credit >= 0.0);
            prop_assert!(out.burst_credit <= 300.0 * rcu + 1e-6);
        }
    }

    /// The full engine: money only ever accrues, layer conservation
    /// holds end-to-end, and a bigger deployment never accepts fewer
    /// records on the same workload.
    #[test]
    fn engine_monotonicity_and_conservation(
        rate in 100u64..4_000,
        seed in 0u64..500,
    ) {
        let run = |shards: u32, vms: u32| {
            let mut engine = CloudEngine::new(EngineConfig {
                kinesis: KinesisConfig {
                    initial_shards: shards,
                    ..Default::default()
                },
                storm: StormConfig {
                    initial_vms: vms,
                    ..Default::default()
                },
                ..Default::default()
            });
            let mut generator =
                ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
            let mut accepted = 0u64;
            let mut offered = 0u64;
            let mut last_cost = 0.0;
            for s in 0..20u64 {
                let now = SimTime::from_secs(s);
                let batch = generator.generate(now, rate);
                let tick = engine.tick(&batch, now, DT);
                prop_assert!(tick.cost > 0.0, "resources always cost money");
                prop_assert!(engine.billing().total() > last_cost);
                last_cost = engine.billing().total();
                accepted += tick.ingest.accepted;
                offered += rate;
            }
            prop_assert!(accepted <= offered);
            Ok(accepted)
        };
        let small = run(1, 1)?;
        let large = run(8, 8)?;
        prop_assert!(large >= small, "bigger deployment accepted less: {large} < {small}");
    }
}
