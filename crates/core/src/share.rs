//! Resource Share Analysis — paper §3.2.
//!
//! "Given the budget and estimated dependencies between workloads, what
//! would be the maximum share of resources for each layer?" Flower casts
//! this as the multi-objective program of Eqs. 3–5:
//!
//! ```text
//! max (r_I, r_A, r_S)
//! s.t.  Σ_d r_I·c_d + Σ_d r_A·c_d + Σ_d r_S·c_d ≤ Bud_t      (budget)
//!       r_L1 = β0 + β1·r_L2 + ε                              (dependencies)
//! ```
//!
//! and searches the plan space with NSGA-II. This module provides the
//! problem encoding ([`ShareProblem`]), the analyzer driving the solver
//! ([`ShareAnalyzer`]), and the worked example of the paper's Fig. 4
//! (constraints `5·r_A ≥ r_I`, `2·r_A ≤ r_I`, `2·r_I ≤ r_S`), whose
//! distinct integer-resolution Pareto plans reproduce the "six Pareto
//! optimal solutions" the demo reports.
//!
//! The encoding is layer-generic: a [`ShareProblem`] carries an ordered
//! list of layers, and that order *is* the genome order. The paper's
//! three layers are the default; [`ShareProblem::with_layer`] opens the
//! program to any registered tier.

use flower_cloud::{PriceList, ResourceVector};
use flower_nsga2::{Nsga2, Nsga2Config, Problem};
use flower_obs::{kind, Recorder};

use crate::error::FlowerError;
use crate::flow::Layer;

/// A linear inequality over the share vector: `Σ coeff(L)·r_L +
/// constant ≤ 0`.
///
/// Terms are stored sparsely by layer; evaluation iterates the owning
/// problem's layer order (zero coefficients included) so the float
/// accumulation order is a function of the problem, not of how the
/// constraint was built.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(layer, coefficient)` terms, merged per layer.
    pub terms: Vec<(Layer, f64)>,
    /// Constant term.
    pub constant: f64,
    /// Human-readable form for reports.
    pub label: String,
}

impl Constraint {
    /// Build a constraint from sparse terms; duplicate layers are
    /// summed.
    pub fn new(
        terms: impl IntoIterator<Item = (Layer, f64)>,
        constant: f64,
        label: impl Into<String>,
    ) -> Constraint {
        let mut merged: Vec<(Layer, f64)> = Vec::new();
        for (layer, coeff) in terms {
            match merged.iter_mut().find(|(l, _)| *l == layer) {
                Some((_, c)) => *c += coeff,
                None => merged.push((layer, coeff)),
            }
        }
        merged.sort_by_key(|&(l, _)| l);
        Constraint {
            terms: merged,
            constant,
            label: label.into(),
        }
    }

    /// `lhs_coeff·r[lhs] ≤ rhs_coeff·r[rhs]`, e.g. `2·r_A ≤ r_I`.
    pub fn ratio(lhs_coeff: f64, lhs: Layer, rhs_coeff: f64, rhs: Layer) -> Constraint {
        Constraint::new(
            [(lhs, lhs_coeff), (rhs, -rhs_coeff)],
            0.0,
            format!(
                "{lhs_coeff}*r_{} <= {rhs_coeff}*r_{}",
                lhs.symbol(),
                rhs.symbol()
            ),
        )
    }

    /// A regression-learned dependency (Eq. 5) as a banded equality:
    /// `|r[target] − (β0 + β1·r[source])| ≤ tolerance`, expressed as two
    /// inequalities. Returns both.
    pub fn equality_band(
        target: Layer,
        source: Layer,
        slope: f64,
        intercept: f64,
        tolerance: f64,
    ) -> [Constraint; 2] {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        [
            // r_t − β1·r_s − β0 − tol ≤ 0
            Constraint::new(
                [(target, 1.0), (source, -slope)],
                -intercept - tolerance,
                format!(
                    "r_{} <= {slope}*r_{} + {intercept} + {tolerance}",
                    target.symbol(),
                    source.symbol()
                ),
            ),
            // −r_t + β1·r_s + β0 − tol ≤ 0
            Constraint::new(
                [(target, -1.0), (source, slope)],
                intercept - tolerance,
                format!(
                    "r_{} >= {slope}*r_{} + {intercept} - {tolerance}",
                    target.symbol(),
                    source.symbol()
                ),
            ),
        ]
    }

    /// The coefficient on `layer` (zero when absent).
    pub fn coeff(&self, layer: Layer) -> f64 {
        self.terms
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|&(_, c)| c)
            .unwrap_or(0.0)
    }

    /// Violation magnitude at the share vector `r`, whose entries are
    /// indexed by `layers` (0 when satisfied). Accumulates in `layers`
    /// order, zero coefficients included, so the result is a pure
    /// function of the problem's layer order.
    pub fn violation(&self, layers: &[Layer], r: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (layer, ri) in layers.iter().zip(r) {
            acc += self.coeff(*layer) * ri;
        }
        (acc + self.constant).max(0.0)
    }
}

/// One provisioning plan: the resource share of every layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceShares {
    /// The per-layer shares.
    pub shares: ResourceVector,
    /// Hourly cost of the plan in dollars.
    pub hourly_cost: f64,
}

impl ResourceShares {
    /// Build a plan from per-layer shares and its hourly cost.
    pub fn new(shares: ResourceVector, hourly_cost: f64) -> ResourceShares {
        ResourceShares {
            shares,
            hourly_cost,
        }
    }

    /// The share of `layer` (zero when the plan doesn't cover it).
    pub fn of(&self, layer: Layer) -> f64 {
        self.shares.of(layer)
    }

    /// Compat accessor: the ingestion share (Kinesis shards).
    pub fn shards(&self) -> f64 {
        self.of(Layer::INGESTION)
    }

    /// Compat accessor: the analytics share (Storm VMs).
    pub fn vms(&self) -> f64 {
        self.of(Layer::ANALYTICS)
    }

    /// Compat accessor: the storage share (DynamoDB WCU).
    pub fn wcu(&self) -> f64 {
        self.of(Layer::STORAGE)
    }

    /// Round to deployable integer units, in ascending layer order.
    pub fn rounded(&self) -> Vec<(Layer, u32)> {
        self.rounded_traced(&Recorder::disabled())
    }

    /// Round to deployable integer units, emitting a
    /// [`kind::PLAN_CLAMP`] event for every share the rounding clamps up
    /// to the layer's minimum of one unit — a planned share this small
    /// means the optimizer wanted less capacity than is deployable, a
    /// fact worth tracing rather than silently absorbing.
    pub fn rounded_traced(&self, recorder: &Recorder) -> Vec<(Layer, u32)> {
        self.shares
            .iter()
            .map(|(layer, units)| {
                let rounded = units.round();
                if rounded < 1.0 && recorder.is_enabled() {
                    recorder.emit(
                        kind::PLAN_CLAMP,
                        &[
                            ("clamped_to", 1.0.into()),
                            ("layer", layer.label().into()),
                            ("planned", units.into()),
                        ],
                    );
                    recorder.count("plan.clamps", 1);
                }
                (layer, rounded.max(1.0) as u32)
            })
            .collect()
    }
}

/// The NSGA-II encoding of the share problem.
///
/// `layers`, `unit_prices`, and `upper_bounds` are parallel: index `i`
/// of the genome is the share of `layers[i]`. That order is the
/// determinism contract for the solver — identical problems produce
/// bit-identical fronts at any worker count.
#[derive(Debug, Clone)]
pub struct ShareProblem {
    /// Hourly budget in dollars (Eq. 4's `Bud_t`).
    pub budget: f64,
    /// The layers under analysis, in genome order.
    pub layers: Vec<Layer>,
    /// Hourly unit price per layer (`c_d`), parallel to `layers`.
    pub unit_prices: Vec<f64>,
    /// Dependency constraints (Eq. 5).
    pub constraints: Vec<Constraint>,
    /// Upper bound per layer, parallel to `layers`.
    pub upper_bounds: Vec<f64>,
}

impl ShareProblem {
    /// The worked example of §3.2 / Fig. 4: constraints `5·r_A ≥ r_I`,
    /// `2·r_A ≤ r_I`, `2·r_I ≤ r_S`, 2017 list prices.
    pub fn worked_example(budget: f64) -> ShareProblem {
        let prices = PriceList::default();
        ShareProblem {
            budget,
            layers: Layer::ALL.to_vec(),
            unit_prices: vec![prices.shard_hour, prices.vm_hour, prices.wcu_hour],
            constraints: vec![
                // 5·r_A ≥ r_I  ⇔  r_I − 5·r_A ≤ 0
                Constraint::ratio(1.0, Layer::INGESTION, 5.0, Layer::ANALYTICS),
                // 2·r_A ≤ r_I
                Constraint::ratio(2.0, Layer::ANALYTICS, 1.0, Layer::INGESTION),
                // 2·r_I ≤ r_S
                Constraint::ratio(2.0, Layer::INGESTION, 1.0, Layer::STORAGE),
            ],
            upper_bounds: vec![100.0, 50.0, 5_000.0],
        }
    }

    /// Extend the program with another layer: appends a genome slot with
    /// its unit price and upper bound. The new slot sits after the
    /// existing ones, so extending never perturbs the encoding of the
    /// layers already present.
    pub fn with_layer(mut self, layer: Layer, unit_price: f64, upper_bound: f64) -> ShareProblem {
        assert!(
            !self.layers.contains(&layer),
            "layer {layer} already encoded"
        );
        self.layers.push(layer);
        self.unit_prices.push(unit_price);
        self.upper_bounds.push(upper_bound);
        self
    }

    /// Add a dependency constraint.
    pub fn with_constraint(mut self, constraint: Constraint) -> ShareProblem {
        self.constraints.push(constraint);
        self
    }

    /// Hourly cost of a share vector in genome order.
    pub fn cost(&self, r: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (ri, price) in r.iter().zip(&self.unit_prices) {
            acc += ri * price;
        }
        acc
    }

    /// Hourly cost of a per-layer plan, accumulated in genome order.
    pub fn plan_cost(&self, shares: &ResourceVector) -> f64 {
        let mut acc = 0.0;
        for (layer, price) in self.layers.iter().zip(&self.unit_prices) {
            acc += shares.of(*layer) * price;
        }
        acc
    }

    /// The rounding slack of `constraint` under this problem: integer
    /// rounding moves each variable by at most 0.5, so a violation of up
    /// to `0.5·Σ|coeffs|` is a pure rounding artifact.
    pub fn rounding_slack(&self, constraint: &Constraint) -> f64 {
        let mut sum = 0.0;
        for layer in &self.layers {
            sum += constraint.coeff(*layer).abs();
        }
        0.5 * sum
    }
}

impl Problem for ShareProblem {
    fn n_vars(&self) -> usize {
        self.layers.len()
    }

    fn n_objectives(&self) -> usize {
        self.layers.len()
    }

    fn n_constraints(&self) -> usize {
        1 + self.constraints.len()
    }

    fn bounds(&self, i: usize) -> (f64, f64) {
        (1.0, self.upper_bounds[i])
    }

    fn evaluate(&self, x: &[f64], out: &mut [f64]) {
        // Maximize each share → minimize its negation.
        for (o, xi) in out.iter_mut().zip(x) {
            *o = -xi;
        }
    }

    fn constraints(&self, x: &[f64], out: &mut [f64]) {
        let Some((budget_slot, rest)) = out.split_first_mut() else {
            return;
        };
        *budget_slot = (self.cost(x) - self.budget).max(0.0);
        for (slot, c) in rest.iter_mut().zip(&self.constraints) {
            *slot = c.violation(&self.layers, x);
        }
    }
}

/// A solved share analysis: the deployable plans plus the continuous
/// front they were derived from.
#[derive(Debug, Clone)]
pub struct ShareSolution {
    /// Distinct feasible Pareto plans at integer resolution, sorted by
    /// hourly cost descending.
    pub plans: Vec<ResourceShares>,
    /// The continuous feasible rank-0 `(genes, objectives)` pairs the
    /// plans were rounded from, in front order — the raw material a
    /// replanner archives for warm-starting the next solve.
    pub front: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Drives NSGA-II over a [`ShareProblem`] and post-processes the front
/// into deployable plans.
#[derive(Debug, Clone)]
pub struct ShareAnalyzer {
    problem: ShareProblem,
    config: Nsga2Config,
    workers: Option<usize>,
    recorder: Recorder,
}

impl ShareAnalyzer {
    /// Analyzer with the reference NSGA-II settings (pop 100, gen 250).
    pub fn new(problem: ShareProblem) -> ShareAnalyzer {
        ShareAnalyzer {
            problem,
            config: Nsga2Config::default(),
            workers: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Override the NSGA-II settings.
    pub fn with_config(mut self, config: Nsga2Config) -> ShareAnalyzer {
        self.config = config;
        self
    }

    /// Pin the optimizer's evaluation fan-out to a fixed worker count
    /// instead of the environment's (`FLOWER_THREADS`). Results are
    /// bit-identical either way; pinning makes that property testable.
    pub fn with_workers(mut self, workers: usize) -> ShareAnalyzer {
        self.workers = Some(workers);
        self
    }

    /// Attach an observability recorder; NSGA-II then emits one
    /// progress event per generation (front size + hypervolume).
    pub fn with_recorder(mut self, recorder: Recorder) -> ShareAnalyzer {
        self.recorder = recorder;
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &ShareProblem {
        &self.problem
    }

    /// Run the optimizer and return the distinct feasible Pareto plans at
    /// integer resolution, sorted by hourly cost descending (the
    /// "maximum shares" first). Errors with
    /// [`FlowerError::NoFeasiblePlan`] when nothing feasible was found.
    pub fn solve(&self) -> Result<Vec<ResourceShares>, FlowerError> {
        self.solve_with_seeds(&[]).map(|solution| solution.plans)
    }

    /// [`ShareAnalyzer::solve`] with a warm-start seed population (see
    /// [`Nsga2::with_seed_genes`]); also returns the continuous front so
    /// the caller can archive it for the next warm start. An empty seed
    /// set is exactly the cold [`ShareAnalyzer::solve`] path.
    pub fn solve_with_seeds(&self, seeds: &[Vec<f64>]) -> Result<ShareSolution, FlowerError> {
        let mut optimizer =
            Nsga2::new(self.problem.clone(), self.config).with_recorder(self.recorder.clone());
        if let Some(workers) = self.workers {
            optimizer = optimizer.with_workers(workers);
        }
        if !seeds.is_empty() {
            optimizer = optimizer.with_seed_genes(seeds.to_vec());
        }
        let result = optimizer.run();
        let layers = &self.problem.layers;
        let mut seen: Vec<Vec<u32>> = Vec::new();
        let mut plans = Vec::new();
        let mut front: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        for ind in result.pareto_front() {
            if !ind.is_feasible() {
                continue;
            }
            if ind.genes.len() != layers.len() {
                continue; // foreign individual with the wrong arity
            }
            front.push((ind.genes.clone(), ind.objectives.clone()));
            let continuous = ResourceShares::new(
                layers
                    .iter()
                    .copied()
                    .zip(ind.genes.iter().copied())
                    .collect(),
                self.problem.cost(&ind.genes),
            );
            let key: Vec<u32> = continuous
                .rounded_traced(&self.recorder)
                .into_iter()
                .map(|(_, units)| units)
                .collect();
            // The rounded plan must stay within budget and (near-)satisfy
            // every dependency constraint — integer rounding can push a
            // feasible continuous plan across a ratio constraint. Since
            // rounding moves each variable by at most 0.5, a violation of
            // up to `0.5·Σ|coeffs|` is a pure rounding artifact and is
            // tolerated; anything larger means the continuous plan was
            // near-infeasible and is dropped.
            let rounded_shares: ResourceVector = layers
                .iter()
                .zip(&key)
                .map(|(&layer, &units)| (layer, f64::from(units)))
                .collect();
            let rounded: Vec<f64> = layers.iter().map(|&l| rounded_shares.of(l)).collect();
            let rounded_cost = self.problem.cost(&rounded);
            if rounded_cost > self.problem.budget + 1e-9 {
                continue;
            }
            if self
                .problem
                .constraints
                .iter()
                .any(|c| c.violation(layers, &rounded) > self.problem.rounding_slack(c) + 1e-9)
            {
                continue;
            }
            if !seen.contains(&key) {
                seen.push(key);
                plans.push(ResourceShares::new(rounded_shares, rounded_cost));
            }
        }
        if plans.is_empty() {
            return Err(FlowerError::NoFeasiblePlan);
        }
        plans.sort_by(|a, b| b.hourly_cost.total_cmp(&a.hourly_cost));
        Ok(ShareSolution { plans, front })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(budget: f64) -> ShareAnalyzer {
        ShareAnalyzer::new(ShareProblem::worked_example(budget)).with_config(Nsga2Config {
            population: 80,
            generations: 120,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn worked_example_produces_feasible_front() {
        let plans = analyzer(1.0).solve().unwrap();
        assert!(!plans.is_empty());
        let p = ShareProblem::worked_example(1.0);
        for plan in &plans {
            let r = [plan.shards(), plan.vms(), plan.wcu()];
            assert!(p.cost(&r) <= 1.0 + 1e-9, "over budget: {plan:?}");
            for c in &p.constraints {
                // Integer plans may carry up to half a unit of rounding
                // slack per variable (see `ShareAnalyzer::solve`).
                assert!(
                    c.violation(&p.layers, &r) <= p.rounding_slack(c) + 1e-9,
                    "constraint '{}' violated by {plan:?}",
                    c.label
                );
            }
        }
    }

    #[test]
    fn front_is_small_and_distinct() {
        let plans = analyzer(1.0).solve().unwrap();
        // The paper reports six Pareto-optimal plans for its instance; at
        // integer resolution ours must be a similar handful, all unique.
        assert!(plans.len() >= 2, "front collapsed: {}", plans.len());
        assert!(plans.len() <= 60, "front exploded: {}", plans.len());
        let mut keys: Vec<_> = plans.iter().map(ResourceShares::rounded).collect();
        keys.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        keys.dedup();
        assert_eq!(keys.len(), plans.len(), "duplicate plans");
    }

    #[test]
    fn budget_binds_the_best_plans() {
        let plans = analyzer(1.0).solve().unwrap();
        // The costliest plan should spend most of the budget: these are
        // *maximum* shares.
        assert!(
            plans[0].hourly_cost > 0.8,
            "best plan spends {}",
            plans[0].hourly_cost
        );
    }

    #[test]
    fn bigger_budget_buys_bigger_shares() {
        let small = analyzer(0.5).solve().unwrap();
        let large = analyzer(2.0).solve().unwrap();
        let max_vms =
            |plans: &[ResourceShares]| plans.iter().map(ResourceShares::vms).fold(0.0, f64::max);
        assert!(max_vms(&large) > max_vms(&small));
    }

    #[test]
    fn impossible_budget_errors() {
        // Cheapest possible plan is (1, 1, 2) ≈ $0.116/h; a lower budget
        // must be infeasible.
        let err = analyzer(0.05).solve().unwrap_err();
        assert_eq!(err, FlowerError::NoFeasiblePlan);
    }

    #[test]
    fn ratio_constraint_violation() {
        // 2·r_A ≤ r_I
        let layers = Layer::ALL;
        let c = Constraint::ratio(2.0, Layer::ANALYTICS, 1.0, Layer::INGESTION);
        assert_eq!(
            c.violation(&layers, &[10.0, 5.0, 0.0]),
            0.0,
            "2·5 = 10 ≤ 10"
        );
        assert!(
            (c.violation(&layers, &[10.0, 6.0, 0.0]) - 2.0).abs() < 1e-12,
            "2·6 − 10 = 2"
        );
        assert!(c.label.contains("r_A"));
        assert_eq!(c.coeff(Layer::ANALYTICS), 2.0);
        assert_eq!(c.coeff(Layer::STORAGE), 0.0);
    }

    #[test]
    fn equality_band_constraints() {
        // r_A = 0.5·r_I + 1 ± 0.5
        let layers = Layer::ALL;
        let [up, down] =
            Constraint::equality_band(Layer::ANALYTICS, Layer::INGESTION, 0.5, 1.0, 0.5);
        // Inside the band: r_I = 10 → r_A ∈ [5.5, 6.5].
        assert_eq!(up.violation(&layers, &[10.0, 6.0, 0.0]), 0.0);
        assert_eq!(down.violation(&layers, &[10.0, 6.0, 0.0]), 0.0);
        // Above the band.
        assert!(up.violation(&layers, &[10.0, 7.0, 0.0]) > 0.0);
        assert_eq!(down.violation(&layers, &[10.0, 7.0, 0.0]), 0.0);
        // Below the band.
        assert_eq!(up.violation(&layers, &[10.0, 5.0, 0.0]), 0.0);
        assert!(down.violation(&layers, &[10.0, 5.0, 0.0]) > 0.0);
    }

    #[test]
    fn shares_accessors() {
        let s = ResourceShares::new(
            ResourceVector::from_pairs([
                (Layer::INGESTION, 4.4),
                (Layer::ANALYTICS, 2.6),
                (Layer::STORAGE, 100.2),
            ]),
            0.5,
        );
        assert_eq!(s.of(Layer::INGESTION), 4.4);
        assert_eq!(s.vms(), 2.6);
        assert_eq!(s.wcu(), 100.2);
        assert_eq!(s.of(Layer::CACHE), 0.0);
        assert_eq!(
            s.rounded(),
            vec![
                (Layer::INGESTION, 4),
                (Layer::ANALYTICS, 3),
                (Layer::STORAGE, 100)
            ]
        );
    }

    #[test]
    fn sub_minimum_shares_trace_the_clamp() {
        let s = ResourceShares::new(
            ResourceVector::from_pairs([(Layer::INGESTION, 0.3), (Layer::ANALYTICS, 2.0)]),
            0.2,
        );
        // Silent path still clamps...
        assert_eq!(
            s.rounded(),
            vec![(Layer::INGESTION, 1), (Layer::ANALYTICS, 2)]
        );
        // ...and the traced path records what was clamped.
        let recorder = Recorder::with_capacity(16);
        let rounded = s.rounded_traced(&recorder);
        assert_eq!(rounded, s.rounded());
        let events = recorder.events();
        assert_eq!(events.len(), 1, "one clamp for the one sub-minimum share");
        assert_eq!(events[0].kind, kind::PLAN_CLAMP);
        assert_eq!(events[0].str("layer"), Some("ingestion"));
        assert_eq!(events[0].f64("planned"), Some(0.3));
        assert_eq!(events[0].f64("clamped_to"), Some(1.0));
        assert_eq!(recorder.counter("plan.clamps"), 1);
    }

    #[test]
    fn extended_problem_appends_a_genome_slot() {
        let p = ShareProblem::worked_example(1.0)
            .with_layer(Layer::CACHE, 0.09, 20.0)
            .with_constraint(Constraint::ratio(1.0, Layer::CACHE, 1.0, Layer::ANALYTICS));
        assert_eq!(p.n_vars(), 4);
        assert_eq!(p.n_objectives(), 4);
        assert_eq!(p.bounds(3), (1.0, 20.0));
        // The paper layers keep their genome slots.
        assert_eq!(p.layers[..3], Layer::ALL);
        // Cost picks up the fourth term.
        let base = ShareProblem::worked_example(1.0).cost(&[1.0, 1.0, 2.0]);
        assert!((p.cost(&[1.0, 1.0, 2.0, 2.0]) - (base + 2.0 * 0.09)).abs() < 1e-12);
    }

    #[test]
    fn plan_cost_matches_genome_cost() {
        let p = ShareProblem::worked_example(1.0);
        let genes = [4.0, 2.0, 9.0];
        let shares: ResourceVector = p.layers.iter().copied().zip(genes).collect();
        assert_eq!(p.plan_cost(&shares).to_bits(), p.cost(&genes).to_bits());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = analyzer(1.0).solve().unwrap();
        let b = analyzer(1.0).solve().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn share_fronts_bit_identical_across_worker_counts() {
        // The real worked-example problem (not a replica): same seed ⇒
        // bit-identical population at 1, 2, and 8 workers.
        let run = |workers: usize| {
            let result = Nsga2::new(
                ShareProblem::worked_example(0.75),
                Nsga2Config {
                    population: 40,
                    generations: 30,
                    seed: 7,
                    ..Default::default()
                },
            )
            .with_workers(workers)
            .run();
            result
                .population
                .iter()
                .map(|i| {
                    (
                        i.genes.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                        i.objectives.iter().map(|o| o.to_bits()).collect::<Vec<_>>(),
                        i.rank,
                    )
                })
                .collect::<Vec<_>>()
        };
        let baseline = run(1);
        assert_eq!(run(2), baseline, "diverged at 2 workers");
        assert_eq!(run(8), baseline, "diverged at 8 workers");
    }
}
