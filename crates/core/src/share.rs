//! Resource Share Analysis — paper §3.2.
//!
//! "Given the budget and estimated dependencies between workloads, what
//! would be the maximum share of resources for each layer?" Flower casts
//! this as the multi-objective program of Eqs. 3–5:
//!
//! ```text
//! max (r_I, r_A, r_S)
//! s.t.  Σ_d r_I·c_d + Σ_d r_A·c_d + Σ_d r_S·c_d ≤ Bud_t      (budget)
//!       r_L1 = β0 + β1·r_L2 + ε                              (dependencies)
//! ```
//!
//! and searches the plan space with NSGA-II. This module provides the
//! problem encoding ([`ShareProblem`]), the analyzer driving the solver
//! ([`ShareAnalyzer`]), and the worked example of the paper's Fig. 4
//! (constraints `5·r_A ≥ r_I`, `2·r_A ≤ r_I`, `2·r_I ≤ r_S`), whose
//! distinct integer-resolution Pareto plans reproduce the "six Pareto
//! optimal solutions" the demo reports.

use flower_cloud::PriceList;
use flower_nsga2::{Nsga2, Nsga2Config, Problem};
use flower_obs::Recorder;

use crate::error::FlowerError;
use crate::flow::Layer;

/// A linear inequality over the share vector `(r_I, r_A, r_S)`:
/// `coeffs · r + constant ≤ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficients on `(r_I, r_A, r_S)`.
    pub coeffs: [f64; 3],
    /// Constant term.
    pub constant: f64,
    /// Human-readable form for reports.
    pub label: String,
}

impl Constraint {
    /// `lhs_coeff·r[lhs] ≤ rhs_coeff·r[rhs]`, e.g. `2·r_A ≤ r_I`.
    pub fn ratio(lhs_coeff: f64, lhs: Layer, rhs_coeff: f64, rhs: Layer) -> Constraint {
        let mut coeffs = [0.0; 3];
        coeffs[layer_index(lhs)] += lhs_coeff;
        coeffs[layer_index(rhs)] -= rhs_coeff;
        Constraint {
            coeffs,
            constant: 0.0,
            label: format!(
                "{lhs_coeff}*r_{} <= {rhs_coeff}*r_{}",
                layer_symbol(lhs),
                layer_symbol(rhs)
            ),
        }
    }

    /// A regression-learned dependency (Eq. 5) as a banded equality:
    /// `|r[target] − (β0 + β1·r[source])| ≤ tolerance`, expressed as two
    /// inequalities. Returns both.
    pub fn equality_band(
        target: Layer,
        source: Layer,
        slope: f64,
        intercept: f64,
        tolerance: f64,
    ) -> [Constraint; 2] {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let t = layer_index(target);
        let s = layer_index(source);
        // r_t − β1·r_s − β0 − tol ≤ 0
        let mut up = [0.0; 3];
        up[t] += 1.0;
        up[s] -= slope;
        // −r_t + β1·r_s + β0 − tol ≤ 0
        let mut down = [0.0; 3];
        down[t] -= 1.0;
        down[s] += slope;
        [
            Constraint {
                coeffs: up,
                constant: -intercept - tolerance,
                label: format!(
                    "r_{} <= {slope}*r_{} + {intercept} + {tolerance}",
                    layer_symbol(target),
                    layer_symbol(source)
                ),
            },
            Constraint {
                coeffs: down,
                constant: intercept - tolerance,
                label: format!(
                    "r_{} >= {slope}*r_{} + {intercept} - {tolerance}",
                    layer_symbol(target),
                    layer_symbol(source)
                ),
            },
        ]
    }

    /// Violation magnitude at the share vector `r` (0 when satisfied).
    pub fn violation(&self, r: &[f64; 3]) -> f64 {
        let [c0, c1, c2] = self.coeffs;
        let [r0, r1, r2] = *r;
        (c0 * r0 + c1 * r1 + c2 * r2 + self.constant).max(0.0)
    }
}

fn layer_index(layer: Layer) -> usize {
    match layer {
        Layer::Ingestion => 0,
        Layer::Analytics => 1,
        Layer::Storage => 2,
    }
}

fn layer_symbol(layer: Layer) -> &'static str {
    match layer {
        Layer::Ingestion => "I",
        Layer::Analytics => "A",
        Layer::Storage => "S",
    }
}

/// One provisioning plan: the resource shares of the three layers.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceShares {
    /// Kinesis shards (ingestion).
    pub shards: f64,
    /// Storm VMs (analytics).
    pub vms: f64,
    /// DynamoDB write capacity units (storage).
    pub wcu: f64,
    /// Hourly cost of the plan in dollars.
    pub hourly_cost: f64,
}

impl ResourceShares {
    /// The share of `layer`.
    pub fn of(&self, layer: Layer) -> f64 {
        match layer {
            Layer::Ingestion => self.shards,
            Layer::Analytics => self.vms,
            Layer::Storage => self.wcu,
        }
    }

    /// Round to deployable integer units.
    pub fn rounded(&self) -> (u32, u32, u32) {
        (
            self.shards.round().max(1.0) as u32,
            self.vms.round().max(1.0) as u32,
            self.wcu.round().max(1.0) as u32,
        )
    }
}

/// The NSGA-II encoding of the share problem.
#[derive(Debug, Clone)]
pub struct ShareProblem {
    /// Hourly budget in dollars (Eq. 4's `Bud_t`).
    pub budget: f64,
    /// Unit prices (`c_d`).
    pub prices: PriceList,
    /// Dependency constraints (Eq. 5).
    pub constraints: Vec<Constraint>,
    /// Upper bound per layer `(r_I, r_A, r_S)`.
    pub upper_bounds: [f64; 3],
}

impl ShareProblem {
    /// The worked example of §3.2 / Fig. 4: constraints `5·r_A ≥ r_I`,
    /// `2·r_A ≤ r_I`, `2·r_I ≤ r_S`, 2017 list prices.
    pub fn worked_example(budget: f64) -> ShareProblem {
        ShareProblem {
            budget,
            prices: PriceList::default(),
            constraints: vec![
                // 5·r_A ≥ r_I  ⇔  r_I − 5·r_A ≤ 0
                Constraint::ratio(1.0, Layer::Ingestion, 5.0, Layer::Analytics),
                // 2·r_A ≤ r_I
                Constraint::ratio(2.0, Layer::Analytics, 1.0, Layer::Ingestion),
                // 2·r_I ≤ r_S
                Constraint::ratio(2.0, Layer::Ingestion, 1.0, Layer::Storage),
            ],
            upper_bounds: [100.0, 50.0, 5_000.0],
        }
    }

    /// Hourly cost of a share vector.
    pub fn cost(&self, r: &[f64; 3]) -> f64 {
        let [shards, vms, wcu] = *r;
        self.prices.hourly_cost(shards, vms, wcu, 0.0)
    }
}

impl Problem for ShareProblem {
    fn n_vars(&self) -> usize {
        3
    }

    fn n_objectives(&self) -> usize {
        3
    }

    fn n_constraints(&self) -> usize {
        1 + self.constraints.len()
    }

    fn bounds(&self, i: usize) -> (f64, f64) {
        (1.0, self.upper_bounds[i])
    }

    fn evaluate(&self, x: &[f64], out: &mut [f64]) {
        // Maximize each share → minimize its negation.
        for (o, xi) in out.iter_mut().zip(x) {
            *o = -xi;
        }
    }

    fn constraints(&self, x: &[f64], out: &mut [f64]) {
        let r = match *x {
            [a, b, c] => [a, b, c],
            _ => unreachable!("the optimizer always passes n_vars() == 3 genes"),
        };
        let Some((budget_slot, rest)) = out.split_first_mut() else {
            return;
        };
        *budget_slot = (self.cost(&r) - self.budget).max(0.0);
        for (slot, c) in rest.iter_mut().zip(&self.constraints) {
            *slot = c.violation(&r);
        }
    }
}

/// Drives NSGA-II over a [`ShareProblem`] and post-processes the front
/// into deployable plans.
#[derive(Debug, Clone)]
pub struct ShareAnalyzer {
    problem: ShareProblem,
    config: Nsga2Config,
    workers: Option<usize>,
    recorder: Recorder,
}

impl ShareAnalyzer {
    /// Analyzer with the reference NSGA-II settings (pop 100, gen 250).
    pub fn new(problem: ShareProblem) -> ShareAnalyzer {
        ShareAnalyzer {
            problem,
            config: Nsga2Config::default(),
            workers: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Override the NSGA-II settings.
    pub fn with_config(mut self, config: Nsga2Config) -> ShareAnalyzer {
        self.config = config;
        self
    }

    /// Pin the optimizer's evaluation fan-out to a fixed worker count
    /// instead of the environment's (`FLOWER_THREADS`). Results are
    /// bit-identical either way; pinning makes that property testable.
    pub fn with_workers(mut self, workers: usize) -> ShareAnalyzer {
        self.workers = Some(workers);
        self
    }

    /// Attach an observability recorder; NSGA-II then emits one
    /// progress event per generation (front size + hypervolume).
    pub fn with_recorder(mut self, recorder: Recorder) -> ShareAnalyzer {
        self.recorder = recorder;
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &ShareProblem {
        &self.problem
    }

    /// Run the optimizer and return the distinct feasible Pareto plans at
    /// integer resolution, sorted by hourly cost descending (the
    /// "maximum shares" first). Errors with
    /// [`FlowerError::NoFeasiblePlan`] when nothing feasible was found.
    pub fn solve(&self) -> Result<Vec<ResourceShares>, FlowerError> {
        let mut optimizer =
            Nsga2::new(self.problem.clone(), self.config).with_recorder(self.recorder.clone());
        if let Some(workers) = self.workers {
            optimizer = optimizer.with_workers(workers);
        }
        let result = optimizer.run();
        let mut seen: Vec<(u32, u32, u32)> = Vec::new();
        let mut plans = Vec::new();
        for ind in result.pareto_front() {
            if !ind.is_feasible() {
                continue;
            }
            let [shards, vms, wcu] = ind.genes[..] else {
                continue; // foreign individual with the wrong arity
            };
            let shares = ResourceShares {
                shards,
                vms,
                wcu,
                hourly_cost: self.problem.cost(&[shards, vms, wcu]),
            };
            let key = shares.rounded();
            // The rounded plan must stay within budget and (near-)satisfy
            // every dependency constraint — integer rounding can push a
            // feasible continuous plan across a ratio constraint. Since
            // rounding moves each variable by at most 0.5, a violation of
            // up to `0.5·Σ|coeffs|` is a pure rounding artifact and is
            // tolerated; anything larger means the continuous plan was
            // near-infeasible and is dropped.
            let rounded = [key.0 as f64, key.1 as f64, key.2 as f64];
            let rounded_cost = self.problem.cost(&rounded);
            if rounded_cost > self.problem.budget + 1e-9 {
                continue;
            }
            if self.problem.constraints.iter().any(|c| {
                let rounding_slack = 0.5 * c.coeffs.iter().map(|v| v.abs()).sum::<f64>();
                c.violation(&rounded) > rounding_slack + 1e-9
            }) {
                continue;
            }
            if !seen.contains(&key) {
                seen.push(key);
                plans.push(ResourceShares {
                    shards: key.0 as f64,
                    vms: key.1 as f64,
                    wcu: key.2 as f64,
                    hourly_cost: rounded_cost,
                });
            }
        }
        if plans.is_empty() {
            return Err(FlowerError::NoFeasiblePlan);
        }
        plans.sort_by(|a, b| b.hourly_cost.total_cmp(&a.hourly_cost));
        Ok(plans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(budget: f64) -> ShareAnalyzer {
        ShareAnalyzer::new(ShareProblem::worked_example(budget)).with_config(Nsga2Config {
            population: 80,
            generations: 120,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn worked_example_produces_feasible_front() {
        let plans = analyzer(1.0).solve().unwrap();
        assert!(!plans.is_empty());
        let p = ShareProblem::worked_example(1.0);
        for plan in &plans {
            let r = [plan.shards, plan.vms, plan.wcu];
            assert!(p.cost(&r) <= 1.0 + 1e-9, "over budget: {plan:?}");
            for c in &p.constraints {
                // Integer plans may carry up to half a unit of rounding
                // slack per variable (see `ShareAnalyzer::solve`).
                let slack = 0.5 * c.coeffs.iter().map(|v| v.abs()).sum::<f64>();
                assert!(
                    c.violation(&r) <= slack + 1e-9,
                    "constraint '{}' violated by {plan:?}",
                    c.label
                );
            }
        }
    }

    #[test]
    fn front_is_small_and_distinct() {
        let plans = analyzer(1.0).solve().unwrap();
        // The paper reports six Pareto-optimal plans for its instance; at
        // integer resolution ours must be a similar handful, all unique.
        assert!(plans.len() >= 2, "front collapsed: {}", plans.len());
        assert!(plans.len() <= 60, "front exploded: {}", plans.len());
        let mut keys: Vec<_> = plans.iter().map(ResourceShares::rounded).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), plans.len(), "duplicate plans");
    }

    #[test]
    fn budget_binds_the_best_plans() {
        let plans = analyzer(1.0).solve().unwrap();
        // The costliest plan should spend most of the budget: these are
        // *maximum* shares.
        assert!(
            plans[0].hourly_cost > 0.8,
            "best plan spends {}",
            plans[0].hourly_cost
        );
    }

    #[test]
    fn bigger_budget_buys_bigger_shares() {
        let small = analyzer(0.5).solve().unwrap();
        let large = analyzer(2.0).solve().unwrap();
        let max_vms = |plans: &[ResourceShares]| plans.iter().map(|p| p.vms).fold(0.0, f64::max);
        assert!(max_vms(&large) > max_vms(&small));
    }

    #[test]
    fn impossible_budget_errors() {
        // Cheapest possible plan is (1, 1, 2) ≈ $0.116/h; a lower budget
        // must be infeasible.
        let err = analyzer(0.05).solve().unwrap_err();
        assert_eq!(err, FlowerError::NoFeasiblePlan);
    }

    #[test]
    fn ratio_constraint_violation() {
        // 2·r_A ≤ r_I
        let c = Constraint::ratio(2.0, Layer::Analytics, 1.0, Layer::Ingestion);
        assert_eq!(c.violation(&[10.0, 5.0, 0.0]), 0.0, "2·5 = 10 ≤ 10");
        assert!(
            (c.violation(&[10.0, 6.0, 0.0]) - 2.0).abs() < 1e-12,
            "2·6 − 10 = 2"
        );
        assert!(c.label.contains("r_A"));
    }

    #[test]
    fn equality_band_constraints() {
        // r_A = 0.5·r_I + 1 ± 0.5
        let [up, down] =
            Constraint::equality_band(Layer::Analytics, Layer::Ingestion, 0.5, 1.0, 0.5);
        // Inside the band: r_I = 10 → r_A ∈ [5.5, 6.5].
        assert_eq!(up.violation(&[10.0, 6.0, 0.0]), 0.0);
        assert_eq!(down.violation(&[10.0, 6.0, 0.0]), 0.0);
        // Above the band.
        assert!(up.violation(&[10.0, 7.0, 0.0]) > 0.0);
        assert_eq!(down.violation(&[10.0, 7.0, 0.0]), 0.0);
        // Below the band.
        assert_eq!(up.violation(&[10.0, 5.0, 0.0]), 0.0);
        assert!(down.violation(&[10.0, 5.0, 0.0]) > 0.0);
    }

    #[test]
    fn shares_accessors() {
        let s = ResourceShares {
            shards: 4.4,
            vms: 2.6,
            wcu: 100.2,
            hourly_cost: 0.5,
        };
        assert_eq!(s.of(Layer::Ingestion), 4.4);
        assert_eq!(s.of(Layer::Analytics), 2.6);
        assert_eq!(s.of(Layer::Storage), 100.2);
        assert_eq!(s.rounded(), (4, 3, 100));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = analyzer(1.0).solve().unwrap();
        let b = analyzer(1.0).solve().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn share_fronts_bit_identical_across_worker_counts() {
        // The real worked-example problem (not a replica): same seed ⇒
        // bit-identical population at 1, 2, and 8 workers.
        let run = |workers: usize| {
            let result = Nsga2::new(
                ShareProblem::worked_example(0.75),
                Nsga2Config {
                    population: 40,
                    generations: 30,
                    seed: 7,
                    ..Default::default()
                },
            )
            .with_workers(workers)
            .run();
            result
                .population
                .iter()
                .map(|i| {
                    (
                        i.genes.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                        i.objectives.iter().map(|o| o.to_bits()).collect::<Vec<_>>(),
                        i.rank,
                    )
                })
                .collect::<Vec<_>>()
        };
        let baseline = run(1);
        assert_eq!(run(2), baseline, "diverged at 2 workers");
        assert_eq!(run(8), baseline, "diverged at 8 workers");
    }
}
