//! The Flow Configuration Wizard as a file format.
//!
//! The demo's step 2 (§4) walks the attendee through "a wizard to
//! configure the controllers with information such as resource name
//! (e.g. table name in DynamoDB), desired reference value, and monitoring
//! period". This module captures the wizard's full outcome — flow,
//! workload, controllers, monitoring period, seed — as a
//! [`WizardConfig`] that round-trips through a simple `key = value`
//! text format (INI-like, hand-parsed so the dependency set stays small)
//! and materializes into a runnable [`ElasticityManager`].
//!
//! ```text
//! # flower wizard config
//! flow.name        = clickstream-analytics
//! ingestion.name   = clicks
//! ingestion.shards = 2
//! analytics.name   = counter
//! analytics.vms    = 2
//! storage.name     = aggregates
//! storage.wcu      = 100
//! workload.scenario = diurnal
//! workload.rate    = 1500
//! controller.ingestion = adaptive:70
//! controller.analytics = adaptive:60
//! controller.storage   = adaptive-capacity:70
//! monitoring.period_secs = 30
//! seed = 7
//! ```

use std::collections::BTreeMap;

use flower_sim::SimDuration;
use flower_workload::Scenario;

use crate::config::ControllerSpec;
use crate::elasticity::{ElasticityManager, Workload};
use crate::error::FlowerError;
use crate::flow::{FlowBuilder, FlowSpec, Layer, Platform};

/// The wizard's complete outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WizardConfig {
    /// The flow definition.
    pub flow: FlowSpec,
    /// Workload scenario name (see [`Scenario`]).
    pub scenario: Scenario,
    /// Base arrival rate in records/second.
    pub rate: f64,
    /// Controller per layer.
    pub controllers: [ControllerSpec; 3],
    /// Monitoring period in seconds.
    pub period_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WizardConfig {
    /// The demo's default session.
    pub fn demo_default() -> WizardConfig {
        WizardConfig {
            flow: crate::flow::clickstream_flow(),
            scenario: Scenario::Diurnal,
            rate: 1_500.0,
            controllers: [
                ControllerSpec::adaptive(70.0),
                ControllerSpec::adaptive(60.0),
                ControllerSpec::adaptive_for_capacity(70.0),
            ],
            period_secs: 30,
            seed: 0,
        }
    }

    /// Serialize to the `key = value` wizard format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# flower wizard config\n");
        out.push_str(&format!("flow.name = {}\n", self.flow.name));
        match &self.flow.ingestion {
            Platform::Kinesis { name, shards } => {
                out.push_str(&format!("ingestion.name = {name}\n"));
                out.push_str(&format!("ingestion.shards = {shards}\n"));
            }
            _ => unreachable!("validated flow"),
        }
        match &self.flow.analytics {
            Platform::Storm { name, vms } => {
                out.push_str(&format!("analytics.name = {name}\n"));
                out.push_str(&format!("analytics.vms = {vms}\n"));
            }
            _ => unreachable!("validated flow"),
        }
        match &self.flow.storage {
            Platform::Dynamo { name, wcu } => {
                out.push_str(&format!("storage.name = {name}\n"));
                out.push_str(&format!("storage.wcu = {wcu}\n"));
            }
            _ => unreachable!("validated flow"),
        }
        out.push_str(&format!("workload.scenario = {}\n", self.scenario.name()));
        out.push_str(&format!("workload.rate = {}\n", self.rate));
        for (layer, spec) in Layer::ALL.into_iter().zip(&self.controllers) {
            out.push_str(&format!(
                "controller.{} = {}\n",
                layer.label(),
                spec_to_text(spec)
            ));
        }
        out.push_str(&format!("monitoring.period_secs = {}\n", self.period_secs));
        out.push_str(&format!("seed = {}\n", self.seed));
        out
    }

    /// Parse the wizard format. Unknown keys are rejected (a typo in a
    /// config must not be silently ignored); missing keys fall back to
    /// the demo defaults.
    pub fn from_text(text: &str) -> Result<WizardConfig, FlowerError> {
        let mut map: BTreeMap<String, String> = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(FlowerError::InvalidConfig(format!(
                    "line {}: expected 'key = value', got '{line}'",
                    lineno + 1
                )));
            };
            map.insert(key.trim().to_owned(), value.trim().to_owned());
        }

        const KNOWN: [&str; 13] = [
            "flow.name",
            "ingestion.name",
            "ingestion.shards",
            "analytics.name",
            "analytics.vms",
            "storage.name",
            "storage.wcu",
            "workload.scenario",
            "workload.rate",
            "controller.ingestion",
            "controller.analytics",
            "controller.storage",
            "monitoring.period_secs",
        ];
        for key in map.keys() {
            if key != "seed" && !KNOWN.contains(&key.as_str()) {
                return Err(FlowerError::InvalidConfig(format!("unknown key '{key}'")));
            }
        }

        let defaults = WizardConfig::demo_default();
        let get = |k: &str| map.get(k).map(String::as_str);
        let parse_u64 = |k: &str, d: u64| -> Result<u64, FlowerError> {
            match get(k) {
                None => Ok(d),
                Some(v) => v.parse().map_err(|_| {
                    FlowerError::InvalidConfig(format!("{k}: '{v}' is not an integer"))
                }),
            }
        };
        let parse_f64 = |k: &str, d: f64| -> Result<f64, FlowerError> {
            match get(k) {
                None => Ok(d),
                Some(v) => v
                    .parse()
                    .map_err(|_| FlowerError::InvalidConfig(format!("{k}: '{v}' is not a number"))),
            }
        };

        let flow = FlowBuilder::new(get("flow.name").unwrap_or(&defaults.flow.name))
            .ingestion(Platform::kinesis(
                get("ingestion.name").unwrap_or("clicks"),
                parse_u64("ingestion.shards", 2)? as u32,
            ))
            .analytics(Platform::storm(
                get("analytics.name").unwrap_or("counter"),
                parse_u64("analytics.vms", 2)? as u32,
            ))
            .storage(Platform::dynamo(
                get("storage.name").unwrap_or("aggregates"),
                parse_f64("storage.wcu", 100.0)?,
            ))
            .build()?;

        let scenario = match get("workload.scenario") {
            None => defaults.scenario,
            Some(name) => Scenario::by_name(name).ok_or_else(|| {
                FlowerError::InvalidConfig(format!("unknown workload scenario '{name}'"))
            })?,
        };

        let controller_for =
            |key: &str, d: &ControllerSpec| -> Result<ControllerSpec, FlowerError> {
                match get(key) {
                    None => Ok(d.clone()),
                    Some(v) => spec_from_text(v),
                }
            };

        Ok(WizardConfig {
            flow,
            scenario,
            rate: parse_f64("workload.rate", defaults.rate)?,
            controllers: {
                let [d_ingest, d_analytics, d_storage] = &defaults.controllers;
                [
                    controller_for("controller.ingestion", d_ingest)?,
                    controller_for("controller.analytics", d_analytics)?,
                    controller_for("controller.storage", d_storage)?,
                ]
            },
            period_secs: parse_u64("monitoring.period_secs", defaults.period_secs)?,
            seed: parse_u64("seed", defaults.seed)?,
        })
    }

    /// Materialize a runnable elasticity manager from the wizard outcome.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowerError::InvalidConfig`] from
    /// [`crate::elasticity::ElasticityManagerBuilder::build`]; a parsed
    /// wizard config always
    /// carries a workload, so this only fires on hand-constructed configs.
    pub fn build_manager(&self) -> Result<ElasticityManager, FlowerError> {
        let mut builder = ElasticityManager::builder(self.flow.clone())
            .workload(Workload::custom(self.scenario.build(self.rate, self.seed)))
            .monitoring_period(SimDuration::from_secs(self.period_secs))
            .seed(self.seed);
        for (layer, spec) in Layer::ALL.into_iter().zip(self.controllers.clone()) {
            builder = builder.controller(layer, spec);
        }
        builder.build()
    }
}

/// `kind:setpoint` controller shorthand used in the wizard format.
fn spec_to_text(spec: &ControllerSpec) -> String {
    match spec {
        ControllerSpec::Adaptive {
            setpoint, l_max, ..
        } if *l_max > 0.5 => {
            format!("adaptive-capacity:{setpoint}")
        }
        ControllerSpec::Adaptive { setpoint, .. } => format!("adaptive:{setpoint}"),
        ControllerSpec::FixedGain { setpoint, .. } => format!("fixed-gain:{setpoint}"),
        ControllerSpec::QuasiAdaptive { setpoint, .. } => {
            format!("quasi-adaptive:{setpoint}")
        }
        // `rule_based(sp)` sets `high = sp + 15`; invert that so the
        // rendered text re-parses to an identical spec.
        ControllerSpec::RuleBased { high, .. } => format!("rule-based:{}", high - 15.0),
        ControllerSpec::Static => "static".to_owned(),
    }
}

fn spec_from_text(text: &str) -> Result<ControllerSpec, FlowerError> {
    if text == "static" {
        return Ok(ControllerSpec::Static);
    }
    let (kind, setpoint) = text.split_once(':').ok_or_else(|| {
        FlowerError::InvalidConfig(format!(
            "controller '{text}' must be 'kind:setpoint' or 'static'"
        ))
    })?;
    let setpoint: f64 = setpoint.trim().parse().map_err(|_| {
        FlowerError::InvalidConfig(format!("controller setpoint '{setpoint}' is not a number"))
    })?;
    match kind.trim() {
        "adaptive" => Ok(ControllerSpec::adaptive(setpoint)),
        "adaptive-capacity" => Ok(ControllerSpec::adaptive_for_capacity(setpoint)),
        "fixed-gain" => Ok(ControllerSpec::fixed_gain(setpoint)),
        "quasi-adaptive" => Ok(ControllerSpec::quasi_adaptive(setpoint)),
        "rule-based" => Ok(ControllerSpec::rule_based(setpoint)),
        other => Err(FlowerError::InvalidConfig(format!(
            "unknown controller kind '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_text() {
        let config = WizardConfig::demo_default();
        let text = config.to_text();
        let parsed = WizardConfig::from_text(&text).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn sparse_config_fills_defaults() {
        let parsed = WizardConfig::from_text("workload.rate = 900\nseed = 5\n").unwrap();
        assert_eq!(parsed.rate, 900.0);
        assert_eq!(parsed.seed, 5);
        assert_eq!(parsed.scenario, Scenario::Diurnal);
        assert_eq!(parsed.flow.name, "clickstream-analytics");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# hello\n\n  # indented comment\nseed = 3\n";
        assert_eq!(WizardConfig::from_text(text).unwrap().seed, 3);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = WizardConfig::from_text("workload.rte = 900\n").unwrap_err();
        assert!(matches!(err, FlowerError::InvalidConfig(ref m) if m.contains("workload.rte")));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let err = WizardConfig::from_text("just some words\n").unwrap_err();
        assert!(matches!(err, FlowerError::InvalidConfig(ref m) if m.contains("line 1")));
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(WizardConfig::from_text("seed = soon\n").is_err());
        assert!(WizardConfig::from_text("workload.scenario = tsunami\n").is_err());
        assert!(WizardConfig::from_text("controller.ingestion = psychic\n").is_err());
        assert!(WizardConfig::from_text("controller.ingestion = psychic:60\n").is_err());
        assert!(WizardConfig::from_text("controller.ingestion = adaptive:hot\n").is_err());
    }

    #[test]
    fn every_controller_kind_round_trips() {
        for text in [
            "adaptive:65",
            "adaptive-capacity:70",
            "fixed-gain:55",
            "quasi-adaptive:60",
            "rule-based:50",
            "static",
        ] {
            let spec = spec_from_text(text).unwrap();
            let rendered = spec_to_text(&spec);
            assert_eq!(spec_from_text(&rendered).unwrap(), spec, "{text}");
        }
    }

    #[test]
    fn built_manager_runs() {
        let config = WizardConfig::from_text(
            "workload.scenario = steady\nworkload.rate = 600\nseed = 2\nmonitoring.period_secs = 20\n",
        )
        .unwrap();
        let mut manager = config.build_manager().unwrap();
        let report = manager.run_for_mins(3);
        assert_eq!(report.arrival_trace.len(), 180);
        assert!(report.total_cost_dollars > 0.0);
    }

    #[test]
    fn custom_flow_names_propagate() {
        let text =
            "ingestion.name = in\nanalytics.name = an\nstorage.name = st\nstorage.wcu = 55\n";
        let parsed = WizardConfig::from_text(text).unwrap();
        assert_eq!(parsed.flow.ingestion.name(), "in");
        assert_eq!(parsed.flow.storage.name(), "st");
        if let Platform::Dynamo { wcu, .. } = parsed.flow.storage {
            assert_eq!(wcu, 55.0);
        } else {
            panic!("storage platform kind");
        }
    }
}
