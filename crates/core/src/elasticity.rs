//! The end-to-end elasticity runtime.
//!
//! [`ElasticityManager`] ties every Flower component together the way the
//! demo (§4) wires them on stage: a click-stream workload feeds the
//! simulated three-layer cloud deployment; per-layer sensor → controller
//! → actuator loops run every monitoring period; everything observable is
//! recorded into an [`EpisodeReport`] for scoring and plotting.
//!
//! # Event-driven core
//!
//! The episode runs on [`flower_sim::Scheduler`] as discrete events, not
//! a per-second loop. Every instant that the retired tick loop touched is
//! now an explicit scheduled event, and events sharing a timestamp fire
//! in a fixed class order that reproduces the old loop's intra-second
//! sequencing byte-for-byte (see DESIGN.md §15):
//!
//! 1. `POLL` — resilience housekeeping (delayed-resize landings, actuation
//!    timeouts, retry backoffs), scheduled on demand at the next due
//!    instant instead of polled every second;
//! 2. `CONTROL` — the per-layer sensor → controller → actuator rounds on
//!    the monitoring-period grid;
//! 3. `RCU` — the storage read-capacity loop on the same grid;
//! 4. `ALARM` — cross-platform alarm evaluation on the one-minute grid of
//!    traced episodes;
//! 5. `REPLAN` — re-planning rounds at the replanner's cadence (a single
//!    cancellable event, rescheduled from `next_due`);
//! 6. `ENGINE` — the cloud-engine tick covering the span to the next
//!    engine event (normally one second; longer in fast-forward).
//!
//! With [`ElasticityManagerBuilder::fast_forward`] enabled, quiet windows
//! — zero offered rate, no pending work — are covered by a single
//! catch-up engine tick to the next scheduled event instead of one tick
//! per second, so month-scale episodes cost wall-clock proportional to
//! activity, not duration.

use std::collections::BTreeMap;

use flower_cloud::alarms::AlarmState;
use flower_cloud::{CloudEngine, ReadWorkloadConfig};
use flower_control::Controller;
use flower_control::ResponseMetrics;
use flower_obs::{kind, FieldValue, Recorder, SpanId};
use flower_sim::{EventHandle, Scheduler, SimDuration, SimRng, SimTime};
use flower_workload::{
    ArrivalProcess, ClickStreamConfig, ClickStreamGenerator, ConstantRate, DiurnalRate, FlashCrowd,
    RateTrace, StepRate,
};

use flower_chaos::{FaultInjector, FaultPlan};

use crate::config::ControllerSpec;
use crate::error::FlowerError;
use crate::flow::{FlowSpec, Layer};
use crate::monitor::CrossPlatformMonitor;
use crate::provision::{sensors, LayerControllerConfig, ProvisioningManager, ResilienceConfig};
use crate::replan::{ReplanOutcome, Replanner};

/// A workload: an arrival process plus the click-stream shape.
pub struct Workload {
    process: Box<dyn ArrivalProcess>,
    click: ClickStreamConfig,
}

impl Workload {
    /// Constant arrival intensity.
    pub fn constant(rate: f64) -> Workload {
        Workload {
            process: Box::new(ConstantRate::new(rate)),
            click: ClickStreamConfig::default(),
        }
    }

    /// A compressed day/night cycle (2-hour period) so diurnal dynamics
    /// appear within laptop-scale simulations.
    pub fn diurnal(base: f64, amplitude: f64) -> Workload {
        Workload {
            process: Box::new(DiurnalRate::new(
                base,
                amplitude,
                SimDuration::from_hours(2),
                SimDuration::ZERO,
            )),
            click: ClickStreamConfig::default(),
        }
    }

    /// A step disturbance at `at` — the canonical settling-time workload.
    pub fn step(before: f64, after: f64, at: SimTime) -> Workload {
        Workload {
            process: Box::new(StepRate::new(before, after, at)),
            click: ClickStreamConfig::default(),
        }
    }

    /// A flash crowd on a baseline.
    pub fn flash_crowd(base: f64, spike: f64, at: SimTime) -> Workload {
        Workload {
            process: Box::new(FlashCrowd::new(
                base,
                spike,
                at,
                SimDuration::from_mins(5),
                SimDuration::from_mins(10),
            )),
            click: ClickStreamConfig::default(),
        }
    }

    /// Replay a recorded trace.
    pub fn replay(trace: &RateTrace) -> Workload {
        Workload {
            process: Box::new(trace.replay()),
            click: ClickStreamConfig::default(),
        }
    }

    /// Any custom process.
    pub fn custom(process: Box<dyn ArrivalProcess>) -> Workload {
        Workload {
            process,
            click: ClickStreamConfig::default(),
        }
    }

    /// Override the click-stream shape.
    pub fn with_click_config(mut self, click: ClickStreamConfig) -> Workload {
        self.click = click;
        self
    }
}

/// Per-layer bounds on the actuator (from the share analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerBounds {
    /// Minimum units.
    pub min: f64,
    /// Maximum units.
    pub max: f64,
}

/// Builder for [`ElasticityManager`].
pub struct ElasticityManagerBuilder {
    flow: FlowSpec,
    workload: Option<Workload>,
    seed: u64,
    monitoring_period: SimDuration,
    controllers: Vec<(Layer, ControllerSpec)>,
    all_controllers: Option<ControllerSpec>,
    bounds: Vec<(Layer, LayerBounds)>,
    replanner: Option<Replanner>,
    read_workload: Option<ReadWorkloadConfig>,
    rcu_controller: Option<(ControllerSpec, LayerBounds)>,
    hot_shard_sensor: bool,
    recorder: Recorder,
    faults: Option<FaultPlan>,
    resilience: Option<ResilienceConfig>,
    fast_forward: bool,
}

/// The default controller spec for `layer`: the paper's setpoints for
/// the three reference layers, a 70 % utilization adaptive controller
/// for anything else.
fn default_controller(layer: Layer) -> ControllerSpec {
    if layer == Layer::ANALYTICS {
        ControllerSpec::adaptive(60.0)
    } else if layer == Layer::STORAGE {
        ControllerSpec::adaptive_for_capacity(70.0)
    } else {
        ControllerSpec::adaptive(70.0)
    }
}

/// The default actuator bounds for `layer`: the paper's share-analysis
/// caps for the three reference layers; `fallback_max` (the service's
/// own deployment limit) for anything else.
fn default_bounds(layer: Layer, fallback_max: f64) -> LayerBounds {
    let max = if layer == Layer::INGESTION {
        100.0
    } else if layer == Layer::ANALYTICS {
        50.0
    } else if layer == Layer::STORAGE {
        10_000.0
    } else {
        fallback_max
    };
    LayerBounds { min: 1.0, max }
}

impl ElasticityManagerBuilder {
    fn new(flow: FlowSpec) -> ElasticityManagerBuilder {
        ElasticityManagerBuilder {
            flow,
            workload: None,
            seed: 0,
            monitoring_period: SimDuration::from_secs(30),
            controllers: Vec::new(),
            all_controllers: None,
            bounds: Vec::new(),
            replanner: None,
            read_workload: None,
            rcu_controller: None,
            hot_shard_sensor: false,
            recorder: Recorder::disabled(),
            faults: None,
            resilience: None,
            fast_forward: false,
        }
    }

    /// Inject faults per `plan` (see [`flower_chaos`]): sensor reads and
    /// actuations route through a seeded, deterministic
    /// [`FaultInjector`], and — unless overridden via
    /// [`Self::resilience`] — the default [`ResilienceConfig`] is
    /// enabled alongside, so injected faults meet retries, timeouts, and
    /// degraded-mode holds. An empty plan installs nothing: the episode
    /// stays byte-identical to an unfaulted one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Tune the resilience policy (bounded retries, deterministic
    /// exponential backoff, actuation timeouts, degraded-mode holds).
    /// Can also be used without [`Self::faults`] to harden against the
    /// cloud's organic rejections.
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.resilience = Some(config);
        self
    }

    /// Attach an observability recorder (see [`flower_obs`]). The same
    /// recorder handle is cloned into every subsystem — cloud engine,
    /// provisioning loops, replanner, NSGA-II — so one trace carries the
    /// whole control stack's events in emission order. With the default
    /// disabled recorder the episode runs exactly as without tracing.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Set the workload (required).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the monitoring period (sensor window = control interval).
    pub fn monitoring_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "monitoring period must be non-zero");
        self.monitoring_period = period;
        self
    }

    /// Skip quiet windows: when the arrival process offers a zero rate,
    /// no housekeeping is due, and the workload has been quiet for at
    /// least one monitoring period, the engine covers the span to the
    /// next scheduled event with a single catch-up tick instead of one
    /// tick per second. Billing stays exact (resources cannot change
    /// inside a skipped span — any event that could change them bounds
    /// it), but per-second trace samples inside skipped spans collapse
    /// to one boundary sample, so fixtures that pin per-second bytes
    /// keep this **off** (the default). Fast-forwarded episodes are
    /// deterministic in their own right: same seed ⇒ same bytes.
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Choose the controller of one layer (overrides any earlier
    /// [`Self::all_controllers`] for that layer).
    pub fn controller(mut self, layer: Layer, spec: ControllerSpec) -> Self {
        match self.controllers.iter_mut().find(|(l, _)| *l == layer) {
            Some((_, s)) => *s = spec,
            None => self.controllers.push((layer, spec)),
        }
        self
    }

    /// Use the same controller spec for every registered layer
    /// (setpoints are taken from the spec as-is). Clears earlier
    /// per-layer choices.
    pub fn all_controllers(mut self, spec: ControllerSpec) -> Self {
        self.controllers.clear();
        self.all_controllers = Some(spec);
        self
    }

    /// Set one layer's actuator bounds (from the share analysis).
    pub fn bounds(mut self, layer: Layer, min: f64, max: f64) -> Self {
        assert!(min >= 1.0 && min <= max, "invalid bounds [{min}, {max}]");
        let b = LayerBounds { min, max };
        match self.bounds.iter_mut().find(|(l, _)| *l == layer) {
            Some((_, slot)) => *slot = b,
            None => self.bounds.push((layer, b)),
        }
        self
    }

    /// Drive the ingestion loop from the *hottest shard's* utilization
    /// (enhanced shard-level monitoring) instead of the stream-level
    /// average. Under skewed partition keys the average hides saturated
    /// shards; this sensor sees them.
    pub fn hot_shard_sensor(mut self, enabled: bool) -> Self {
        self.hot_shard_sensor = enabled;
        self
    }

    /// Attach a read workload against the storage layer (dashboard and
    /// consumer queries). Without one the read path stays idle.
    pub fn read_workload(mut self, config: ReadWorkloadConfig) -> Self {
        self.read_workload = Some(config);
        self
    }

    /// Manage the storage layer's *read* capacity (RCU) with its own
    /// control loop — the fourth managed resource, per §2's listing of
    /// "DynamoDB read/write units". Bounds cap the provisioned RCU.
    pub fn rcu_controller(mut self, spec: ControllerSpec, min: f64, max: f64) -> Self {
        assert!(
            min >= 1.0 && min <= max,
            "invalid RCU bounds [{min}, {max}]"
        );
        self.rcu_controller = Some((spec, LayerBounds { min, max }));
        self
    }

    /// Attach a re-planning outer loop (see [`crate::replan`]): at its
    /// cadence, dependencies are re-learned from the trailing metric
    /// window, resource shares re-solved, and the chosen plan's shares
    /// become the new per-layer maximum bounds.
    pub fn replanner(mut self, replanner: Replanner) -> Self {
        self.replanner = Some(replanner);
        self
    }

    /// Build the manager.
    ///
    /// # Errors
    ///
    /// Returns [`FlowerError::InvalidConfig`] if no workload was attached
    /// via [`Self::workload`] — the manager cannot run without a traffic
    /// source to drive the flow.
    pub fn build(self) -> Result<ElasticityManager, FlowerError> {
        let Some(workload) = self.workload else {
            return Err(FlowerError::InvalidConfig(
                "workload is required: attach one with ElasticityManagerBuilder::workload"
                    .to_owned(),
            ));
        };
        let mut engine_config = self.flow.engine_config();
        if let Some(rw) = self.read_workload {
            engine_config.read_workload = rw;
        }
        let rcu_loop = self.rcu_controller.and_then(|(spec, bounds)| {
            let u_init = engine_config.dynamo.initial_rcu;
            spec.build(u_init).map(|controller| RcuLoop {
                controller,
                bounds,
                actions: 0,
            })
        });
        let mut engine = CloudEngine::new(engine_config);
        engine.set_recorder(self.recorder.clone());
        let rng = SimRng::seed(self.seed);
        let generator = ClickStreamGenerator::new(workload.click.clone(), rng.fork(1));

        let stream = self.flow.ingestion.name().to_owned();
        let mut monitor = CrossPlatformMonitor::for_clickstream(
            &stream,
            self.flow.analytics.name(),
            self.flow.storage.name(),
        );
        if let Some(cache) = &self.flow.cache {
            use flower_cloud::engine::metric_names::{
                CACHE_HIT_RATIO, CACHE_NODES, CACHE_REQUESTS, CACHE_UTILIZATION, NS_CACHE,
            };
            for name in [
                CACHE_REQUESTS,
                CACHE_HIT_RATIO,
                CACHE_UTILIZATION,
                CACHE_NODES,
            ] {
                monitor.register(
                    Layer::CACHE,
                    flower_cloud::MetricId::new(NS_CACHE, name, cache.name()),
                );
            }
        }

        // One loop per layer the engine registers, in the registry's
        // (ascending) layer order. Controller and bounds come from the
        // builder's per-layer choices, falling back to the paper
        // defaults; sensor and initial actuator level come from the
        // layer's own service.
        let mut loops = Vec::new();
        let mut controller_specs = Vec::new();
        for layer in engine.layer_ids() {
            let Some(service) = engine.service(layer) else {
                continue;
            };
            let spec = self
                .controllers
                .iter()
                .find(|(l, _)| *l == layer)
                .map(|(_, s)| s.clone())
                .or_else(|| self.all_controllers.clone())
                .unwrap_or_else(|| default_controller(layer));
            let initial = service.target_units();
            let sensor = if layer == Layer::INGESTION && self.hot_shard_sensor {
                sensors::hot_shard_utilization(&stream)
            } else {
                sensors::for_service(service)
            };
            let b = self
                .bounds
                .iter()
                .find(|(l, _)| *l == layer)
                .map(|&(_, b)| b)
                .unwrap_or_else(|| default_bounds(layer, service.max_units()));
            controller_specs.push((layer, spec.clone()));
            let Some(controller) = spec.build(initial) else {
                continue; // static layer
            };
            loops.push(LayerControllerConfig {
                layer,
                controller,
                sensor,
                min_units: b.min,
                max_units: b.max,
            });
        }
        let mut provisioning = ProvisioningManager::new(loops, self.monitoring_period);
        provisioning.set_recorder(self.recorder.clone());
        // Fault injection + resilience. A zero-fault plan installs
        // *neither* — the untouched hot path keeps traced episodes
        // byte-identical to fixtures recorded before this layer existed.
        match self.faults {
            Some(plan) if !plan.is_empty() => {
                let mut injector = FaultInjector::new(plan);
                injector.set_recorder(self.recorder.clone());
                provisioning.set_fault_injector(injector);
                provisioning.set_resilience(self.resilience.unwrap_or_default());
            }
            _ => {
                if let Some(config) = self.resilience {
                    provisioning.set_resilience(config);
                }
            }
        }
        let mut replanner = self.replanner;
        if let Some(r) = replanner.as_mut() {
            r.set_recorder(self.recorder.clone());
        }

        let layers = engine.layer_ids();

        // The recurring event chains. Control, RCU, and alarm rounds
        // fire at whole seconds that are also multiples of their period,
        // i.e. on the lcm(period, 1 s) grid, starting at the first grid
        // point after t = 0; each event reschedules itself, so the
        // chains persist across episodes exactly like the old loop's
        // modulo checks did. Poll and replan events are scheduled on
        // demand from their next due instants.
        let mut sched: Scheduler<World> = Scheduler::new();
        let control_grid =
            SimDuration::from_millis(lcm_ms(self.monitoring_period.as_millis(), 1_000));
        sched.schedule_at_class(SimTime::ZERO + control_grid, CLASS_CONTROL, control_event);
        if rcu_loop.is_some() {
            sched.schedule_at_class(SimTime::ZERO + control_grid, CLASS_RCU, rcu_event);
        }
        if self.recorder.is_enabled() {
            sched.schedule_at_class(SimTime::from_secs(60), CLASS_ALARM, alarm_event);
        }

        let mut world = World {
            flow: self.flow,
            engine,
            provisioning,
            process: workload.process,
            generator,
            monitoring_period: self.monitoring_period,
            control_grid,
            controller_specs,
            replanner,
            rcu_loop,
            report: EpisodeReport::for_layers(layers),
            recorder: self.recorder,
            monitor,
            alarm_spans: BTreeMap::new(),
            episode: None,
            fast_forward: self.fast_forward,
            last_active: SimTime::ZERO,
            poll_handle: None,
            replan_handle: None,
            engine_alive: false,
        };
        reschedule_replan(&mut sched, &mut world);
        Ok(ElasticityManager { sched, world })
    }
}

/// The optional fourth control loop: storage-layer read capacity.
struct RcuLoop {
    controller: Box<dyn Controller>,
    bounds: LayerBounds,
    actions: u64,
}

/// Everything one elasticity episode produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeReport {
    /// The layers under management, in registry (ascending) order. The
    /// per-layer vectors below are parallel to this list.
    pub layers: Vec<Layer>,
    /// Offered arrival rate per second, per engine tick. In fast-forward
    /// a skipped span contributes a single boundary sample.
    pub arrival_trace: Vec<(SimTime, f64)>,
    /// Per-layer measurement traces (ingestion %, analytics CPU %,
    /// storage write %, …) at engine-tick resolution, parallel to
    /// `layers`.
    pub measurement_traces: Vec<Vec<(SimTime, f64)>>,
    /// Per-layer actuator traces (shards, VMs, WCU, …) at engine-tick
    /// resolution, parallel to `layers`.
    pub actuator_traces: Vec<Vec<(SimTime, f64)>>,
    /// Total dollars spent.
    pub total_cost_dollars: f64,
    /// Records throttled at ingestion.
    pub throttled_ingest: u64,
    /// Items throttled at storage.
    pub throttled_storage: u64,
    /// Items successfully written at storage.
    pub stored_items: u64,
    /// Tuples dropped by the analytics backlog bound.
    pub dropped_tuples: u64,
    /// Records offered by the workload.
    pub offered_records: u64,
    /// Records accepted at ingestion.
    pub accepted_records: u64,
    /// Per-layer count of actuator *changes* applied, parallel to
    /// `layers`.
    pub scaling_actions: Vec<u64>,
    /// Per-layer count of rejected actuations, parallel to `layers`.
    pub rejected_actuations: Vec<u64>,
    /// Storage-layer read utilization trace (%, empty without a read
    /// workload).
    pub read_utilization_trace: Vec<(SimTime, f64)>,
    /// Provisioned-RCU trace.
    pub rcu_trace: Vec<(SimTime, f64)>,
    /// Reads throttled at the storage layer.
    pub throttled_reads: u64,
    /// Scaling actions taken by the RCU loop.
    pub rcu_actions: u64,
    /// Discrete events the scheduler executed over the manager's
    /// lifetime so far — the event-core cost model's native unit. With
    /// fast-forward, quiet windows drive this far below one event per
    /// simulated second.
    pub events_executed: u64,
    /// High-water mark of the scheduler's pending-event queue depth.
    pub queue_high_water: u64,
}

impl EpisodeReport {
    fn for_layers(layers: Vec<Layer>) -> EpisodeReport {
        let n = layers.len();
        EpisodeReport {
            layers,
            arrival_trace: Vec::new(),
            measurement_traces: vec![Vec::new(); n],
            actuator_traces: vec![Vec::new(); n],
            total_cost_dollars: 0.0,
            throttled_ingest: 0,
            throttled_storage: 0,
            stored_items: 0,
            dropped_tuples: 0,
            offered_records: 0,
            accepted_records: 0,
            scaling_actions: vec![0; n],
            rejected_actuations: vec![0; n],
            read_utilization_trace: Vec::new(),
            rcu_trace: Vec::new(),
            throttled_reads: 0,
            rcu_actions: 0,
            events_executed: 0,
            queue_high_water: 0,
        }
    }

    fn layer_slot(&self, layer: Layer) -> Option<usize> {
        self.layers.iter().position(|&l| l == layer)
    }

    /// One layer's measurement trace (empty for unmanaged layers).
    pub fn measurements(&self, layer: Layer) -> &[(SimTime, f64)] {
        self.layer_slot(layer)
            .and_then(|i| self.measurement_traces.get(i))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// One layer's actuator trace (empty for unmanaged layers).
    pub fn actuators(&self, layer: Layer) -> &[(SimTime, f64)] {
        self.layer_slot(layer)
            .and_then(|i| self.actuator_traces.get(i))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Fraction of offered records lost to ingestion throttling.
    pub fn ingest_loss_rate(&self) -> f64 {
        if self.offered_records == 0 {
            0.0
        } else {
            self.throttled_ingest as f64 / self.offered_records as f64
        }
    }

    /// Score one layer's measurement trace against a setpoint ± band.
    pub fn response_metrics(&self, layer: Layer, setpoint: f64, band: f64) -> ResponseMetrics {
        ResponseMetrics::of(self.measurements(layer), setpoint, band)
    }

    /// Scaling actions across all layers.
    pub fn total_actions(&self) -> u64 {
        self.scaling_actions.iter().sum()
    }
}

// Tie-break classes: at a shared timestamp, housekeeping (poll, control,
// RCU, alarm, replan — in that order) fires before the engine tick,
// reproducing the retired loop's "housekeeping for T runs at the end of
// the previous second's tick" sequencing.
const CLASS_POLL: u8 = 0;
const CLASS_CONTROL: u8 = 1;
const CLASS_RCU: u8 = 2;
const CLASS_ALARM: u8 = 3;
const CLASS_REPLAN: u8 = 4;
const CLASS_ENGINE: u8 = 5;

/// Least common multiple of two periods in milliseconds.
fn lcm_ms(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    a / gcd(a, b) * b
}

/// `t` rounded up to the next whole second (identity on whole seconds).
fn ceil_whole_second(t: SimTime) -> SimTime {
    SimTime::from_millis(t.as_millis().div_ceil(1_000) * 1_000)
}

/// The first whole second strictly after `t` — where the retired loop
/// would next run housekeeping.
fn next_whole_second_after(t: SimTime) -> SimTime {
    SimTime::from_millis((t.as_millis() / 1_000 + 1) * 1_000)
}

/// Mutable world state the scheduler's events operate on. Event bodies
/// are free functions over `(&mut Scheduler<World>, &mut World)` so
/// chains can reschedule themselves.
struct World {
    flow: FlowSpec,
    engine: CloudEngine,
    provisioning: ProvisioningManager,
    process: Box<dyn ArrivalProcess>,
    generator: ClickStreamGenerator,
    monitoring_period: SimDuration,
    /// lcm(monitoring period, 1 s): the control/RCU rounds' actual grid.
    control_grid: SimDuration,
    controller_specs: Vec<(Layer, ControllerSpec)>,
    replanner: Option<Replanner>,
    rcu_loop: Option<RcuLoop>,
    report: EpisodeReport,
    recorder: Recorder,
    monitor: CrossPlatformMonitor,
    alarm_spans: BTreeMap<String, SpanId>,
    episode: Option<EpisodeState>,
    fast_forward: bool,
    /// Last instant the arrival process offered a non-zero rate; quiet
    /// spans are only skipped after one full monitoring period of
    /// silence so backlogs and boot timers settle first.
    last_active: SimTime,
    poll_handle: Option<EventHandle>,
    replan_handle: Option<EventHandle>,
    /// Whether the self-rescheduling engine chain has a live event in
    /// the queue. The chain dies at episode end and `start_episode`
    /// revives it.
    engine_alive: bool,
}

/// In-flight bookkeeping between [`ElasticityManager::start_episode`]
/// and [`ElasticityManager::finish_episode`].
struct EpisodeState {
    end: SimTime,
    span: SpanId,
    prev_actuators: Vec<f64>,
    events_at_start: u64,
}

/// ENGINE event: cover `[t, next engine event)` with one cloud-engine
/// tick — one second in tick-compat mode, the whole quiet span in
/// fast-forward — then reschedule at the span's end. Dies (clearing
/// `engine_alive`) at or past the episode end.
fn engine_event(s: &mut Scheduler<World>, w: &mut World) {
    let t = s.now();
    let Some(end) = w.episode.as_ref().map(|e| e.end) else {
        w.engine_alive = false;
        return;
    };
    if t >= end {
        w.engine_alive = false;
        return;
    }
    let rate = w.process.rate(t);
    let mut until = t + SimDuration::from_secs(1);
    let mut fast_forwarding = false;
    if w.fast_forward && rate <= 0.0 && t.since(w.last_active) >= w.monitoring_period {
        // Skip to the earliest of: the workload waking up, the episode
        // end, or the next scheduled event. Capping at the next event
        // keeps the skipped span observably inert — nothing that could
        // resize, decide, or emit fires inside it — so one catch-up
        // tick bills exactly what per-second ticks would have.
        let wake = w.process.next_active(t);
        let mut horizon = if wake >= end {
            end
        } else {
            ceil_whole_second(wake).min(end)
        };
        if let Some(next_event) = s.next_event_time() {
            horizon = horizon.min(next_event);
        }
        if horizon > until {
            until = horizon;
            fast_forwarding = true;
        }
    }
    if rate > 0.0 {
        w.last_active = t;
    }
    let records = if fast_forwarding {
        Vec::new()
    } else {
        w.generator.tick_at_rate(rate, t, 1.0)
    };
    w.report.offered_records += records.len() as u64;
    w.report.arrival_trace.push((t, rate));

    let tick = w.engine.tick(&records, t, until.since(t));
    w.report.accepted_records += tick.ingest.accepted;
    w.report.throttled_ingest += tick.ingest.throttled;
    w.report.throttled_storage += tick.write.throttled;
    w.report.stored_items += tick.write.written;
    w.report.dropped_tuples += tick.process.dropped;
    w.report.total_cost_dollars += tick.cost;

    for (i, service) in w.engine.services().into_iter().enumerate() {
        let Some(v) = service.measurement(&tick) else {
            continue;
        };
        if let Some(trace) = w.report.measurement_traces.get_mut(i) {
            trace.push((t, v));
        }
    }
    w.report.throttled_reads += tick.read.throttled;
    w.report
        .read_utilization_trace
        .push((t, tick.read.utilization * 100.0));
    w.report
        .rcu_trace
        .push((t, w.engine.dynamo().provisioned_rcu()));

    let actuators: Vec<f64> = w
        .engine
        .services()
        .iter()
        .map(|svc| svc.actuator_units())
        .collect();
    for (i, &a) in actuators.iter().enumerate() {
        if let Some(trace) = w.report.actuator_traces.get_mut(i) {
            trace.push((t, a));
        }
        let changed = w
            .episode
            .as_ref()
            .and_then(|e| e.prev_actuators.get(i))
            .is_some_and(|p| (a - p).abs() > 1e-9);
        if changed {
            if let Some(slot) = w.report.scaling_actions.get_mut(i) {
                *slot += 1;
            }
        }
    }
    if let Some(episode) = w.episode.as_mut() {
        episode.prev_actuators = actuators;
    }
    s.schedule_at_class(until, CLASS_ENGINE, engine_event);
}

/// CONTROL event: one provisioning round (sensor → controller →
/// actuator per managed layer) on the monitoring-period grid. Control
/// decisions can create retry/timeout work, so the poll event is
/// re-aimed afterwards.
fn control_event(s: &mut Scheduler<World>, w: &mut World) {
    let t = s.now();
    w.provisioning.step(&mut w.engine, t);
    reschedule_poll(s, w);
    s.schedule_at_class(t + w.control_grid, CLASS_CONTROL, control_event);
}

/// RCU event: the storage read-capacity loop, sharing the control grid.
fn rcu_event(s: &mut Scheduler<World>, w: &mut World) {
    let t = s.now();
    if let Some(rcu) = &mut w.rcu_loop {
        let sensor = sensors::read_utilization(w.flow.storage.name());
        if let Some(measurement) = sensor.read(w.engine.metrics(), t, w.monitoring_period) {
            let commanded = rcu.controller.step(measurement);
            let desired = commanded.clamp(rcu.bounds.min, rcu.bounds.max);
            let applied = desired.round();
            let before = w.engine.dynamo().target_rcu();
            let accepted = w.engine.scale_rcu(applied, t).is_ok();
            let in_force = if accepted {
                desired
            } else {
                w.engine.dynamo().target_rcu()
            };
            rcu.controller.sync_actuator(in_force);
            if accepted && (applied - before).abs() > 1e-9 {
                rcu.actions += 1;
            }
        }
    }
    s.schedule_at_class(t + w.control_grid, CLASS_RCU, rcu_event);
}

/// ALARM event: traced episodes evaluate the cross-platform alarms on
/// the one-minute grid (the alarms' own evaluation period) and record
/// state transitions; an `alarm:<name>` span spans the sim-time
/// interval each alarm stays in ALARM.
fn alarm_event(s: &mut Scheduler<World>, w: &mut World) {
    let t = s.now();
    let transitions = w.monitor.observe(w.engine.metrics(), t);
    w.recorder.set_now(t);
    for tr in &transitions {
        let mut fields: Vec<(&'static str, FieldValue)> = vec![
            ("alarm", tr.alarm.as_str().into()),
            ("from", tr.from.to_string().into()),
            ("to", tr.to.to_string().into()),
        ];
        if let Some(value) = tr.value {
            fields.push(("value", value.into()));
        }
        w.recorder.emit(kind::ALARM_TRANSITION, &fields);
        w.recorder.count("alarm.transitions", 1);
        let span_name = format!("alarm:{}", tr.alarm);
        if tr.to == AlarmState::Alarm {
            let id = w.recorder.span_enter(&span_name);
            w.alarm_spans.insert(tr.alarm.clone(), id);
        } else if let Some(id) = w.alarm_spans.remove(&tr.alarm) {
            w.recorder.span_exit(id);
        }
    }
    s.schedule_at_class(t + SimDuration::from_secs(60), CLASS_ALARM, alarm_event);
}

/// POLL event: resilience housekeeping — land delayed resizes, expire
/// in-flight actuations past their timeout, fire due retries — then
/// re-aim at whatever due instant remains.
fn poll_event(s: &mut Scheduler<World>, w: &mut World) {
    w.poll_handle = None;
    w.provisioning.poll(&mut w.engine, s.now());
    reschedule_poll(s, w);
}

/// Re-aim the single poll event at the ceiling-to-whole-second of the
/// provisioning manager's earliest due instant (the retired loop
/// observed dues on the one-second grid). No due work ⇒ no event: quiet
/// resilience bookkeeping costs nothing.
fn reschedule_poll(s: &mut Scheduler<World>, w: &mut World) {
    if let Some(h) = w.poll_handle.take() {
        s.cancel(h);
    }
    if let Some(due) = w.provisioning.next_due() {
        let at = ceil_whole_second(due);
        let at = if at <= s.now() {
            next_whole_second_after(s.now())
        } else {
            at
        };
        w.poll_handle = Some(s.schedule_at_class(at, CLASS_POLL, poll_event));
    }
}

/// REPLAN event: one re-planning round. A failed round (thin window,
/// infeasible problem) leaves the previous bounds in force; either way
/// the replanner advances `next_due` and the event re-aims from it.
fn replan_event(s: &mut Scheduler<World>, w: &mut World) {
    w.replan_handle = None;
    let t = s.now();
    if let Some(replanner) = &mut w.replanner {
        if replanner.is_due(t) {
            if let Ok(outcome) = replanner.replan(w.engine.metrics(), t) {
                for (layer, max_units) in outcome.plan.shares.iter() {
                    w.provisioning.set_bounds(layer, 1.0, max_units.max(1.0));
                }
            }
        }
    }
    reschedule_replan(s, w);
}

/// Re-aim the single replan event at the ceiling-to-whole-second of the
/// replanner's `next_due` (the retired loop checked `is_due` on the
/// one-second grid). `force_next` resets `next_due` into the past, so a
/// forced round lands at the next whole second — the old "next tick
/// boundary" contract.
fn reschedule_replan(s: &mut Scheduler<World>, w: &mut World) {
    if let Some(h) = w.replan_handle.take() {
        s.cancel(h);
    }
    let Some(replanner) = w.replanner.as_ref() else {
        return;
    };
    let at = ceil_whole_second(replanner.next_due());
    let at = if at <= s.now() {
        next_whole_second_after(s.now())
    } else {
        at
    };
    w.replan_handle = Some(s.schedule_at_class(at, CLASS_REPLAN, replan_event));
}

/// The elasticity manager: workload + cloud + provisioning loops on a
/// discrete-event scheduler.
pub struct ElasticityManager {
    sched: Scheduler<World>,
    world: World,
}

impl ElasticityManager {
    /// Start building a manager for `flow`.
    pub fn builder(flow: FlowSpec) -> ElasticityManagerBuilder {
        ElasticityManagerBuilder::new(flow)
    }

    /// The flow under management.
    pub fn flow(&self) -> &FlowSpec {
        &self.world.flow
    }

    /// The simulated cloud (read access for dashboards).
    pub fn engine(&self) -> &CloudEngine {
        &self.world.engine
    }

    /// The controller spec of one layer (`None` for layers the engine
    /// does not register).
    pub fn controller_spec(&self, layer: Layer) -> Option<&ControllerSpec> {
        self.world
            .controller_specs
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|(_, s)| s)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Completed re-planning rounds (empty without a replanner).
    pub fn replan_history(&self) -> &[ReplanOutcome] {
        self.world
            .replanner
            .as_ref()
            .map_or(&[], super::replan::Replanner::history)
    }

    /// The attached observability recorder (disabled unless one was
    /// passed to [`ElasticityManagerBuilder::recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.world.recorder
    }

    /// The cross-platform monitor whose alarms the traced episode
    /// evaluates on the one-minute grid.
    pub fn monitor(&self) -> &CrossPlatformMonitor {
        &self.world.monitor
    }

    /// Run for `duration`, extending any previous run. Returns a clone
    /// of the cumulative report.
    ///
    /// Equivalent to [`Self::start_episode`] + [`Self::run_until`] to
    /// the episode end + [`Self::finish_episode`] — the decomposed form
    /// `flower serve` drives so it can apply live commands at second
    /// boundaries without perturbing the byte-identical trace.
    pub fn run_for(&mut self, duration: SimDuration) -> EpisodeReport {
        self.start_episode(duration);
        if let Some(end) = self.world.episode.as_ref().map(|e| e.end) {
            self.run_until(end);
        }
        self.finish_episode()
    }

    /// Open an episode ending `duration` from now: enter the
    /// `episode.run` span, snapshot actuator positions, and (re)arm the
    /// engine event chain. Time is then advanced with
    /// [`Self::run_until`].
    pub fn start_episode(&mut self, duration: SimDuration) {
        let now = self.sched.now();
        let end = now + duration;
        self.world.recorder.set_now(now);
        let span = self.world.recorder.span_enter("episode.run");
        let prev_actuators: Vec<f64> = self
            .world
            .engine
            .services()
            .iter()
            .map(|s| s.actuator_units())
            .collect();
        self.world.episode = Some(EpisodeState {
            end,
            span,
            prev_actuators,
            events_at_start: self.sched.executed(),
        });
        if !self.world.engine_alive {
            self.world.engine_alive = true;
            self.sched
                .schedule_at_class(now, CLASS_ENGINE, engine_event);
        }
    }

    /// Execute every event up to `min(until, episode end)` inclusive,
    /// advancing the clock exactly there. Returns `false` once the
    /// episode's end has been reached (or none is open) — time to call
    /// [`Self::finish_episode`]. `flower serve` drives this one second
    /// at a time so live commands land on second boundaries; batch runs
    /// pass the episode end directly and pay no per-second overhead.
    pub fn run_until(&mut self, until: SimTime) -> bool {
        let Some(end) = self.world.episode.as_ref().map(|e| e.end) else {
            return false;
        };
        if self.sched.now() >= end {
            return false;
        }
        self.sched.run_until(until.min(end), &mut self.world);
        true
    }

    /// Close the open episode: fill in rejected-actuation and RCU
    /// totals, exit the `episode.run` span, and return a clone of the
    /// cumulative report. A no-op span-wise when no episode is open.
    pub fn finish_episode(&mut self) -> EpisodeReport {
        let managed = self.world.report.layers.clone();
        for (i, layer) in managed.into_iter().enumerate() {
            if let Some(slot) = self.world.report.rejected_actuations.get_mut(i) {
                *slot = self.world.provisioning.rejected(layer);
            }
        }
        if let Some(rcu) = &self.world.rcu_loop {
            self.world.report.rcu_actions = rcu.actions;
        }
        self.world.report.events_executed = self.sched.executed();
        self.world.report.queue_high_water = self.sched.high_water() as u64;
        if let Some(state) = self.world.episode.take() {
            self.world.recorder.set_now(self.sched.now());
            // Event-core counters ride only on fast-forwarded episodes:
            // golden fixtures recorded from tick-compat runs must keep
            // their summary bytes.
            if self.world.fast_forward && self.world.recorder.is_enabled() {
                self.world.recorder.count(
                    "engine.events_executed",
                    self.sched.executed().saturating_sub(state.events_at_start),
                );
                self.world
                    .recorder
                    .gauge("engine.queue_depth", self.sched.pending() as f64);
                self.world
                    .recorder
                    .gauge("engine.queue_high_water", self.sched.high_water() as f64);
            }
            self.world.recorder.span_exit(state.span);
        }
        self.world.report.clone()
    }

    /// Run for `minutes` simulated minutes.
    pub fn run_for_mins(&mut self, minutes: u64) -> EpisodeReport {
        self.run_for(SimDuration::from_mins(minutes))
    }

    /// Force the replanner's next round to run at the next second
    /// boundary (the `force-replan` live command). Returns `false`
    /// when no replanner is attached.
    pub fn force_replan(&mut self) -> bool {
        match self.world.replanner.as_mut() {
            Some(replanner) => {
                replanner.force_next();
            }
            None => return false,
        }
        reschedule_replan(&mut self.sched, &mut self.world);
        true
    }

    /// Change the replanner's budget for subsequent rounds (the
    /// `set-budget` live command). Rejects non-finite or non-positive
    /// budgets and returns `false` when no replanner is attached.
    pub fn set_budget(&mut self, budget: f64) -> bool {
        if !budget.is_finite() || budget <= 0.0 {
            return false;
        }
        match self.world.replanner.as_mut() {
            Some(replanner) => {
                replanner.set_budget(budget);
                true
            }
            None => false,
        }
    }

    /// Inject a chaos fault clause at runtime (the `inject-fault` live
    /// command). Installs a fault injector (seeded with `seed`) and the
    /// default resilience policy on first use; later clauses join the
    /// existing injector's plan, preserving its RNG stream positions.
    pub fn inject_fault(&mut self, seed: u64, clause: flower_chaos::FaultClause) {
        self.world.provisioning.inject_fault(seed, clause);
        reschedule_poll(&mut self.sched, &mut self.world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::clickstream_flow;

    fn manager(workload: Workload) -> ElasticityManager {
        ElasticityManager::builder(clickstream_flow())
            .workload(workload)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn episode_records_everything() {
        let mut m = manager(Workload::constant(1_000.0));
        let report = m.run_for_mins(5);
        assert_eq!(report.arrival_trace.len(), 300);
        for layer in Layer::ALL {
            assert_eq!(report.measurements(layer).len(), 300);
            assert_eq!(report.actuators(layer).len(), 300);
        }
        assert!(report.total_cost_dollars > 0.0);
        assert!(report.offered_records > 250_000);
        assert!(report.accepted_records <= report.offered_records);
        assert_eq!(m.now(), SimTime::from_mins(5));
        assert!(report.events_executed > 300, "engine + housekeeping events");
    }

    #[test]
    fn adaptive_manager_relieves_overload() {
        // Start under-provisioned for 4,500 rec/s and let Flower scale.
        let mut m = manager(Workload::constant(4_500.0));
        let report = m.run_for_mins(20);
        // Shards must have grown beyond the initial 2 (capacity 2,000/s).
        let final_shards = report.actuators(Layer::INGESTION).last().unwrap().1;
        assert!(final_shards > 2.0, "shards stuck at {final_shards}");
        // And VMs beyond the initial 2.
        let final_vms = report.actuators(Layer::ANALYTICS).last().unwrap().1;
        assert!(final_vms > 2.0, "vms stuck at {final_vms}");
        // Loss rate must fall over time: compare first vs last 5 minutes
        // of ingestion utilization (should approach the 70% setpoint).
        let meas = report.measurements(Layer::INGESTION);
        let early: f64 = meas[..60].iter().map(|&(_, v)| v).sum::<f64>() / 60.0;
        let late: f64 = meas[meas.len() - 300..]
            .iter()
            .map(|&(_, v)| v)
            .sum::<f64>()
            / 300.0;
        assert!(early > 100.0, "starts overloaded (util {early})");
        assert!(late < 100.0, "ends relieved (util {late})");
        assert!(report.total_actions() > 0);
    }

    #[test]
    fn static_layers_never_scale() {
        let mut m = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::constant(3_000.0))
            .all_controllers(ControllerSpec::Static)
            .seed(3)
            .build()
            .unwrap();
        let report = m.run_for_mins(5);
        assert_eq!(report.total_actions(), 0);
        assert_eq!(report.actuators(Layer::INGESTION).last().unwrap().1, 2.0);
        assert_eq!(report.actuators(Layer::STORAGE).last().unwrap().1, 100.0);
        // Under-provisioned static deployment keeps throttling.
        assert!(report.ingest_loss_rate() > 0.2);
    }

    #[test]
    fn scale_down_happens_when_load_drops() {
        let mut m = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::step(4_000.0, 300.0, SimTime::from_mins(12)))
            .seed(5)
            .build()
            .unwrap();
        let report = m.run_for_mins(40);
        let shards_peak = report
            .actuators(Layer::INGESTION)
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        let shards_final = report.actuators(Layer::INGESTION).last().unwrap().1;
        assert!(shards_peak >= 3.0, "peak shards {shards_peak}");
        assert!(
            shards_final < shards_peak,
            "should scale back in: final {shards_final} vs peak {shards_peak}"
        );
    }

    #[test]
    fn bounds_are_respected() {
        let mut m = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::constant(8_000.0))
            .bounds(Layer::INGESTION, 1.0, 4.0)
            .seed(7)
            .build()
            .unwrap();
        let report = m.run_for_mins(15);
        let max_shards = report
            .actuators(Layer::INGESTION)
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        assert!(max_shards <= 4.0, "bound violated: {max_shards}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut m = manager(Workload::diurnal(1_500.0, 1_000.0));
            m.run_for_mins(10)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut m = ElasticityManager::builder(clickstream_flow())
                .workload(Workload::constant(1_000.0))
                .seed(seed)
                .build()
                .unwrap();
            m.run_for_mins(2)
        };
        assert_ne!(run(1).offered_records, run(2).offered_records);
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut m = manager(Workload::constant(500.0));
        let first = m.run_for_mins(2);
        let second = m.run_for_mins(2);
        assert_eq!(first.arrival_trace.len(), 120);
        assert_eq!(second.arrival_trace.len(), 240);
        assert!(second.total_cost_dollars > first.total_cost_dollars);
        assert_eq!(m.now(), SimTime::from_mins(4));
    }

    #[test]
    fn run_until_advances_in_second_steps_like_serve() {
        // The serve daemon's drive pattern: one second per call, live
        // commands between calls. Must produce the same report as one
        // batch run_until.
        let mut stepped = manager(Workload::constant(800.0));
        stepped.start_episode(SimDuration::from_mins(2));
        let mut boundaries = 0;
        while stepped.run_until(stepped.now() + SimDuration::from_secs(1)) {
            boundaries += 1;
        }
        let stepped_report = stepped.finish_episode();
        assert_eq!(boundaries, 120, "one advancing call per second");

        let mut batch = manager(Workload::constant(800.0));
        let batch_report = batch.run_for_mins(2);
        assert_eq!(stepped_report, batch_report);
    }

    #[test]
    fn response_metrics_are_computable() {
        let mut m = manager(Workload::constant(2_000.0));
        let report = m.run_for_mins(10);
        let rm = report.response_metrics(Layer::ANALYTICS, 60.0, 15.0);
        assert!(rm.integral_abs_error >= 0.0);
        assert!(rm.violation_rate >= 0.0 && rm.violation_rate <= 1.0);
    }

    #[test]
    fn zero_fault_plan_changes_nothing() {
        let base = manager(Workload::constant(2_000.0)).run_for_mins(5);
        let mut faulted = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::constant(2_000.0))
            .seed(11)
            .faults(FaultPlan::none())
            .build()
            .unwrap();
        assert_eq!(base, faulted.run_for_mins(5));
    }

    #[test]
    fn preset_faults_emit_chaos_and_resilience_events() {
        let recorder = Recorder::with_capacity(16_384);
        let mut m = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::constant(4_500.0))
            .seed(11)
            .recorder(recorder.clone())
            .faults(FaultPlan::preset("flaky-actuator").unwrap())
            .build()
            .unwrap();
        m.run_for_mins(25);
        assert!(recorder.counter("chaos.faults") > 0, "faults injected");
        assert!(recorder.counter("resilience.retries") > 0, "retries fired");
    }

    #[test]
    fn fast_forward_is_inert_while_the_workload_stays_active() {
        // With a never-quiet workload there is nothing to skip, so the
        // fast-forward engine must reproduce tick-compat byte-for-byte
        // — including the executed-event count.
        let run = |ff| {
            let mut m = ElasticityManager::builder(clickstream_flow())
                .workload(Workload::constant(1_200.0))
                .seed(11)
                .fast_forward(ff)
                .build()
                .unwrap();
            m.run_for_mins(5)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fast_forward_skips_quiet_windows() {
        let run = |ff| {
            let mut m = ElasticityManager::builder(clickstream_flow())
                .workload(Workload::step(800.0, 0.0, SimTime::from_mins(2)))
                .seed(11)
                .fast_forward(ff)
                .build()
                .unwrap();
            m.run_for_mins(30)
        };
        let compat = run(false);
        let fast = run(true);
        assert_eq!(compat.arrival_trace.len(), 1_800, "one sample per second");
        assert!(
            fast.events_executed * 5 < compat.events_executed,
            "quiet-heavy episode must shed most events: {} vs {}",
            fast.events_executed,
            compat.events_executed
        );
        // The active prefix (2 min + one monitoring period of grace) is
        // simulated identically.
        assert_eq!(fast.offered_records, compat.offered_records);
        assert_eq!(
            &fast.arrival_trace[..150],
            &compat.arrival_trace[..150],
            "active prefix ticks second-by-second"
        );
        // And fast-forward is deterministic in its own right.
        assert_eq!(fast, run(true));
    }

    #[test]
    fn fast_forward_covers_long_horizons_cheaply() {
        // A month of quiet SimTime: the event count stays proportional
        // to housekeeping rounds, not seconds (2.6 M ticks retired).
        let mut m = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::step(600.0, 0.0, SimTime::from_mins(1)))
            .seed(7)
            .fast_forward(true)
            .build()
            .unwrap();
        let report = m.run_for(SimDuration::from_hours(24 * 30));
        assert_eq!(m.now(), SimTime::from_hours(24 * 30));
        let seconds = 30 * 24 * 3600_u64;
        assert!(
            report.events_executed < seconds / 5,
            "{} events for {} simulated seconds",
            report.events_executed,
            seconds
        );
        assert!(report.total_cost_dollars > 0.0);
    }

    #[test]
    fn missing_workload_is_an_error() {
        let Err(err) = ElasticityManager::builder(clickstream_flow()).build() else {
            panic!("build without a workload must fail");
        };
        assert!(matches!(err, FlowerError::InvalidConfig(_)));
        assert!(err.to_string().contains("workload is required"), "{err}");
    }
}
