// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-core
//!
//! **Flower: A Data Analytics Flow Elasticity Manager** — a Rust
//! reproduction of Khoshkbarforoushha, Ranjan, Wang & Friedrich's VLDB
//! 2017 demonstration.
//!
//! A data analytics flow spans three layers — ingestion, analytics,
//! storage — each backed by a managed cloud service (Kinesis, Storm on
//! EC2, DynamoDB in the paper's demo). Flower manages the *elasticity* of
//! the whole flow holistically:
//!
//! * [`dependency`] — **Workload Dependency Analysis** (§3.1): linear
//!   regressions between layer resource measures, learned from metric
//!   logs (the paper's Eq. 1/Eq. 2 and Fig. 2).
//! * [`share`] — **Resource Share Analysis** (§3.2): NSGA-II over the
//!   provisioning plan space, maximizing per-layer resource shares under
//!   a budget constraint and the learned dependency constraints (the
//!   paper's Eqs. 3–5 and Fig. 4).
//! * [`provision`] — **Resource Provisioning** (§3.3): per-layer
//!   sensor → controller → actuator loops, defaulting to the paper's
//!   adaptive gain-memory controller (Eqs. 6–7).
//! * [`monitor`] / [`dashboard`] — **Cross-Platform Monitoring** (§3.4):
//!   the "all-in-one-place visualizer" consolidating every service's
//!   metrics, rendered as text tables and sparkline charts.
//! * [`flow`] — the Flow Builder of the demo walkthrough (§4, Fig. 5):
//!   declare platforms, connect layers, validate, and materialize a
//!   runnable simulated flow.
//! * [`elasticity`] — the end-to-end runtime tying everything together:
//!   workload → simulated cloud → sensors → controllers → actuators,
//!   producing an auditable [`elasticity::EpisodeReport`].
//! * [`config`] — serializable configuration types mirroring the demo's
//!   Flow Configuration Wizard (§4, step 2).
//! * [`replan`] — the outer loop closing §3.1→§3.2→§3.3: periodic
//!   re-analysis of dependencies and re-solving of resource shares over
//!   trailing windows, as §2's "arbitrary time windows" describes.
//!
//! ## Quickstart
//!
//! ```
//! use flower_core::prelude::*;
//!
//! // 1. Build the paper's click-stream flow (Fig. 1).
//! let flow = FlowBuilder::new("clickstream")
//!     .ingestion(Platform::kinesis("clicks", 2))
//!     .analytics(Platform::storm("counter", 2))
//!     .storage(Platform::dynamo("aggregates", 100.0))
//!     .build()
//!     .expect("valid flow");
//!
//! // 2. Configure the elasticity manager and run 10 simulated minutes
//! //    against a diurnal click-stream workload.
//! let mut manager = ElasticityManager::builder(flow)
//!     .workload(Workload::diurnal(800.0, 600.0))
//!     .seed(7)
//!     .build()
//!     .expect("workload attached");
//! let report = manager.run_for_mins(10);
//! assert!(report.total_cost_dollars > 0.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod dashboard;
pub mod dependency;
pub mod elasticity;
pub mod error;
pub mod export;
pub mod flow;
pub mod monitor;
pub mod provision;
pub mod replan;
pub mod share;
pub mod slo;
pub mod wizard;

pub use error::FlowerError;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::dependency::{Dependency, DependencyAnalyzer};
    pub use crate::elasticity::{ElasticityManager, EpisodeReport, Workload};
    pub use crate::error::FlowerError;
    pub use crate::flow::{FlowBuilder, FlowSpec, Layer, Platform};
    pub use crate::monitor::CrossPlatformMonitor;
    pub use crate::provision::{LayerControllerConfig, ProvisioningManager, ResilienceConfig};
    pub use crate::replan::{PlanSelection, ReplanConfig, Replanner};
    pub use crate::share::{ResourceShares, ShareAnalyzer, ShareProblem, ShareSolution};
    pub use crate::slo::{Objective, SloReport, SloSpec};
    pub use crate::wizard::WizardConfig;
    pub use flower_chaos::{FaultInjector, FaultPlan, PRESETS};
    pub use flower_control::Controller;
    pub use flower_sim::{SimDuration, SimTime};
}
