//! Resource Provisioning — paper §3.3.
//!
//! One sensor → controller → actuator loop per layer. "The sensor module
//! is responsible for providing resource usage stats as per the specified
//! monitoring window. The actuator is capable of executing the
//! controllers' commands, such as adding or removing VMs and increasing
//! or decreasing number of Shards." (§2)
//!
//! The [`ProvisioningManager`] owns one loop per registered layer and
//! steps them every monitoring period against the simulated cloud.
//! Actuator commands are rounded to deployable units, clamped to the
//! bounds the share analysis produced, and — crucially — the applied
//! value is synced back into the controller so it never winds up against
//! a limit it cannot cross. Actuations dispatch through the engine's
//! [`flower_cloud::LayerService`] registry, so a loop works for any
//! layer the engine knows about.

use flower_cloud::{CloudEngine, MetricId, MetricsStore, Statistic};
use flower_control::Controller;
use flower_obs::{kind, Recorder};
use flower_sim::{SimDuration, SimTime};

use crate::flow::Layer;

/// What a layer's sensor reads.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorSpec {
    /// The metric to read.
    pub metric: MetricId,
    /// The statistic over the monitoring window.
    pub statistic: Statistic,
    /// Multiplier applied to the raw statistic (e.g. 100 to convert a
    /// fraction into a percentage so controller setpoints read
    /// naturally).
    pub scale: f64,
}

impl SensorSpec {
    /// Read the sensor over `[now − window, now)`.
    /// `None` when the window holds no datapoints yet.
    pub fn read(&self, store: &MetricsStore, now: SimTime, window: SimDuration) -> Option<f64> {
        store
            .window_stat(&self.metric, self.statistic, now - window, now)
            .map(|v| v * self.scale)
    }
}

/// One layer's control loop configuration.
pub struct LayerControllerConfig {
    /// Which layer this loop manages.
    pub layer: Layer,
    /// The controller (any [`Controller`] implementation).
    pub controller: Box<dyn Controller>,
    /// The sensor feeding it.
    pub sensor: SensorSpec,
    /// Minimum deployable units (share-analysis lower bound).
    pub min_units: f64,
    /// Maximum deployable units (share-analysis upper bound — "once the
    /// upper bound resource shares for each layer are identified, an
    /// adaptive controller at each of the three layers automatically
    /// adjusts resource allocations of that layer", §2).
    pub max_units: f64,
}

/// A record of one actuation decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActuationRecord {
    /// When the decision was taken.
    pub at: SimTime,
    /// The sensor reading that drove it.
    pub measurement: f64,
    /// The controller's raw (continuous) command.
    pub commanded: f64,
    /// What was actually applied after rounding/clamping.
    pub applied: f64,
    /// Whether the cloud accepted the actuation.
    pub accepted: bool,
}

/// One layer's running control loop.
struct LayerLoop {
    config: LayerControllerConfig,
    history: Vec<ActuationRecord>,
    rejected: u64,
}

/// The per-layer provisioning manager.
pub struct ProvisioningManager {
    loops: Vec<LayerLoop>,
    window: SimDuration,
    recorder: Recorder,
}

impl ProvisioningManager {
    /// Build a manager stepping each configured layer with the given
    /// monitoring window.
    pub fn new(configs: Vec<LayerControllerConfig>, window: SimDuration) -> ProvisioningManager {
        assert!(!window.is_zero(), "monitoring window must be non-zero");
        for c in &configs {
            assert!(
                c.min_units >= 1.0 && c.min_units <= c.max_units,
                "invalid bounds for {}: [{}, {}]",
                c.layer,
                c.min_units,
                c.max_units
            );
        }
        ProvisioningManager {
            loops: configs
                .into_iter()
                .map(|config| LayerLoop {
                    config,
                    history: Vec::new(),
                    rejected: 0,
                })
                .collect(),
            window,
            recorder: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder: every control round then emits
    /// one [`kind::CONTROL_DECISION`] event per layer (sensor reading,
    /// raw command, applied value, acceptance) plus a
    /// [`kind::CONTROL_GAIN`] event for controllers exposing a gain —
    /// the Eq. 7 gain trajectory and its gain-memory warm starts.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The monitoring window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The layers under management.
    pub fn layers(&self) -> Vec<Layer> {
        self.loops.iter().map(|l| l.config.layer).collect()
    }

    /// Actuation history of one layer.
    pub fn history(&self, layer: Layer) -> &[ActuationRecord] {
        self.loops
            .iter()
            .find(|l| l.config.layer == layer)
            .map(|l| l.history.as_slice())
            .unwrap_or(&[])
    }

    /// Rejected actuations (cloud said no: reshard in progress, decrease
    /// limit, …) for one layer.
    pub fn rejected(&self, layer: Layer) -> u64 {
        self.loops
            .iter()
            .find(|l| l.config.layer == layer)
            .map(|l| l.rejected)
            .unwrap_or(0)
    }

    /// Update one layer's actuator bounds at runtime — how the
    /// replanner's fresh resource shares reach the §3.3 loops. Returns
    /// `false` when the layer is not under management.
    pub fn set_bounds(&mut self, layer: Layer, min_units: f64, max_units: f64) -> bool {
        assert!(
            min_units >= 1.0 && min_units <= max_units,
            "invalid bounds for {layer}: [{min_units}, {max_units}]"
        );
        match self.loops.iter_mut().find(|l| l.config.layer == layer) {
            Some(l) => {
                l.config.min_units = min_units;
                l.config.max_units = max_units;
                true
            }
            None => false,
        }
    }

    /// Run one control round against the engine at time `now`:
    /// read each sensor, step each controller, apply each actuation.
    /// Returns the records of this round (one per layer that had data).
    pub fn step(&mut self, engine: &mut CloudEngine, now: SimTime) -> Vec<ActuationRecord> {
        let mut records = Vec::with_capacity(self.loops.len());
        for l in &mut self.loops {
            let Some(measurement) = l.config.sensor.read(engine.metrics(), now, self.window) else {
                continue; // no data yet — skip this round
            };
            let commanded = l.config.controller.step(measurement);
            // The continuous command, clamped to the share bounds; the
            // deployment gets its rounding.
            let desired = commanded.clamp(l.config.min_units, l.config.max_units);
            let applied = desired.round();

            let accepted = engine.actuate(l.config.layer, applied, now).is_ok();
            if !accepted {
                l.rejected += 1;
            }
            // Sync the controller with reality while preserving sub-unit
            // integral progress: when accepted, sync to the *continuous*
            // clamped command (anti-windup at the bounds only — rounding
            // is the deployment's concern, and syncing to the rounded
            // value would erase small accumulating adjustments). When
            // rejected, sync to the deployment's current target so an
            // in-flight change stays visible to the controller.
            let in_force = if accepted {
                desired
            } else {
                engine.target_units(l.config.layer).unwrap_or(desired)
            };
            l.config.controller.sync_actuator(in_force);

            let record = ActuationRecord {
                at: now,
                measurement,
                commanded,
                applied: in_force,
                accepted,
            };
            if self.recorder.is_enabled() {
                self.recorder.set_now(now);
                self.recorder.emit(
                    kind::CONTROL_DECISION,
                    &[
                        ("accepted", accepted.into()),
                        ("applied", in_force.into()),
                        ("commanded", commanded.into()),
                        ("layer", l.config.layer.label().into()),
                        ("measurement", measurement.into()),
                    ],
                );
                self.recorder.count("control.decisions", 1);
                if !accepted {
                    self.recorder.count("control.rejections", 1);
                }
                if let Some(gain) = l.config.controller.current_gain() {
                    let warm = l.config.controller.warm_started();
                    self.recorder.emit(
                        kind::CONTROL_GAIN,
                        &[
                            ("gain", gain.into()),
                            ("layer", l.config.layer.label().into()),
                            ("warm_start", warm.into()),
                        ],
                    );
                    if warm {
                        self.recorder.count("control.warm_starts", 1);
                    }
                }
            }
            l.history.push(record);
            records.push(record);
        }
        records
    }
}

/// Standard sensors for the paper's click-stream flow.
pub mod sensors {
    use super::SensorSpec;
    use flower_cloud::engine::metric_names::*;
    use flower_cloud::{MetricId, Statistic};

    /// Ingestion: average stream utilization over the window, as %.
    pub fn shard_utilization(stream: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_KINESIS, SHARD_UTILIZATION, stream),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// Analytics: average cluster CPU% over the window.
    pub fn cpu_utilization(cluster: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_STORM, CPU_UTILIZATION, cluster),
            statistic: Statistic::Average,
            scale: 1.0,
        }
    }

    /// Storage: average write utilization over the window, as %.
    pub fn write_utilization(table: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_DYNAMO, WRITE_UTILIZATION, table),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// Ingestion, enhanced shard-level monitoring: the *hottest* shard's
    /// utilization (window maximum), as %. Under skewed partition keys
    /// this sensor sees saturation the stream-level average hides.
    pub fn hot_shard_utilization(stream: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_KINESIS, MAX_SHARD_UTILIZATION, stream),
            statistic: Statistic::Maximum,
            scale: 100.0,
        }
    }

    /// Storage: average read utilization over the window, as %.
    pub fn read_utilization(table: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_DYNAMO, READ_UTILIZATION, table),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// Cache: average node utilization over the window, as %.
    pub fn cache_utilization(cluster: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_CACHE, CACHE_UTILIZATION, cluster),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// The sensor a [`flower_cloud::LayerService`] declares for itself
    /// ([`flower_cloud::LayerService::utilization_sensor`]) — how loops
    /// for registry layers get their sensors without per-layer wiring.
    pub fn for_service(service: &dyn flower_cloud::LayerService) -> SensorSpec {
        let probe = service.utilization_sensor();
        SensorSpec {
            metric: probe.metric,
            statistic: probe.statistic,
            scale: probe.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_cloud::{CloudEngine, EngineConfig};
    use flower_control::{AdaptiveConfig, AdaptiveController};
    use flower_sim::SimRng;
    use flower_workload::{ClickStreamConfig, ClickStreamGenerator, ConstantRate};

    fn engine() -> CloudEngine {
        CloudEngine::new(EngineConfig::default())
    }

    fn drive(engine: &mut CloudEngine, rate: f64, from_secs: u64, to_secs: u64, seed: u64) {
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
        let mut process = ConstantRate::new(rate);
        for s in from_secs..to_secs {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            engine.tick(&records, now, SimDuration::from_secs(1));
        }
    }

    fn analytics_loop() -> LayerControllerConfig {
        LayerControllerConfig {
            layer: Layer::ANALYTICS,
            controller: Box::new(AdaptiveController::new(AdaptiveConfig {
                setpoint: 60.0,
                u_init: 2.0,
                gamma: 0.01,
                l_min: 0.01,
                l_max: 1.0,
                l_init: 0.05,
                gain_memory: true,
                memory_len: 32,
            })),
            sensor: sensors::cpu_utilization("storm-cluster"),
            min_units: 1.0,
            max_units: 50.0,
        }
    }

    #[test]
    fn sensor_reads_window_average() {
        let mut e = engine();
        drive(&mut e, 1_000.0, 0, 60, 1);
        let sensor = sensors::cpu_utilization("storm-cluster");
        let v = sensor
            .read(
                e.metrics(),
                SimTime::from_secs(60),
                SimDuration::from_secs(30),
            )
            .unwrap();
        assert!(v > 4.8 && v < 100.0, "cpu={v}");
    }

    #[test]
    fn sensor_scale_is_applied() {
        let mut e = engine();
        drive(&mut e, 1_000.0, 0, 10, 2);
        let raw = sensors::shard_utilization("clickstream");
        let v = raw
            .read(
                e.metrics(),
                SimTime::from_secs(10),
                SimDuration::from_secs(10),
            )
            .unwrap();
        // 1,000 rec/s on 2 shards = 50% utilization after the ×100 scale.
        assert!((v - 50.0).abs() < 10.0, "utilization={v}");
    }

    #[test]
    fn empty_window_reads_none() {
        let e = engine();
        let sensor = sensors::cpu_utilization("storm-cluster");
        assert_eq!(
            sensor.read(
                e.metrics(),
                SimTime::from_secs(60),
                SimDuration::from_secs(30)
            ),
            None
        );
    }

    #[test]
    fn manager_scales_out_under_load() {
        let mut e = engine();
        let mut manager =
            ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        // Overload: 2 VMs serve 5,000 tuples/s; offer ~4,800 → cpu ≈ 96%.
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(3));
        // 6 shards so Kinesis passes the load through.
        e.scale_shards(6, SimTime::ZERO).unwrap();
        let mut process = ConstantRate::new(4_800.0);
        for s in 0..600u64 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            e.tick(&records, now, SimDuration::from_secs(1));
            if s % 30 == 29 {
                manager.step(&mut e, now);
            }
        }
        assert!(
            e.storm().target_vms() > 2,
            "should have scaled out, still at {}",
            e.storm().target_vms()
        );
        let history = manager.history(Layer::ANALYTICS);
        assert!(!history.is_empty());
        assert!(history.iter().all(|r| r.accepted));
    }

    #[test]
    fn manager_skips_rounds_without_data() {
        let mut e = engine();
        let mut manager =
            ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        let records = manager.step(&mut e, SimTime::from_secs(30));
        assert!(records.is_empty());
        assert!(manager.history(Layer::ANALYTICS).is_empty());
    }

    #[test]
    fn actuation_is_clamped_to_bounds() {
        let mut e = engine();
        let mut cfg = analytics_loop();
        cfg.max_units = 3.0;
        let mut manager = ProvisioningManager::new(vec![cfg], SimDuration::from_secs(10));
        e.scale_shards(8, SimTime::ZERO).unwrap();
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(4));
        let mut process = ConstantRate::new(7_000.0);
        for s in 0..600u64 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            e.tick(&records, now, SimDuration::from_secs(1));
            if s % 10 == 9 {
                manager.step(&mut e, now);
            }
        }
        assert!(e.storm().target_vms() <= 3, "clamped at 3 VMs");
        let history = manager.history(Layer::ANALYTICS);
        assert!(history.iter().all(|r| r.applied <= 3.0));
        // The raw command should exceed the clamp under this overload.
        assert!(history.iter().any(|r| r.commanded > 3.0));
    }

    #[test]
    fn layers_listed() {
        let manager = ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        assert_eq!(manager.layers(), vec![Layer::ANALYTICS]);
        assert_eq!(manager.window(), SimDuration::from_secs(30));
        assert_eq!(manager.rejected(Layer::ANALYTICS), 0);
        assert!(manager.history(Layer::STORAGE).is_empty());
    }

    #[test]
    #[should_panic(expected = "monitoring window must be non-zero")]
    fn zero_window_rejected() {
        ProvisioningManager::new(vec![], SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn inverted_bounds_rejected() {
        let mut cfg = analytics_loop();
        cfg.min_units = 10.0;
        cfg.max_units = 2.0;
        ProvisioningManager::new(vec![cfg], SimDuration::from_secs(30));
    }
}
