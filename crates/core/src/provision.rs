//! Resource Provisioning — paper §3.3.
//!
//! One sensor → controller → actuator loop per layer. "The sensor module
//! is responsible for providing resource usage stats as per the specified
//! monitoring window. The actuator is capable of executing the
//! controllers' commands, such as adding or removing VMs and increasing
//! or decreasing number of Shards." (§2)
//!
//! The [`ProvisioningManager`] owns one loop per registered layer and
//! steps them every monitoring period against the simulated cloud.
//! Actuator commands are rounded to deployable units, clamped to the
//! bounds the share analysis produced, and — crucially — the applied
//! value is synced back into the controller so it never winds up against
//! a limit it cannot cross. Actuations dispatch through the engine's
//! [`flower_cloud::LayerService`] registry, so a loop works for any
//! layer the engine knows about.

use flower_chaos::{FaultDecision, FaultInjector};
use flower_cloud::{CloudEngine, MetricId, MetricsStore, Statistic};
use flower_control::Controller;
use flower_obs::{kind, Recorder};
use flower_sim::{SimDuration, SimTime};

use crate::flow::Layer;

/// What a layer's sensor reads.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorSpec {
    /// The metric to read.
    pub metric: MetricId,
    /// The statistic over the monitoring window.
    pub statistic: Statistic,
    /// Multiplier applied to the raw statistic (e.g. 100 to convert a
    /// fraction into a percentage so controller setpoints read
    /// naturally).
    pub scale: f64,
}

impl SensorSpec {
    /// Read the sensor over `[now − window, now)`.
    /// `None` when the window holds no datapoints yet.
    pub fn read(&self, store: &MetricsStore, now: SimTime, window: SimDuration) -> Option<f64> {
        store
            .window_stat(&self.metric, self.statistic, now - window, now)
            .map(|v| v * self.scale)
    }
}

/// One layer's control loop configuration.
pub struct LayerControllerConfig {
    /// Which layer this loop manages.
    pub layer: Layer,
    /// The controller (any [`Controller`] implementation).
    pub controller: Box<dyn Controller>,
    /// The sensor feeding it.
    pub sensor: SensorSpec,
    /// Minimum deployable units (share-analysis lower bound).
    pub min_units: f64,
    /// Maximum deployable units (share-analysis upper bound — "once the
    /// upper bound resource shares for each layer are identified, an
    /// adaptive controller at each of the three layers automatically
    /// adjusts resource allocations of that layer", §2).
    pub max_units: f64,
}

/// A record of one actuation decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActuationRecord {
    /// When the decision was taken.
    pub at: SimTime,
    /// The sensor reading that drove it.
    pub measurement: f64,
    /// The controller's raw (continuous) command.
    pub commanded: f64,
    /// What was actually applied after rounding/clamping.
    pub applied: f64,
    /// Whether the cloud accepted the actuation.
    pub accepted: bool,
}

/// The resilience policy: bounded retries with deterministic
/// exponential backoff, actuation timeouts, and graceful degradation.
///
/// All durations are [`SimTime`]-based — no wall clock anywhere — so an
/// episode under faults replays byte-identically at any worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Retry attempts after a rejected actuation (0 disables retries).
    pub max_retries: u32,
    /// Backoff before the first retry; attempt `n` waits
    /// `backoff_base · backoff_factor^(n−1)`.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff per attempt.
    pub backoff_factor: u64,
    /// How long a delayed (accepted-but-not-landed) actuation may stay
    /// in flight before it is declared timed out.
    pub actuation_timeout: SimDuration,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_retries: 3,
            backoff_base: SimDuration::from_secs(5),
            backoff_factor: 2,
            actuation_timeout: SimDuration::from_secs(120),
        }
    }
}

impl ResilienceConfig {
    /// The deterministic backoff before retry attempt `attempt`
    /// (1-based): `base · factor^(attempt−1)`, saturating.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1);
        SimDuration::from_millis(
            self.backoff_base
                .as_millis()
                .saturating_mul(self.backoff_factor.saturating_pow(exp)),
        )
    }
}

/// A scheduled retry of a rejected actuation.
#[derive(Debug, Clone, Copy)]
struct RetryTicket {
    layer: Layer,
    target: f64,
    attempt: u32,
    due: SimTime,
}

/// An accepted actuation whose effect has not landed yet.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    layer: Layer,
    target: f64,
    deadline: SimTime,
}

/// Live retry/timeout bookkeeping for the resilience policy.
struct ResilienceRuntime {
    config: ResilienceConfig,
    retries: Vec<RetryTicket>,
    in_flight: Vec<InFlight>,
}

impl ResilienceRuntime {
    fn new(config: ResilienceConfig) -> ResilienceRuntime {
        ResilienceRuntime {
            config,
            retries: Vec::new(),
            in_flight: Vec::new(),
        }
    }

    /// A fresh control decision supersedes any retry chain for the
    /// layer — fresher information wins. In-flight actuations are *not*
    /// cancelled: the cloud-side operation is still pending whatever
    /// the loop decides next, so its timeout clock keeps running until
    /// it lands or expires.
    fn cancel(&mut self, layer: Layer) {
        self.retries.retain(|t| t.layer != layer);
    }

    fn schedule_retry(&mut self, layer: Layer, target: f64, now: SimTime) {
        if self.config.max_retries == 0 {
            return;
        }
        self.retries.push(RetryTicket {
            layer,
            target,
            attempt: 1,
            due: now + self.config.backoff(1),
        });
    }

    fn track_in_flight(&mut self, layer: Layer, target: f64, now: SimTime) {
        self.in_flight.push(InFlight {
            layer,
            target,
            deadline: now + self.config.actuation_timeout,
        });
    }

    /// A delayed actuation landed: stop its timeout clock.
    fn landed(&mut self, layer: Layer, target: f64) {
        if let Some(i) = self
            .in_flight
            .iter()
            .position(|f| f.layer == layer && (f.target - target).abs() < 1e-9)
        {
            self.in_flight.remove(i);
        }
    }
}

/// Degraded-mode bookkeeping while a layer's sensor is stale.
#[derive(Debug, Clone, Copy)]
struct DegradedState {
    /// When the sensor went quiet.
    since: SimTime,
    /// The last-known-good applied share being held.
    held: f64,
    /// Control rounds spent degraded so far.
    rounds: u64,
}

/// One layer's running control loop.
struct LayerLoop {
    config: LayerControllerConfig,
    history: Vec<ActuationRecord>,
    rejected: u64,
    degraded: Option<DegradedState>,
}

/// The per-layer provisioning manager.
pub struct ProvisioningManager {
    loops: Vec<LayerLoop>,
    window: SimDuration,
    recorder: Recorder,
    injector: Option<FaultInjector>,
    resilience: Option<ResilienceRuntime>,
}

impl ProvisioningManager {
    /// Build a manager stepping each configured layer with the given
    /// monitoring window.
    pub fn new(configs: Vec<LayerControllerConfig>, window: SimDuration) -> ProvisioningManager {
        assert!(!window.is_zero(), "monitoring window must be non-zero");
        for c in &configs {
            assert!(
                c.min_units >= 1.0 && c.min_units <= c.max_units,
                "invalid bounds for {}: [{}, {}]",
                c.layer,
                c.min_units,
                c.max_units
            );
        }
        ProvisioningManager {
            loops: configs
                .into_iter()
                .map(|config| LayerLoop {
                    config,
                    history: Vec::new(),
                    rejected: 0,
                    degraded: None,
                })
                .collect(),
            window,
            recorder: Recorder::disabled(),
            injector: None,
            resilience: None,
        }
    }

    /// Route every sensor read and actuation through a fault injector.
    /// Injected faults surface exactly like organic ones (rejections,
    /// shortfalls, silence), so the control loops cannot tell the
    /// difference — which is the point.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Enable the resilience policy: bounded deterministic retries,
    /// actuation timeouts, and degraded-mode holds on sensor dropout.
    pub fn set_resilience(&mut self, config: ResilienceConfig) {
        self.resilience = Some(ResilienceRuntime::new(config));
    }

    /// Inject a fault clause at runtime (`flower serve`'s
    /// `inject-fault` command). With an injector already installed the
    /// clause joins its plan — per-layer RNG streams keep their
    /// positions, so replaying the same command at the same sim time
    /// reproduces the same draws. Without one, a fresh injector seeded
    /// with `seed` is installed, along with the default resilience
    /// policy if none is active (faults without retries would wedge
    /// the loops in ways no operator asks for).
    pub fn inject_fault(&mut self, seed: u64, clause: flower_chaos::FaultClause) {
        match self.injector.as_mut() {
            Some(injector) => injector.push_clause(clause),
            None => {
                let plan = flower_chaos::FaultPlan {
                    seed,
                    clauses: vec![clause],
                };
                let mut injector = FaultInjector::new(plan);
                injector.set_recorder(self.recorder.clone());
                self.injector = Some(injector);
            }
        }
        if self.resilience.is_none() {
            self.set_resilience(ResilienceConfig::default());
        }
    }

    /// Whether `layer` is currently degraded (sensor stale, share held).
    pub fn degraded(&self, layer: Layer) -> bool {
        self.loops
            .iter()
            .find(|l| l.config.layer == layer)
            .is_some_and(|l| l.degraded.is_some())
    }

    /// The attached fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Attach an observability recorder: every control round then emits
    /// one [`kind::CONTROL_DECISION`] event per layer (sensor reading,
    /// raw command, applied value, acceptance) plus a
    /// [`kind::CONTROL_GAIN`] event for controllers exposing a gain —
    /// the Eq. 7 gain trajectory and its gain-memory warm starts.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The monitoring window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The layers under management.
    pub fn layers(&self) -> Vec<Layer> {
        self.loops.iter().map(|l| l.config.layer).collect()
    }

    /// Actuation history of one layer.
    pub fn history(&self, layer: Layer) -> &[ActuationRecord] {
        self.loops
            .iter()
            .find(|l| l.config.layer == layer)
            .map(|l| l.history.as_slice())
            .unwrap_or(&[])
    }

    /// Rejected actuations (cloud said no: reshard in progress, decrease
    /// limit, …) for one layer.
    pub fn rejected(&self, layer: Layer) -> u64 {
        self.loops
            .iter()
            .find(|l| l.config.layer == layer)
            .map(|l| l.rejected)
            .unwrap_or(0)
    }

    /// Update one layer's actuator bounds at runtime — how the
    /// replanner's fresh resource shares reach the §3.3 loops. Returns
    /// `false` when the layer is not under management.
    pub fn set_bounds(&mut self, layer: Layer, min_units: f64, max_units: f64) -> bool {
        assert!(
            min_units >= 1.0 && min_units <= max_units,
            "invalid bounds for {layer}: [{min_units}, {max_units}]"
        );
        match self.loops.iter_mut().find(|l| l.config.layer == layer) {
            Some(l) => {
                l.config.min_units = min_units;
                l.config.max_units = max_units;
                true
            }
            None => false,
        }
    }

    /// Run one control round against the engine at time `now`:
    /// read each sensor, step each controller, apply each actuation.
    /// Returns the records of this round (one per layer that had data).
    pub fn step(&mut self, engine: &mut CloudEngine, now: SimTime) -> Vec<ActuationRecord> {
        let mut records = Vec::with_capacity(self.loops.len());
        for l in &mut self.loops {
            let raw = l.config.sensor.read(engine.metrics(), now, self.window);
            let sensed = match (raw, self.injector.as_mut()) {
                (Some(v), Some(inj)) => inj.on_sense(l.config.layer, v, now),
                (v, _) => v,
            };
            let Some(measurement) = sensed else {
                // No data. With the resilience policy on, enter (or stay
                // in) degraded mode: hold the last-known-good share and
                // freeze the controller so Eq. 7's gain memory is not
                // corrupted by a stale window. Otherwise, legacy skip.
                if self.resilience.is_some() {
                    degraded_round(l, &self.recorder, now);
                }
                continue;
            };
            if let Some(d) = l.degraded.take() {
                // Fresh data after a stale spell: resume control.
                if self.recorder.is_enabled() {
                    self.recorder.set_now(now);
                    self.recorder.emit(
                        kind::RESILIENCE_DEGRADED,
                        &[
                            ("held", d.held.into()),
                            ("layer", l.config.layer.label().into()),
                            ("phase", "exit".into()),
                            ("rounds", d.rounds.into()),
                            ("stale_ms", now.since(d.since).as_millis().into()),
                        ],
                    );
                    self.recorder.count("resilience.recoveries", 1);
                }
            }
            let commanded = l.config.controller.step(measurement);
            // The continuous command, clamped to the share bounds; the
            // deployment gets its rounding.
            let desired = commanded.clamp(l.config.min_units, l.config.max_units);
            let applied = desired.round();

            // A fresh decision supersedes any retry chain in flight.
            if let Some(res) = self.resilience.as_mut() {
                res.cancel(l.config.layer);
            }
            let decision = match self.injector.as_mut() {
                Some(inj) => {
                    let from = engine.actuator_units(l.config.layer).unwrap_or(applied);
                    inj.on_actuate(l.config.layer, from, applied, now)
                }
                None => FaultDecision::Pass,
            };
            let (accepted, delayed) = match decision {
                FaultDecision::Pass => {
                    (engine.actuate(l.config.layer, applied, now).is_ok(), false)
                }
                FaultDecision::Short { target } => {
                    (engine.actuate(l.config.layer, target, now).is_ok(), false)
                }
                FaultDecision::Reject => (false, false),
                // Accepted but not landed: `poll` releases it when due.
                FaultDecision::Delay { .. } => (true, true),
            };
            if !accepted {
                l.rejected += 1;
                if let Some(res) = self.resilience.as_mut() {
                    res.schedule_retry(l.config.layer, applied, now);
                }
            }
            if delayed {
                if let Some(res) = self.resilience.as_mut() {
                    res.track_in_flight(l.config.layer, applied, now);
                }
            }
            // Sync the controller with reality while preserving sub-unit
            // integral progress: when accepted, sync to the *continuous*
            // clamped command (anti-windup at the bounds only — rounding
            // is the deployment's concern, and syncing to the rounded
            // value would erase small accumulating adjustments). When
            // rejected — or landed short — sync to the deployment's
            // current target so the shortfall stays visible to the
            // controller. A delayed actuation counts as accepted: the
            // command is in flight.
            let in_force = if (matches!(decision, FaultDecision::Pass) && accepted) || delayed {
                desired
            } else {
                engine.target_units(l.config.layer).unwrap_or(desired)
            };
            l.config.controller.sync_actuator(in_force);

            let record = ActuationRecord {
                at: now,
                measurement,
                commanded,
                applied: in_force,
                accepted,
            };
            if self.recorder.is_enabled() {
                self.recorder.set_now(now);
                self.recorder.emit(
                    kind::CONTROL_DECISION,
                    &[
                        ("accepted", accepted.into()),
                        ("applied", in_force.into()),
                        ("commanded", commanded.into()),
                        ("layer", l.config.layer.label().into()),
                        ("measurement", measurement.into()),
                    ],
                );
                self.recorder.count("control.decisions", 1);
                if !accepted {
                    self.recorder.count("control.rejections", 1);
                }
                if let Some(gain) = l.config.controller.current_gain() {
                    let warm = l.config.controller.warm_started();
                    self.recorder.emit(
                        kind::CONTROL_GAIN,
                        &[
                            ("gain", gain.into()),
                            ("layer", l.config.layer.label().into()),
                            ("warm_start", warm.into()),
                        ],
                    );
                    if warm {
                        self.recorder.count("control.warm_starts", 1);
                    }
                }
            }
            l.history.push(record);
            records.push(record);
        }
        records
    }

    /// Per-tick housekeeping between control rounds: land delayed
    /// actuations that have come due, expire in-flight actuations past
    /// their timeout, and fire due retries with deterministic
    /// exponential backoff. A no-op unless a fault injector or the
    /// resilience policy is attached — the zero-fault path stays
    /// byte-identical to a manager without either.
    pub fn poll(&mut self, engine: &mut CloudEngine, now: SimTime) {
        if self.injector.is_none() && self.resilience.is_none() {
            return;
        }
        // 1. Delayed actuations landing now. The engine traces each as
        //    an ordinary resize; `landed` stops its timeout clock.
        if let Some(inj) = self.injector.as_mut() {
            for d in inj.due_resizes(now) {
                if engine.actuate(d.layer, d.target, now).is_err() {
                    continue; // the service itself refused the late landing
                }
                if let Some(res) = self.resilience.as_mut() {
                    res.landed(d.layer, d.target);
                }
            }
        }
        let Some(res) = self.resilience.as_mut() else {
            return;
        };
        // 2. In-flight actuations past their deadline.
        let mut timed_out = Vec::new();
        res.in_flight.retain(|f| {
            if f.deadline <= now {
                timed_out.push(*f);
                false
            } else {
                true
            }
        });
        for f in timed_out {
            if self.recorder.is_enabled() {
                self.recorder.set_now(now);
                self.recorder.emit(
                    kind::RESILIENCE_TIMEOUT,
                    &[
                        ("layer", f.layer.label().into()),
                        ("target", f.target.into()),
                    ],
                );
                self.recorder.count("resilience.timeouts", 1);
            }
        }
        // 3. Due retries. Each re-enters the fault path — a retry can be
        //    rejected again (and back off further) or be delayed.
        let mut due = Vec::new();
        res.retries.retain(|t| {
            if t.due <= now {
                due.push(*t);
                false
            } else {
                true
            }
        });
        for t in due {
            let decision = match self.injector.as_mut() {
                Some(inj) => {
                    let from = engine.actuator_units(t.layer).unwrap_or(t.target);
                    inj.on_actuate(t.layer, from, t.target, now)
                }
                None => FaultDecision::Pass,
            };
            let (accepted, delayed) = match decision {
                FaultDecision::Pass => (engine.actuate(t.layer, t.target, now).is_ok(), false),
                FaultDecision::Short { target } => {
                    (engine.actuate(t.layer, target, now).is_ok(), false)
                }
                FaultDecision::Reject => (false, false),
                FaultDecision::Delay { .. } => (true, true),
            };
            if self.recorder.is_enabled() {
                self.recorder.set_now(now);
                self.recorder.emit(
                    kind::RESILIENCE_RETRY,
                    &[
                        ("accepted", accepted.into()),
                        ("attempt", t.attempt.into()),
                        ("layer", t.layer.label().into()),
                        ("target", t.target.into()),
                    ],
                );
                self.recorder.count("resilience.retries", 1);
            }
            let Some(res) = self.resilience.as_mut() else {
                return;
            };
            if delayed {
                res.track_in_flight(t.layer, t.target, now);
            }
            if !accepted {
                if t.attempt < res.config.max_retries {
                    let attempt = t.attempt + 1;
                    res.retries.push(RetryTicket {
                        layer: t.layer,
                        target: t.target,
                        attempt,
                        due: now + res.config.backoff(attempt),
                    });
                } else if self.recorder.is_enabled() {
                    self.recorder.count("resilience.exhausted", 1);
                }
            }
        }
    }

    /// The earliest instant at which [`ProvisioningManager::poll`] has
    /// work to do: the soonest of any delayed-resize landing, in-flight
    /// actuation deadline, or retry due time. `None` means polling is a
    /// no-op until a future control decision creates new work. After a
    /// `poll(now)` drained everything due, any remaining due is strictly
    /// in the future.
    pub fn next_due(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(match next {
                Some(cur) => cur.min(t),
                None => t,
            });
        };
        if let Some(inj) = self.injector.as_ref() {
            for d in inj.pending_delayed() {
                consider(d.due);
            }
        }
        if let Some(res) = self.resilience.as_ref() {
            for f in &res.in_flight {
                consider(f.deadline);
            }
            for t in &res.retries {
                consider(t.due);
            }
        }
        next
    }
}

/// One degraded control round for `l`: enter degraded mode on the first
/// stale window (holding the last-known-good applied share), then hold
/// the controller — neither Eq. 6 nor Eq. 7 runs, so the adaptive gain
/// `l_k` and its memory stay frozen exactly as they were.
fn degraded_round(l: &mut LayerLoop, recorder: &Recorder, now: SimTime) {
    match l.degraded.as_mut() {
        Some(d) => d.rounds += 1,
        None => {
            let Some(last) = l.history.last() else {
                // Warm-up: no last-known-good share to hold yet, and the
                // controller has never stepped — nothing to freeze.
                return;
            };
            let held = last.applied;
            l.degraded = Some(DegradedState {
                since: now,
                held,
                rounds: 1,
            });
            if recorder.is_enabled() {
                recorder.set_now(now);
                recorder.emit(
                    kind::RESILIENCE_DEGRADED,
                    &[
                        ("held", held.into()),
                        ("layer", l.config.layer.label().into()),
                        ("phase", "enter".into()),
                    ],
                );
                recorder.count("resilience.degraded_entries", 1);
            }
        }
    }
    l.config.controller.hold();
}

/// Standard sensors for the paper's click-stream flow.
pub mod sensors {
    use super::SensorSpec;
    use flower_cloud::engine::metric_names::*;
    use flower_cloud::{MetricId, Statistic};

    /// Ingestion: average stream utilization over the window, as %.
    pub fn shard_utilization(stream: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_KINESIS, SHARD_UTILIZATION, stream),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// Analytics: average cluster CPU% over the window.
    pub fn cpu_utilization(cluster: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_STORM, CPU_UTILIZATION, cluster),
            statistic: Statistic::Average,
            scale: 1.0,
        }
    }

    /// Storage: average write utilization over the window, as %.
    pub fn write_utilization(table: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_DYNAMO, WRITE_UTILIZATION, table),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// Ingestion, enhanced shard-level monitoring: the *hottest* shard's
    /// utilization (window maximum), as %. Under skewed partition keys
    /// this sensor sees saturation the stream-level average hides.
    pub fn hot_shard_utilization(stream: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_KINESIS, MAX_SHARD_UTILIZATION, stream),
            statistic: Statistic::Maximum,
            scale: 100.0,
        }
    }

    /// Storage: average read utilization over the window, as %.
    pub fn read_utilization(table: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_DYNAMO, READ_UTILIZATION, table),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// Cache: average node utilization over the window, as %.
    pub fn cache_utilization(cluster: &str) -> SensorSpec {
        SensorSpec {
            metric: MetricId::new(NS_CACHE, CACHE_UTILIZATION, cluster),
            statistic: Statistic::Average,
            scale: 100.0,
        }
    }

    /// The sensor a [`flower_cloud::LayerService`] declares for itself
    /// ([`flower_cloud::LayerService::utilization_sensor`]) — how loops
    /// for registry layers get their sensors without per-layer wiring.
    pub fn for_service(service: &dyn flower_cloud::LayerService) -> SensorSpec {
        let probe = service.utilization_sensor();
        SensorSpec {
            metric: probe.metric,
            statistic: probe.statistic,
            scale: probe.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_cloud::{CloudEngine, EngineConfig};
    use flower_control::{AdaptiveConfig, AdaptiveController};
    use flower_sim::SimRng;
    use flower_workload::{ClickStreamConfig, ClickStreamGenerator, ConstantRate};

    fn engine() -> CloudEngine {
        CloudEngine::new(EngineConfig::default())
    }

    fn drive(engine: &mut CloudEngine, rate: f64, from_secs: u64, to_secs: u64, seed: u64) {
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
        let mut process = ConstantRate::new(rate);
        for s in from_secs..to_secs {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            engine.tick(&records, now, SimDuration::from_secs(1));
        }
    }

    fn analytics_loop() -> LayerControllerConfig {
        LayerControllerConfig {
            layer: Layer::ANALYTICS,
            controller: Box::new(AdaptiveController::new(AdaptiveConfig {
                setpoint: 60.0,
                u_init: 2.0,
                gamma: 0.01,
                l_min: 0.01,
                l_max: 1.0,
                l_init: 0.05,
                gain_memory: true,
                memory_len: 32,
            })),
            sensor: sensors::cpu_utilization("storm-cluster"),
            min_units: 1.0,
            max_units: 50.0,
        }
    }

    #[test]
    fn sensor_reads_window_average() {
        let mut e = engine();
        drive(&mut e, 1_000.0, 0, 60, 1);
        let sensor = sensors::cpu_utilization("storm-cluster");
        let v = sensor
            .read(
                e.metrics(),
                SimTime::from_secs(60),
                SimDuration::from_secs(30),
            )
            .unwrap();
        assert!(v > 4.8 && v < 100.0, "cpu={v}");
    }

    #[test]
    fn sensor_scale_is_applied() {
        let mut e = engine();
        drive(&mut e, 1_000.0, 0, 10, 2);
        let raw = sensors::shard_utilization("clickstream");
        let v = raw
            .read(
                e.metrics(),
                SimTime::from_secs(10),
                SimDuration::from_secs(10),
            )
            .unwrap();
        // 1,000 rec/s on 2 shards = 50% utilization after the ×100 scale.
        assert!((v - 50.0).abs() < 10.0, "utilization={v}");
    }

    #[test]
    fn empty_window_reads_none() {
        let e = engine();
        let sensor = sensors::cpu_utilization("storm-cluster");
        assert_eq!(
            sensor.read(
                e.metrics(),
                SimTime::from_secs(60),
                SimDuration::from_secs(30)
            ),
            None
        );
    }

    #[test]
    fn manager_scales_out_under_load() {
        let mut e = engine();
        let mut manager =
            ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        // Overload: 2 VMs serve 5,000 tuples/s; offer ~4,800 → cpu ≈ 96%.
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(3));
        // 6 shards so Kinesis passes the load through.
        e.scale_shards(6, SimTime::ZERO).unwrap();
        let mut process = ConstantRate::new(4_800.0);
        for s in 0..600u64 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            e.tick(&records, now, SimDuration::from_secs(1));
            if s % 30 == 29 {
                manager.step(&mut e, now);
            }
        }
        assert!(
            e.storm().target_vms() > 2,
            "should have scaled out, still at {}",
            e.storm().target_vms()
        );
        let history = manager.history(Layer::ANALYTICS);
        assert!(!history.is_empty());
        assert!(history.iter().all(|r| r.accepted));
    }

    #[test]
    fn manager_skips_rounds_without_data() {
        let mut e = engine();
        let mut manager =
            ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        let records = manager.step(&mut e, SimTime::from_secs(30));
        assert!(records.is_empty());
        assert!(manager.history(Layer::ANALYTICS).is_empty());
    }

    #[test]
    fn actuation_is_clamped_to_bounds() {
        let mut e = engine();
        let mut cfg = analytics_loop();
        cfg.max_units = 3.0;
        let mut manager = ProvisioningManager::new(vec![cfg], SimDuration::from_secs(10));
        e.scale_shards(8, SimTime::ZERO).unwrap();
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(4));
        let mut process = ConstantRate::new(7_000.0);
        for s in 0..600u64 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            e.tick(&records, now, SimDuration::from_secs(1));
            if s % 10 == 9 {
                manager.step(&mut e, now);
            }
        }
        assert!(e.storm().target_vms() <= 3, "clamped at 3 VMs");
        let history = manager.history(Layer::ANALYTICS);
        assert!(history.iter().all(|r| r.applied <= 3.0));
        // The raw command should exceed the clamp under this overload.
        assert!(history.iter().any(|r| r.commanded > 3.0));
    }

    #[test]
    fn layers_listed() {
        let manager = ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        assert_eq!(manager.layers(), vec![Layer::ANALYTICS]);
        assert_eq!(manager.window(), SimDuration::from_secs(30));
        assert_eq!(manager.rejected(Layer::ANALYTICS), 0);
        assert!(manager.history(Layer::STORAGE).is_empty());
    }

    #[test]
    #[should_panic(expected = "monitoring window must be non-zero")]
    fn zero_window_rejected() {
        ProvisioningManager::new(vec![], SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn inverted_bounds_rejected() {
        let mut cfg = analytics_loop();
        cfg.min_units = 10.0;
        cfg.max_units = 2.0;
        ProvisioningManager::new(vec![cfg], SimDuration::from_secs(30));
    }

    // ----- resilience policy ---------------------------------------

    use flower_chaos::{FaultClause, FaultInjector, FaultKind, FaultPlan};
    use flower_obs::{FieldValue, Recorder};

    /// 6 shards so Kinesis passes ~4,800 rec/s through to Storm, pushing
    /// CPU past the 60% setpoint — every control round wants scale-out.
    fn overloaded_engine(to_secs: u64) -> CloudEngine {
        let mut e = engine();
        e.scale_shards(6, SimTime::ZERO).unwrap();
        drive(&mut e, 4_800.0, 0, to_secs, 5);
        e
    }

    fn analytics_plan(kind: FaultKind, from_s: u64, until_s: u64) -> FaultPlan {
        FaultPlan {
            seed: 21,
            clauses: vec![FaultClause {
                layer: Some("analytics".to_owned()),
                from: SimTime::from_secs(from_s),
                until: SimTime::from_secs(until_s),
                kind,
            }],
        }
    }

    fn resilient_manager(
        plan: FaultPlan,
        config: ResilienceConfig,
    ) -> (ProvisioningManager, Recorder) {
        let mut manager =
            ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        let recorder = Recorder::with_capacity(4_096);
        manager.set_recorder(recorder.clone());
        let mut injector = FaultInjector::new(plan);
        injector.set_recorder(recorder.clone());
        manager.set_fault_injector(injector);
        manager.set_resilience(config);
        (manager, recorder)
    }

    #[test]
    fn rejection_schedules_and_exhausts_retries() {
        let mut e = overloaded_engine(120);
        let (mut manager, recorder) = resilient_manager(
            analytics_plan(FaultKind::Reject { p: 1.0 }, 0, 3_600),
            ResilienceConfig {
                max_retries: 2,
                backoff_base: SimDuration::from_secs(5),
                backoff_factor: 2,
                actuation_timeout: SimDuration::from_secs(120),
            },
        );
        let now = SimTime::from_secs(120);
        manager.step(&mut e, now);
        assert_eq!(manager.rejected(Layer::ANALYTICS), 1);
        assert_eq!(recorder.counter("chaos.faults"), 1);
        // Attempt 1 due at +5s, attempt 2 at +5s+10s; both re-rejected.
        manager.poll(&mut e, now + SimDuration::from_secs(5));
        assert_eq!(recorder.counter("resilience.retries"), 1);
        manager.poll(&mut e, now + SimDuration::from_secs(15));
        assert_eq!(recorder.counter("resilience.retries"), 2);
        assert_eq!(recorder.counter("resilience.exhausted"), 1);
        // Chain exhausted: nothing more ever fires.
        manager.poll(&mut e, now + SimDuration::from_secs(600));
        assert_eq!(recorder.counter("resilience.retries"), 2);
    }

    #[test]
    fn retry_that_lands_clears_the_chain() {
        let mut e = overloaded_engine(120);
        // Rejections stop at t=121s, so the retry at t=125s succeeds.
        let (mut manager, recorder) = resilient_manager(
            analytics_plan(FaultKind::Reject { p: 1.0 }, 0, 121),
            ResilienceConfig::default(),
        );
        let now = SimTime::from_secs(120);
        manager.step(&mut e, now);
        assert_eq!(manager.rejected(Layer::ANALYTICS), 1);
        manager.poll(&mut e, SimTime::from_secs(125));
        assert_eq!(recorder.counter("resilience.retries"), 1);
        assert_eq!(recorder.counter("resilience.exhausted"), 0);
        let retry = recorder
            .events()
            .iter()
            .find(|ev| ev.kind == kind::RESILIENCE_RETRY)
            .cloned()
            .unwrap();
        assert_eq!(retry.fields.get("accepted"), Some(&FieldValue::Bool(true)));
        manager.poll(&mut e, SimTime::from_secs(600));
        assert_eq!(recorder.counter("resilience.retries"), 1, "chain cleared");
    }

    #[test]
    fn dropout_enters_holds_and_exits_degraded_mode() {
        let mut e = overloaded_engine(240);
        let (mut manager, recorder) = resilient_manager(
            analytics_plan(FaultKind::Dropout { p: 1.0 }, 121, 181),
            ResilienceConfig::default(),
        );
        // Round 1: healthy — establishes the last-known-good share.
        manager.step(&mut e, SimTime::from_secs(120));
        assert!(!manager.degraded(Layer::ANALYTICS));
        let held = manager.history(Layer::ANALYTICS).last().unwrap().applied;
        let target_before = e.target_units(Layer::ANALYTICS).unwrap();
        // Rounds 2–3: sensor dark — degraded, share held, no actuation.
        manager.step(&mut e, SimTime::from_secs(150));
        manager.step(&mut e, SimTime::from_secs(180));
        assert!(manager.degraded(Layer::ANALYTICS));
        assert_eq!(manager.history(Layer::ANALYTICS).len(), 1);
        assert_eq!(e.target_units(Layer::ANALYTICS).unwrap(), target_before);
        assert_eq!(recorder.counter("resilience.degraded_entries"), 1);
        // Round 4: data is back — exit, control resumes.
        manager.step(&mut e, SimTime::from_secs(210));
        assert!(!manager.degraded(Layer::ANALYTICS));
        assert_eq!(recorder.counter("resilience.recoveries"), 1);
        let exit = recorder
            .events()
            .iter()
            .filter(|ev| ev.kind == kind::RESILIENCE_DEGRADED)
            .find(|ev| ev.str("phase") == Some("exit"))
            .cloned()
            .unwrap();
        assert_eq!(exit.f64("held"), Some(held));
        assert_eq!(exit.f64("rounds"), Some(2.0));
        assert_eq!(manager.history(Layer::ANALYTICS).len(), 2);
    }

    #[test]
    fn delayed_actuation_times_out_then_lands() {
        let mut e = overloaded_engine(120);
        let (mut manager, recorder) = resilient_manager(
            analytics_plan(
                FaultKind::Delay {
                    p: 1.0,
                    delay: SimDuration::from_secs(150),
                },
                0,
                3_600,
            ),
            ResilienceConfig::default(), // 120s timeout < 150s delay
        );
        let now = SimTime::from_secs(120);
        let records = manager.step(&mut e, now);
        assert!(records[0].accepted, "delayed counts as accepted");
        let target_before = e.target_units(Layer::ANALYTICS).unwrap();
        manager.poll(&mut e, now + SimDuration::from_secs(120));
        assert_eq!(recorder.counter("resilience.timeouts"), 1);
        assert_eq!(e.target_units(Layer::ANALYTICS).unwrap(), target_before);
        manager.poll(&mut e, now + SimDuration::from_secs(150));
        assert!(e.target_units(Layer::ANALYTICS).unwrap() > target_before);
    }

    #[test]
    fn poll_without_faults_or_resilience_is_a_noop() {
        let mut e = engine();
        let mut manager =
            ProvisioningManager::new(vec![analytics_loop()], SimDuration::from_secs(30));
        manager.poll(&mut e, SimTime::from_secs(60));
        assert!(manager.injector().is_none());
        assert!(!manager.degraded(Layer::ANALYTICS));
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let config = ResilienceConfig::default();
        assert_eq!(config.backoff(1), SimDuration::from_secs(5));
        assert_eq!(config.backoff(2), SimDuration::from_secs(10));
        assert_eq!(config.backoff(3), SimDuration::from_secs(20));
        assert_eq!(config.backoff(0), SimDuration::from_secs(5));
        // Saturates instead of overflowing.
        let _ = config.backoff(u32::MAX);
    }
}
