//! Periodic re-planning — closing the loop between §3.1, §3.2 and §3.3.
//!
//! The paper's workflow description (§2) notes that "the resource shares
//! can be determined with respect to arbitrary time windows": Flower does
//! not learn dependencies once — it re-analyzes recent workload logs,
//! re-solves the share problem, and feeds the new upper bounds to the
//! per-layer controllers. This module implements that outer loop.
//!
//! The [`Replanner`] runs at a configurable cadence (much slower than the
//! monitoring period — hours vs seconds in production, minutes vs tens
//! of seconds in simulation). Each round it:
//!
//! 1. re-runs the [`DependencyAnalyzer`] over the trailing analysis
//!    window;
//! 2. converts each confirmed dependency into a [`Constraint`] ratio
//!    band (the paper's Eq. 5) anchored at the layers' observed deployed
//!    resource levels;
//! 3. re-solves the share problem under the budget with NSGA-II;
//! 4. publishes the selected plan's shares as the new per-layer bounds.

use flower_cloud::{MetricId, MetricsStore, Statistic};
use flower_nsga2::{
    DominanceMatrix, EpsilonArchive, Executor, Individual, Nsga2Config, SoaPopulation,
};
use flower_obs::{kind, Recorder};
use flower_sim::{SimDuration, SimTime};

use crate::dependency::DependencyAnalyzer;
use crate::error::FlowerError;
use crate::flow::Layer;
use crate::share::{ResourceShares, ShareAnalyzer, ShareProblem};

/// How the replanner picks one plan from the Pareto front.
///
/// The paper: "one solution which is best suited to the problem in
/// practice must be identified either manually by the user or randomly
/// by the system."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSelection {
    /// The plan with the largest ingestion share.
    MaxIngestion,
    /// The plan with the largest analytics share.
    MaxAnalytics,
    /// The plan with the largest storage share.
    MaxStorage,
    /// The plan with the most even spend across layers.
    Balanced,
}

impl PlanSelection {
    /// Apply the policy to a non-empty plan list.
    #[allow(clippy::expect_used)] // invariant stated in the expect message
    pub fn pick<'a>(&self, plans: &'a [ResourceShares]) -> &'a ResourceShares {
        assert!(!plans.is_empty(), "cannot select from an empty plan list");
        let max_of = |layer: Layer| {
            plans
                .iter()
                .max_by(|a, b| a.of(layer).total_cmp(&b.of(layer)))
        };
        let picked = match self {
            PlanSelection::MaxIngestion => max_of(Layer::INGESTION),
            PlanSelection::MaxAnalytics => max_of(Layer::ANALYTICS),
            PlanSelection::MaxStorage => max_of(Layer::STORAGE),
            PlanSelection::Balanced => plans
                .iter()
                .min_by(|a, b| balance_score(a).total_cmp(&balance_score(b))),
        };
        picked.expect("plans verified non-empty by the assert above")
    }
}

/// Hourly list price of one unit of `layer`'s resource. Unknown layers
/// price at zero — they then carry no weight in the balance score.
fn layer_unit_price(prices: &flower_cloud::PriceList, layer: Layer) -> f64 {
    if layer == Layer::INGESTION {
        prices.shard_hour
    } else if layer == Layer::ANALYTICS {
        prices.vm_hour
    } else if layer == Layer::STORAGE {
        prices.wcu_hour
    } else if layer == Layer::CACHE {
        prices.cache_node_hour
    } else {
        0.0
    }
}

/// Spread of per-layer spend (smaller = more even), over whatever layers
/// the plan covers (ascending layer order).
fn balance_score(plan: &ResourceShares) -> f64 {
    let prices = flower_cloud::PriceList::default();
    let spends: Vec<f64> = plan
        .shares
        .iter()
        .map(|(layer, units)| units * layer_unit_price(&prices, layer))
        .collect();
    if spends.is_empty() {
        return 0.0;
    }
    let mean = spends.iter().sum::<f64>() / spends.len() as f64;
    spends.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
}

/// Configuration of the re-planning loop.
#[derive(Debug, Clone)]
pub struct ReplanConfig {
    /// Hourly budget handed to the share analyzer.
    pub budget: f64,
    /// How often to re-plan.
    pub cadence: SimDuration,
    /// Length of the trailing analysis window.
    pub analysis_window: SimDuration,
    /// Plan-selection policy.
    pub selection: PlanSelection,
    /// Half-width of the Eq. 5 equality band, as a fraction of the
    /// predicted value (e.g. 0.5 → ±50 %).
    pub dependency_band: f64,
    /// NSGA-II settings for each re-solve.
    pub nsga2: Nsga2Config,
    /// Evaluation fan-out worker count for each re-solve; `None` uses
    /// the environment's (`FLOWER_THREADS`). Fronts are bit-identical
    /// for every worker count — pinning makes that property testable
    /// without mutating process-global environment state.
    pub workers: Option<usize>,
    /// Warm-start consecutive re-solves from the previous rounds'
    /// epsilon-archived Pareto front (falling back to a cold start
    /// whenever the layer set or constraint shape changed). Warm rounds
    /// run [`ReplanConfig::warm_generations`] generations instead of
    /// the full `nsga2.generations`. Disable to pin byte-identical
    /// cold-start traces (e.g. against a pre-warm-start golden
    /// fixture).
    pub warm_start: bool,
    /// Generation budget of a warm-started re-solve. Seeded from the
    /// previous front, NSGA-II needs only a refinement pass, not a full
    /// search from uniform noise.
    pub warm_generations: usize,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(30),
            analysis_window: SimDuration::from_mins(30),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 60,
                generations: 60,
                ..Default::default()
            },
            workers: None,
            warm_start: true,
            warm_generations: 12,
        }
    }
}

/// One completed re-planning round.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// When the round ran.
    pub at: SimTime,
    /// Dependencies confirmed in the analysis window.
    pub dependencies: usize,
    /// The plan chosen (new per-layer upper bounds).
    pub plan: ResourceShares,
    /// Size of the Pareto front the plan was chosen from.
    pub front_size: usize,
    /// Whether this round's solve was warm-started from the previous
    /// rounds' archived front (`false` on cold starts — the first
    /// round, a constraint-shape change, or `warm_start` disabled).
    pub warm: bool,
}

/// The shape of a share problem for warm-start compatibility: the layer
/// list (the genome encoding) and the sorted multiset of per-constraint
/// layer couplings. Coefficient *values* are free to move between
/// rounds (that is what re-evaluation + incremental dominance absorb),
/// and so is the *order* constraints are listed in — dependency
/// enumeration order varies by analysis window, but a reorder of the
/// same couplings leaves the feasible region and genome space intact.
/// A genuine change of shape means the archived genomes live in a
/// different space and the replanner must cold-start.
type ProblemSignature = (Vec<Layer>, Vec<Vec<Layer>>);

fn problem_signature(problem: &ShareProblem) -> ProblemSignature {
    let mut shapes: Vec<Vec<Layer>> = problem
        .constraints
        .iter()
        .map(|c| c.terms.iter().map(|&(layer, _)| layer).collect())
        .collect();
    shapes.sort();
    (problem.layers.clone(), shapes)
}

/// Objective-space box edge of the warm-start archive. Plans deploy at
/// integer resolution, so solutions within half a unit of each other
/// are duplicates for seeding purposes.
const WARM_ARCHIVE_EPSILON: f64 = 0.5;
/// Entry cap of the warm-start archive — bounds the seed set (and the
/// incremental dominance matrix) regardless of how wide fronts get.
const WARM_ARCHIVE_CAPACITY: usize = 64;

/// Carry-over state between warm-started rounds: the epsilon archive of
/// front points, the archived genomes evaluated under the previous
/// round's problem (SoA), and that population's dominance matrix —
/// refreshed incrementally when the next round's constraint bounds
/// move.
struct WarmState {
    signature: ProblemSignature,
    archive: EpsilonArchive,
    pool: SoaPopulation,
    matrix: DominanceMatrix,
}

/// The outer re-planning loop.
pub struct Replanner {
    config: ReplanConfig,
    analyzer: DependencyAnalyzer,
    base_problem: ShareProblem,
    /// Metric id of each layer's deployed resource level (open shards,
    /// running VMs, provisioned WCU, cache nodes, …), used to anchor
    /// learned dependencies in resource space. Layers without an entry
    /// contribute no learned constraints.
    resource_metrics: Vec<(Layer, MetricId)>,
    history: Vec<ReplanOutcome>,
    next_due: SimTime,
    recorder: Recorder,
    warm: Option<WarmState>,
}

impl Replanner {
    /// Create a replanner for the reference click-stream flow: wires the
    /// standard dependency analyzer and the deployed-resource metrics of
    /// the named stream/cluster/table.
    pub fn for_clickstream(
        config: ReplanConfig,
        stream: &str,
        cluster: &str,
        table: &str,
        base_problem: ShareProblem,
    ) -> Replanner {
        use flower_cloud::engine::metric_names::*;
        let analyzer = DependencyAnalyzer::for_clickstream(stream, cluster, table);
        Replanner::new(config, analyzer, base_problem)
            .with_resource_metric(
                Layer::INGESTION,
                MetricId::new(NS_KINESIS, OPEN_SHARDS, stream),
            )
            .with_resource_metric(
                Layer::ANALYTICS,
                MetricId::new(NS_STORM, RUNNING_VMS, cluster),
            )
            .with_resource_metric(
                Layer::STORAGE,
                MetricId::new(NS_DYNAMO, PROVISIONED_WCU, table),
            )
    }

    /// Register the metric carrying `layer`'s deployed resource level,
    /// anchoring learned dependencies touching that layer in resource
    /// space. Replaces any previous metric for the layer.
    pub fn with_resource_metric(mut self, layer: Layer, metric: MetricId) -> Replanner {
        match self.resource_metrics.iter_mut().find(|(l, _)| *l == layer) {
            Some((_, m)) => *m = metric,
            None => self.resource_metrics.push((layer, metric)),
        }
        self
    }

    /// Create a replanner from an analyzer and the static parts of the
    /// share problem (prices, structural constraints, bounds). Without
    /// resource metrics (see [`Replanner::for_clickstream`]) learned
    /// dependencies inform the outcome report but add no constraints.
    pub fn new(
        config: ReplanConfig,
        analyzer: DependencyAnalyzer,
        base_problem: ShareProblem,
    ) -> Replanner {
        assert!(
            !config.cadence.is_zero(),
            "re-plan cadence must be non-zero"
        );
        assert!(
            !config.analysis_window.is_zero(),
            "analysis window must be non-zero"
        );
        assert!(config.budget > 0.0, "budget must be positive");
        let next_due = SimTime::ZERO + config.cadence;
        Replanner {
            config,
            analyzer,
            base_problem,
            resource_metrics: Vec::new(),
            history: Vec::new(),
            next_due,
            recorder: Recorder::disabled(),
            warm: None,
        }
    }

    /// Attach an observability recorder: each round then emits a
    /// [`kind::REPLAN_OUTCOME`] event carrying the chosen Pareto point
    /// (or [`kind::REPLAN_FAILED`] with the error), and the NSGA-II
    /// re-solve emits its per-generation progress events.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// All completed rounds.
    pub fn history(&self) -> &[ReplanOutcome] {
        &self.history
    }

    /// When the next round is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Whether a round is due at `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Make the next round due immediately (`flower serve`'s
    /// `force-replan` command): the round then runs at the next tick
    /// boundary the episode loop checks [`Self::is_due`] on.
    pub fn force_next(&mut self) {
        self.next_due = SimTime::ZERO;
    }

    /// Change the hourly budget handed to subsequent rounds
    /// (`flower serve`'s `set-budget` command). Callers validate the
    /// value; the same `budget > 0` invariant as construction applies.
    pub fn set_budget(&mut self, budget: f64) {
        assert!(budget > 0.0, "replan budget must be positive: {budget}");
        self.config.budget = budget;
    }

    /// Run one round against the metric store. Returns the outcome, or
    /// an error when the analysis window is too thin or no feasible plan
    /// exists (in which case the previous bounds should stay in force —
    /// the caller decides).
    pub fn replan(
        &mut self,
        store: &MetricsStore,
        now: SimTime,
    ) -> Result<ReplanOutcome, FlowerError> {
        let result = self.replan_inner(store, now);
        if self.recorder.is_enabled() {
            self.recorder.set_now(now);
            match &result {
                Ok(outcome) => {
                    // One field per planned layer, keyed by the layer's
                    // resource name ("shards", "vms", "wcu", …); the
                    // event's BTreeMap orders the final payload.
                    let mut fields: Vec<(&'static str, flower_obs::FieldValue)> = vec![
                        ("dependencies", outcome.dependencies.into()),
                        ("front_size", outcome.front_size.into()),
                        ("hourly_cost", outcome.plan.hourly_cost.into()),
                    ];
                    // The warm/cold marker exists only for replanners
                    // with warm starts enabled, keeping cold-only trace
                    // fixtures from before the field byte-identical.
                    if self.config.warm_start {
                        fields.push(("warm", outcome.warm.into()));
                    }
                    for (layer, units) in outcome.plan.shares.iter() {
                        fields.push((layer.resource(), units.into()));
                    }
                    self.recorder.emit(kind::REPLAN_OUTCOME, &fields);
                }
                Err(err) => {
                    self.recorder
                        .emit(kind::REPLAN_FAILED, &[("error", err.to_string().into())]);
                    self.recorder.count("replan.failures", 1);
                }
            }
            self.recorder.count("replan.rounds", 1);
        }
        result
    }

    fn replan_inner(
        &mut self,
        store: &MetricsStore,
        now: SimTime,
    ) -> Result<ReplanOutcome, FlowerError> {
        self.next_due = now + self.config.cadence;
        let from = now - self.config.analysis_window;
        let deps = self.analyzer.dependencies(store, from, now)?;

        // Rebuild the problem: structural constraints plus a banded
        // ratio constraint per learned dependency. A metric-space slope
        // (CPU% per record) has no meaning for resource units, so the
        // ratio is anchored at the layers' *observed deployed resource
        // levels* over the window — the dependency establishes that the
        // coupling exists; the observation establishes its resource-space
        // operating ratio; the band leaves the optimizer room around it.
        let mut problem = self.base_problem.clone();
        problem.budget = self.config.budget;
        let mean_units = |layer: Layer| -> Option<f64> {
            let (_, metric) = self.resource_metrics.iter().find(|(l, _)| *l == layer)?;
            store.window_stat(metric, Statistic::Average, from, now)
        };
        for dep in &deps {
            let (Some(source_units), Some(target_units)) =
                (mean_units(dep.source.layer), mean_units(dep.target.layer))
            else {
                continue;
            };
            if let Some(constraints) = dependency_to_constraint(
                dep,
                target_units / source_units.max(f64::MIN_POSITIVE),
                self.config.dependency_band,
            ) {
                problem.constraints.extend(constraints);
            }
        }

        // Warm start: when the problem kept its shape since the last
        // round, seed the solver with the archived front's survivors.
        // The archived genomes are re-evaluated under the new problem
        // (objectives are shape-stable; only constraint violations can
        // move) and the dominance matrix is refreshed incrementally —
        // only rows touched by re-evaluated individuals are
        // re-classified — so picking the seed front costs O(k·n), not
        // O(n²). A shape change drops the state and cold-starts.
        let signature = problem_signature(&problem);
        let mut seeds: Vec<Vec<f64>> = Vec::new();
        if self.config.warm_start {
            match self.warm.as_mut() {
                Some(state) if state.signature == signature => {
                    let mut pool = SoaPopulation::for_problem(&problem, state.pool.len());
                    let mut changed = Vec::with_capacity(state.pool.len());
                    for i in 0..state.pool.len() {
                        let ind = Individual::evaluated(&problem, state.pool.genes(i).to_vec());
                        changed.push(
                            !bits_equal(&ind.objectives, state.pool.objectives(i))
                                || !bits_equal(&ind.violations, state.pool.violations(i)),
                        );
                        pool.push(ind);
                    }
                    state.matrix.refresh(&pool, &changed);
                    if let Some(front) = state.matrix.fronts().first() {
                        seeds = front.iter().map(|&i| pool.genes(i).to_vec()).collect();
                    }
                    state.pool = pool;
                }
                Some(_) => self.warm = None,
                None => {}
            }
        }
        let warm = !seeds.is_empty();
        let nsga2 = if warm {
            Nsga2Config {
                generations: self.config.warm_generations,
                ..self.config.nsga2
            }
        } else {
            self.config.nsga2
        };

        let mut analyzer = ShareAnalyzer::new(problem.clone())
            .with_config(nsga2)
            .with_recorder(self.recorder.clone());
        if let Some(workers) = self.config.workers {
            analyzer = analyzer.with_workers(workers);
        }
        let solution = match analyzer.solve_with_seeds(&seeds) {
            Ok(solution) => solution,
            Err(err) => {
                // A failed round invalidates the carried state: the
                // next round retries from a cold start.
                self.warm = None;
                return Err(err);
            }
        };

        if self.config.warm_start {
            // Fold this round's front into the epsilon archive, then
            // rebuild the seed pool (and its dominance matrix) from the
            // archive under the current problem. The archive bounds
            // front churn: sub-epsilon wiggles between rounds cannot
            // change its membership, so the seed set stays small and
            // stable across consecutive replans.
            let mut archive = match self.warm.take() {
                Some(state) => state.archive,
                None => EpsilonArchive::new(WARM_ARCHIVE_EPSILON, WARM_ARCHIVE_CAPACITY),
            };
            for (genes, objectives) in &solution.front {
                archive.offer(genes, objectives);
            }
            let mut pool = SoaPopulation::for_problem(&problem, archive.len());
            for entry in archive.entries() {
                pool.push(Individual::evaluated(&problem, entry.genes.clone()));
            }
            // The pool is capped at the archive capacity — far below
            // the parallel-sort threshold — so the build is serial.
            let matrix = DominanceMatrix::build(&pool, &Executor::serial());
            self.warm = Some(WarmState {
                signature,
                archive,
                pool,
                matrix,
            });
        }

        let plan = self.config.selection.pick(&solution.plans).clone();
        let outcome = ReplanOutcome {
            at: now,
            dependencies: deps.len(),
            plan,
            front_size: solution.plans.len(),
            warm,
        };
        self.history.push(outcome.clone());
        Ok(outcome)
    }
}

/// Bitwise slice equality — the change detector for incremental
/// dominance refresh. Bit-level (not `==`) so NaN re-evaluations and
/// signed zeros compare stably.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Translate a learned dependency into resource-space constraints, when
/// the pair maps onto distinct layers.
///
/// `ratio` is the observed resource-space operating ratio
/// `r_target / r_source` over the analysis window; the constraint keeps
/// future plans within `ratio·(1 ± band)`. Returns `None` for degenerate
/// fits or non-positive ratios.
fn dependency_to_constraint(
    dep: &crate::dependency::Dependency,
    ratio: f64,
    band: f64,
) -> Option<[crate::share::Constraint; 2]> {
    let source = dep.source.layer;
    let target = dep.target.layer;
    if source == target || dep.fit.slope.abs() < 1e-12 {
        return None;
    }
    if !(ratio.is_finite() && ratio > 0.0) {
        return None;
    }
    let lo = ratio * (1.0 - band);
    let hi = ratio * (1.0 + band);
    Some([
        // r_t − hi·r_s ≤ 0
        crate::share::Constraint::new(
            [(target, 1.0), (source, -hi)],
            0.0,
            format!("learned: r_{target} <= {hi:.4}*r_{source}"),
        ),
        // lo·r_s − r_t ≤ 0
        crate::share::Constraint::new(
            [(target, -1.0), (source, lo)],
            0.0,
            format!("learned: r_{target} >= {lo:.4}*r_{source}"),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_cloud::{CloudEngine, EngineConfig};
    use flower_sim::SimRng;
    use flower_workload::{ClickStreamConfig, ClickStreamGenerator, DiurnalRate};

    fn shares(shards: f64, vms: f64, wcu: f64, hourly_cost: f64) -> ResourceShares {
        ResourceShares::new(
            flower_cloud::ResourceVector::from_pairs([
                (Layer::INGESTION, shards),
                (Layer::ANALYTICS, vms),
                (Layer::STORAGE, wcu),
            ]),
            hourly_cost,
        )
    }

    fn plans() -> Vec<ResourceShares> {
        vec![
            shares(10.0, 2.0, 100.0, 0.5),
            shares(4.0, 4.0, 200.0, 0.6),
            shares(2.0, 1.0, 900.0, 0.7),
        ]
    }

    #[test]
    fn selection_policies_pick_expected_plans() {
        let plans = plans();
        assert_eq!(PlanSelection::MaxIngestion.pick(&plans).shards(), 10.0);
        assert_eq!(PlanSelection::MaxAnalytics.pick(&plans).vms(), 4.0);
        assert_eq!(PlanSelection::MaxStorage.pick(&plans).wcu(), 900.0);
        // Balanced: spend vectors are (0.15,0.2,0.065), (0.06,0.4,0.13),
        // (0.03,0.1,0.585) → the first is the most even.
        assert_eq!(PlanSelection::Balanced.pick(&plans).shards(), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty plan list")]
    fn selection_from_empty_panics() {
        PlanSelection::Balanced.pick(&[]);
    }

    fn populated_store(minutes: u64) -> MetricsStore {
        let mut engine = CloudEngine::new(EngineConfig {
            kinesis: flower_cloud::KinesisConfig {
                initial_shards: 6,
                ..Default::default()
            },
            storm: flower_cloud::StormConfig {
                initial_vms: 4,
                ..Default::default()
            },
            dynamo: flower_cloud::DynamoConfig {
                initial_wcu: 300.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(1));
        let mut process = DiurnalRate::new(
            2_500.0,
            2_000.0,
            SimDuration::from_hours(2),
            SimDuration::ZERO,
        );
        for s in 0..minutes * 60 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            engine.tick(&records, now, SimDuration::from_secs(1));
        }
        // Move the store out by rebuilding a snapshot: we only need the
        // metrics, so clone via raw access.
        let mut out = MetricsStore::new();
        for id in engine.metrics().list() {
            for (t, v) in engine.metrics().raw(id, SimTime::ZERO, SimTime::MAX) {
                out.put(id.clone(), t, v);
            }
        }
        out
    }

    fn analyzer() -> DependencyAnalyzer {
        DependencyAnalyzer::for_clickstream("clickstream", "storm-cluster", "click-aggregates")
    }

    #[test]
    fn replan_produces_feasible_bounds() {
        let store = populated_store(60);
        let mut replanner = Replanner::for_clickstream(
            ReplanConfig {
                cadence: SimDuration::from_mins(30),
                analysis_window: SimDuration::from_mins(30),
                nsga2: Nsga2Config {
                    population: 40,
                    generations: 40,
                    seed: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
            "clickstream",
            "storm-cluster",
            "click-aggregates",
            ShareProblem::worked_example(1.0),
        );
        let now = SimTime::from_mins(60);
        assert!(replanner.is_due(now));
        let outcome = replanner.replan(&store, now).expect("replan succeeds");
        assert!(outcome.dependencies >= 1, "should learn the flow couplings");
        assert!(outcome.front_size >= 1);
        assert!(outcome.plan.hourly_cost <= 1.0 + 1e-9);
        assert_eq!(replanner.history().len(), 1);
        assert_eq!(replanner.next_due(), now + SimDuration::from_mins(30));
        assert!(!replanner.is_due(now + SimDuration::from_mins(29)));
    }

    #[test]
    fn replan_with_empty_store_fails_gracefully() {
        let store = MetricsStore::new();
        let mut replanner = Replanner::new(
            ReplanConfig::default(),
            analyzer(),
            ShareProblem::worked_example(1.0),
        );
        // No data: dependencies() returns an empty list (insufficient
        // outcomes) and the solve proceeds on structural constraints
        // alone — so this must still produce a plan, not crash.
        let outcome = replanner.replan(&store, SimTime::from_mins(60));
        assert!(outcome.is_ok());
        assert_eq!(outcome.unwrap().dependencies, 0);
    }

    #[test]
    fn tighter_budget_yields_smaller_plan() {
        let store = populated_store(40);
        let run = |budget: f64| {
            let mut replanner = Replanner::for_clickstream(
                ReplanConfig {
                    budget,
                    nsga2: Nsga2Config {
                        population: 100,
                        generations: 120,
                        seed: 2,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                "clickstream",
                "storm-cluster",
                "click-aggregates",
                ShareProblem::worked_example(budget),
            );
            replanner
                .replan(&store, SimTime::from_mins(40))
                .expect("feasible")
                .plan
        };
        let small = run(0.5);
        let large = run(1.5);
        assert!(small.hourly_cost < large.hourly_cost);
    }

    #[test]
    fn consecutive_replans_warm_start() {
        let store = populated_store(100);
        let mut replanner = Replanner::for_clickstream(
            ReplanConfig {
                cadence: SimDuration::from_mins(30),
                analysis_window: SimDuration::from_mins(30),
                nsga2: Nsga2Config {
                    population: 40,
                    generations: 40,
                    seed: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            "clickstream",
            "storm-cluster",
            "click-aggregates",
            ShareProblem::worked_example(1.0),
        );
        let r1 = replanner
            .replan(&store, SimTime::from_mins(40))
            .expect("round 1");
        assert!(!r1.warm, "first round has nothing to warm-start from");
        let r2 = replanner
            .replan(&store, SimTime::from_mins(70))
            .expect("round 2");
        assert!(r2.warm, "second round must reuse the archived front");
        let r3 = replanner
            .replan(&store, SimTime::from_mins(100))
            .expect("round 3");
        assert!(r3.warm);
        // Warm rounds still deliver feasible, budget-respecting plans.
        for outcome in replanner.history() {
            assert!(outcome.front_size >= 1);
            assert!(outcome.plan.hourly_cost <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn warm_start_disabled_stays_cold() {
        let store = populated_store(100);
        let mut replanner = Replanner::for_clickstream(
            ReplanConfig {
                warm_start: false,
                nsga2: Nsga2Config {
                    population: 40,
                    generations: 40,
                    seed: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            "clickstream",
            "storm-cluster",
            "click-aggregates",
            ShareProblem::worked_example(1.0),
        );
        for mins in [40u64, 70, 100] {
            let outcome = replanner
                .replan(&store, SimTime::from_mins(mins))
                .expect("replan");
            assert!(!outcome.warm, "warm_start=false must never warm-start");
        }
    }

    #[test]
    fn signature_tracks_constraint_shape_not_coefficients() {
        let base = ShareProblem::worked_example(1.0);
        let a = base
            .clone()
            .with_constraint(crate::share::Constraint::ratio(
                2.0,
                Layer::ANALYTICS,
                1.0,
                Layer::STORAGE,
            ));
        // Same coupling, different coefficient: same shape.
        let b = base
            .clone()
            .with_constraint(crate::share::Constraint::ratio(
                3.5,
                Layer::ANALYTICS,
                1.0,
                Layer::STORAGE,
            ));
        assert_eq!(problem_signature(&a), problem_signature(&b));
        // Different coupling: different shape.
        let c = base.with_constraint(crate::share::Constraint::ratio(
            2.0,
            Layer::ANALYTICS,
            1.0,
            Layer::INGESTION,
        ));
        assert_ne!(problem_signature(&a), problem_signature(&c));
    }

    #[test]
    fn dependency_constraint_translation() {
        use crate::dependency::{Dependency, LayerMetric};
        use flower_cloud::MetricId;
        use flower_stats::SimpleOls;
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v + 1.0).collect();
        let dep = Dependency {
            source: LayerMetric {
                layer: Layer::INGESTION,
                id: MetricId::new("n", "a", "r"),
            },
            target: LayerMetric {
                layer: Layer::ANALYTICS,
                id: MetricId::new("n", "b", "r"),
            },
            fit: SimpleOls::fit(&x, &y).expect("fits"),
        };
        let [up, down] = dependency_to_constraint(&dep, 2.0, 0.5).expect("valid");
        // observed ratio 2, band ±50% → r_A ∈ [1·r_I, 3·r_I].
        let layers = Layer::ALL;
        assert_eq!(up.violation(&layers, &[1.0, 2.0, 0.0]), 0.0);
        assert!(up.violation(&layers, &[1.0, 4.0, 0.0]) > 0.0);
        assert_eq!(down.violation(&layers, &[1.0, 2.0, 0.0]), 0.0);
        assert!(down.violation(&layers, &[1.0, 0.5, 0.0]) > 0.0);
    }

    #[test]
    fn same_layer_dependency_is_skipped() {
        use crate::dependency::{Dependency, LayerMetric};
        use flower_cloud::MetricId;
        use flower_stats::SimpleOls;
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = x.clone();
        let dep = Dependency {
            source: LayerMetric {
                layer: Layer::STORAGE,
                id: MetricId::new("n", "a", "r"),
            },
            target: LayerMetric {
                layer: Layer::STORAGE,
                id: MetricId::new("n", "b", "r"),
            },
            fit: SimpleOls::fit(&x, &y).expect("fits"),
        };
        assert!(dependency_to_constraint(&dep, 1.0, 0.5).is_none());
        // Non-positive or non-finite ratios are also rejected.
    }
}
