//! Workload Dependency Analysis — paper §3.1.
//!
//! Flower "applies statistical regression models to workload logs to
//! quantitatively explain relationships between, for example, resource
//! amount in the ingestion layer … and resource amount in the analytics
//! layer". Concretely (Eq. 1):
//!
//! ```text
//! r(L1) = β0 + β1·r(L2) + ε ,   L1 ≠ L2 ∈ {I, A, S}
//! ```
//!
//! The analyzer consumes the metric store the simulated services publish
//! into, aligns each candidate pair of series on a shared period grid,
//! screens by Pearson correlation, and fits the regression for the pairs
//! that pass — reproducing both Fig. 2 (the r = 0.95 ingestion↔analytics
//! coupling) and Eq. 2 (`CPU ≈ 0.0002·WriteCapacity + 4.8`). It also
//! reports *absent* dependencies, mirroring the paper's observation that
//! "not all the layers are dependent on each other".

use flower_cloud::{MetricId, MetricsStore};
use flower_sim::{SimDuration, SimTime};
use flower_stats::regression::SimpleOls;
use flower_stats::timeseries::{Agg, TimeSeries};

use crate::error::FlowerError;
use crate::flow::Layer;

/// A metric on one layer that participates in dependency analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerMetric {
    /// Which layer the metric describes.
    pub layer: Layer,
    /// The metric's identifier in the store.
    pub id: MetricId,
}

/// A quantified cross-layer dependency.
#[derive(Debug, Clone)]
pub struct Dependency {
    /// The explained (dependent) metric.
    pub target: LayerMetric,
    /// The explaining (independent) metric.
    pub source: LayerMetric,
    /// The fitted linear model `target = β0 + β1·source + ε`.
    pub fit: SimpleOls,
}

impl Dependency {
    /// Pearson correlation of the pair.
    pub fn correlation(&self) -> f64 {
        self.fit.correlation
    }

    /// Render the dependency as the paper renders Eq. 2.
    pub fn equation(&self) -> String {
        format!(
            "{} \u{2248} {:.6}*{} + {:.4}  (r={:.3}, R\u{00b2}={:.3}, n={})",
            self.target.id.metric,
            self.fit.slope,
            self.source.id.metric,
            self.fit.intercept,
            self.fit.correlation,
            self.fit.r_squared,
            self.fit.n,
        )
    }
}

/// Configuration of the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyConfig {
    /// Alignment period for the metric series.
    pub period: SimDuration,
    /// Minimum |Pearson r| for a pair to count as dependent.
    pub min_correlation: f64,
    /// Minimum aligned samples required to attempt a fit.
    pub min_samples: usize,
}

impl Default for DependencyConfig {
    fn default() -> Self {
        DependencyConfig {
            period: SimDuration::from_mins(1),
            min_correlation: 0.7,
            min_samples: 10,
        }
    }
}

/// The workload dependency analyzer.
#[derive(Debug, Clone)]
pub struct DependencyAnalyzer {
    config: DependencyConfig,
    metrics: Vec<LayerMetric>,
}

/// Outcome of analyzing one metric pair.
#[derive(Debug, Clone)]
pub enum PairOutcome {
    /// The pair is dependent; regression attached.
    Dependent(Dependency),
    /// The pair's correlation fell below the threshold — reported so the
    /// operator can see independence, as §3.1 does for Kinesis-write vs
    /// DynamoDB-write in the demo flow.
    Independent {
        /// The explained metric.
        target: LayerMetric,
        /// The explaining metric.
        source: LayerMetric,
        /// The measured correlation (NaN when undefined).
        correlation: f64,
    },
    /// Not enough overlapping samples (or degenerate data) to decide.
    Insufficient {
        /// The explained metric.
        target: LayerMetric,
        /// The explaining metric.
        source: LayerMetric,
    },
}

impl DependencyAnalyzer {
    /// Create an analyzer over the given layer metrics.
    pub fn new(config: DependencyConfig, metrics: Vec<LayerMetric>) -> DependencyAnalyzer {
        DependencyAnalyzer { config, metrics }
    }

    /// Convenience: the three headline metrics of the paper's demo flow —
    /// ingestion arrival rate, analytics CPU, storage consumed capacity.
    pub fn for_clickstream(stream: &str, cluster: &str, table: &str) -> DependencyAnalyzer {
        use flower_cloud::engine::metric_names::*;
        DependencyAnalyzer::new(
            DependencyConfig::default(),
            vec![
                LayerMetric {
                    layer: Layer::INGESTION,
                    id: MetricId::new(NS_KINESIS, INCOMING_RECORDS, stream),
                },
                LayerMetric {
                    layer: Layer::ANALYTICS,
                    id: MetricId::new(NS_STORM, CPU_UTILIZATION, cluster),
                },
                LayerMetric {
                    layer: Layer::STORAGE,
                    id: MetricId::new(NS_DYNAMO, CONSUMED_WCU, table),
                },
            ],
        )
    }

    /// The metrics under analysis.
    pub fn metrics(&self) -> &[LayerMetric] {
        &self.metrics
    }

    fn series(
        &self,
        store: &MetricsStore,
        id: &MetricId,
        from: SimTime,
        to: SimTime,
    ) -> TimeSeries {
        TimeSeries::from_points(store.raw(id, from, to))
    }

    /// Analyze every cross-layer pair over `[from, to)`.
    ///
    /// Each ordered pair `(target, source)` with `target.layer !=
    /// source.layer` is considered once, with the *downstream* metric as
    /// the target (the flow direction: ingestion explains analytics,
    /// analytics explains storage).
    pub fn analyze(
        &self,
        store: &MetricsStore,
        from: SimTime,
        to: SimTime,
    ) -> Result<Vec<PairOutcome>, FlowerError> {
        let mut out = Vec::new();
        for i in 0..self.metrics.len() {
            for j in 0..self.metrics.len() {
                if i == j {
                    continue;
                }
                let source = &self.metrics[i];
                let target = &self.metrics[j];
                if source.layer >= target.layer {
                    continue; // keep the flow direction, one pair once
                }
                out.push(self.analyze_pair(store, source, target, from, to));
            }
        }
        Ok(out)
    }

    /// Analyze a single directed pair.
    pub fn analyze_pair(
        &self,
        store: &MetricsStore,
        source: &LayerMetric,
        target: &LayerMetric,
        from: SimTime,
        to: SimTime,
    ) -> PairOutcome {
        let s = self.series(store, &source.id, from, to);
        let t = self.series(store, &target.id, from, to);
        let aligned = TimeSeries::align(&s, &t, self.config.period, Agg::Mean);
        if aligned.len() < self.config.min_samples {
            return PairOutcome::Insufficient {
                target: target.clone(),
                source: source.clone(),
            };
        }
        let xs: Vec<f64> = aligned.iter().map(|&(_, a, _)| a).collect();
        let ys: Vec<f64> = aligned.iter().map(|&(_, _, b)| b).collect();
        match SimpleOls::fit(&xs, &ys) {
            Ok(fit) if fit.correlation.abs() >= self.config.min_correlation => {
                PairOutcome::Dependent(Dependency {
                    target: target.clone(),
                    source: source.clone(),
                    fit,
                })
            }
            Ok(fit) => PairOutcome::Independent {
                target: target.clone(),
                source: source.clone(),
                correlation: fit.correlation,
            },
            Err(_) => PairOutcome::Insufficient {
                target: target.clone(),
                source: source.clone(),
            },
        }
    }

    /// Just the confirmed dependencies from [`DependencyAnalyzer::analyze`],
    /// strongest correlation first.
    pub fn dependencies(
        &self,
        store: &MetricsStore,
        from: SimTime,
        to: SimTime,
    ) -> Result<Vec<Dependency>, FlowerError> {
        let mut deps: Vec<Dependency> = self
            .analyze(store, from, to)?
            .into_iter()
            .filter_map(|o| match o {
                PairOutcome::Dependent(d) => Some(d),
                _ => None,
            })
            .collect();
        deps.sort_by(|a, b| b.correlation().abs().total_cmp(&a.correlation().abs()));
        Ok(deps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_sim::SimRng;

    fn metric(layer: Layer, name: &str) -> LayerMetric {
        LayerMetric {
            layer,
            id: MetricId::new("ns", name, "res"),
        }
    }

    /// Build a store where `cpu = 0.0002·records + 4.8 + noise` and an
    /// unrelated storage metric.
    fn synthetic_store(minutes: u64, noise: f64, seed: u64) -> MetricsStore {
        let mut store = MetricsStore::new();
        let mut rng = SimRng::seed(seed);
        for m in 0..minutes {
            let t = SimTime::from_mins(m);
            let records = 30_000.0
                + 25_000.0 * ((m as f64 / 120.0) * std::f64::consts::TAU).sin()
                + rng.normal(0.0, 500.0);
            let records = records.max(0.0);
            let cpu = 0.0002 * records + 4.8 + rng.normal(0.0, noise);
            let unrelated = rng.uniform(0.0, 100.0);
            store.put(MetricId::new("ns", "records", "res"), t, records);
            store.put(MetricId::new("ns", "cpu", "res"), t, cpu);
            store.put(MetricId::new("ns", "unrelated", "res"), t, unrelated);
        }
        store
    }

    fn analyzer() -> DependencyAnalyzer {
        DependencyAnalyzer::new(
            DependencyConfig::default(),
            vec![
                metric(Layer::INGESTION, "records"),
                metric(Layer::ANALYTICS, "cpu"),
                metric(Layer::STORAGE, "unrelated"),
            ],
        )
    }

    #[test]
    fn recovers_equation_2() {
        let store = synthetic_store(550, 0.3, 1);
        let deps = analyzer()
            .dependencies(&store, SimTime::ZERO, SimTime::from_mins(550))
            .unwrap();
        assert_eq!(deps.len(), 1, "only records→cpu should correlate");
        let d = &deps[0];
        assert_eq!(d.source.id.metric, "records");
        assert_eq!(d.target.id.metric, "cpu");
        assert!((d.fit.slope - 0.0002).abs() < 2e-5, "slope={}", d.fit.slope);
        assert!(
            (d.fit.intercept - 4.8).abs() < 0.5,
            "intercept={}",
            d.fit.intercept
        );
        assert!(d.correlation() > 0.9, "r={}", d.correlation());
        assert!(d.equation().contains("cpu"));
    }

    #[test]
    fn independent_pairs_are_reported_as_such() {
        let store = synthetic_store(200, 0.3, 2);
        let outcomes = analyzer()
            .analyze(&store, SimTime::ZERO, SimTime::from_mins(200))
            .unwrap();
        // Three directed cross-layer pairs: I→A, I→S, A→S.
        assert_eq!(outcomes.len(), 3);
        let independents = outcomes
            .iter()
            .filter(|o| matches!(o, PairOutcome::Independent { .. }))
            .count();
        assert_eq!(independents, 2, "both pairs involving 'unrelated'");
    }

    #[test]
    fn short_windows_are_insufficient() {
        let store = synthetic_store(5, 0.3, 3);
        let outcomes = analyzer()
            .analyze(&store, SimTime::ZERO, SimTime::from_mins(5))
            .unwrap();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, PairOutcome::Insufficient { .. })));
    }

    #[test]
    fn analysis_respects_the_window() {
        let store = synthetic_store(300, 0.3, 4);
        // Analyze only the second half.
        let deps = analyzer()
            .dependencies(&store, SimTime::from_mins(150), SimTime::from_mins(300))
            .unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].fit.n, 150);
    }

    #[test]
    fn noisier_data_weakens_correlation() {
        let clean = synthetic_store(200, 0.1, 5);
        let noisy = synthetic_store(200, 10.0, 5);
        let a = analyzer();
        let r_clean = a
            .dependencies(&clean, SimTime::ZERO, SimTime::from_mins(200))
            .unwrap()[0]
            .correlation();
        let deps_noisy = a
            .dependencies(&noisy, SimTime::ZERO, SimTime::from_mins(200))
            .unwrap();
        if let Some(d) = deps_noisy.first() {
            assert!(d.correlation() < r_clean);
        }
        assert!(r_clean > 0.95);
    }

    #[test]
    fn clickstream_analyzer_has_three_metrics() {
        let a = DependencyAnalyzer::for_clickstream("s", "c", "t");
        assert_eq!(a.metrics().len(), 3);
        assert_eq!(a.metrics()[0].layer, Layer::INGESTION);
        assert_eq!(a.metrics()[2].id.resource, "t");
    }
}
