//! Controller configuration — the programmatic equivalent of the
//! demo's **Flow Configuration Wizard** (§4 step 2), where the user picks
//! a controller per layer, its desired reference value (setpoint), and
//! the monitoring period.

use flower_control::{
    AdaptiveConfig, AdaptiveController, Controller, FixedGainConfig, FixedGainController,
    QuasiAdaptiveConfig, QuasiAdaptiveController, RuleBasedConfig, RuleBasedController,
};

/// Which controller a layer runs, with its tunables. `Static` disables
/// elasticity for the layer (fixed provisioning) — used by the
/// holistic-vs-partial-scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerSpec {
    /// The paper's adaptive controller (Eqs. 6–7).
    Adaptive {
        /// Desired reference value `y_r`.
        setpoint: f64,
        /// Gain adaptation rate γ.
        gamma: f64,
        /// Gain bounds `[l_min, l_max]`.
        l_min: f64,
        /// Upper gain bound.
        l_max: f64,
        /// Enable the gain-memory feature.
        gain_memory: bool,
    },
    /// Fixed-gain integral controller with dead-band (Lim et al. 2010).
    FixedGain {
        /// Desired reference value.
        setpoint: f64,
        /// The constant gain.
        gain: f64,
        /// No-action half band.
        dead_band: f64,
    },
    /// Self-tuning controller (Padala et al. 2007).
    QuasiAdaptive {
        /// Desired reference value.
        setpoint: f64,
        /// RLS forgetting factor.
        forgetting: f64,
    },
    /// Threshold rules with cooldown (Amazon Auto Scaling style).
    RuleBased {
        /// Scale-out threshold.
        high: f64,
        /// Scale-in threshold.
        low: f64,
        /// Consecutive breaches required.
        breach_count: u32,
        /// Cooldown in monitoring periods.
        cooldown_steps: u32,
    },
    /// No controller: the layer keeps its initial provisioning.
    Static,
}

impl ControllerSpec {
    /// The paper's adaptive controller with defaults tuned for
    /// *unit-scale* actuators (shards, VMs — a handful to a few dozen
    /// units). The gain ceiling respects the discrete-loop stability
    /// bound `l < 2u/y` at small unit counts.
    pub fn adaptive(setpoint: f64) -> ControllerSpec {
        ControllerSpec::Adaptive {
            setpoint,
            gamma: 0.0005,
            l_min: 0.01,
            l_max: 0.05,
            gain_memory: true,
        }
    }

    /// The adaptive controller tuned for *capacity-unit-scale* actuators
    /// (DynamoDB WCU — hundreds to thousands of units), where a unit
    /// moves the measurement a thousandth as much.
    pub fn adaptive_for_capacity(setpoint: f64) -> ControllerSpec {
        ControllerSpec::Adaptive {
            setpoint,
            gamma: 0.01,
            l_min: 0.05,
            l_max: 2.0,
            gain_memory: true,
        }
    }

    /// Fixed-gain defaults: the gain sits at the geometric middle of the
    /// adaptive controller's `[l_min, l_max]` band, so the comparison is
    /// between *adapting* the gain and *fixing* it, not between small
    /// and large gains.
    pub fn fixed_gain(setpoint: f64) -> ControllerSpec {
        ControllerSpec::FixedGain {
            setpoint,
            gain: 0.01,
            dead_band: 5.0,
        }
    }

    /// Quasi-adaptive defaults.
    pub fn quasi_adaptive(setpoint: f64) -> ControllerSpec {
        ControllerSpec::QuasiAdaptive {
            setpoint,
            forgetting: 0.9,
        }
    }

    /// Rule-based defaults around a setpoint (band ±20).
    pub fn rule_based(setpoint: f64) -> ControllerSpec {
        ControllerSpec::RuleBased {
            high: setpoint + 15.0,
            low: setpoint - 25.0,
            breach_count: 2,
            cooldown_steps: 3,
        }
    }

    /// The setpoint this spec regulates to (band centre for rule-based,
    /// `None` for static).
    pub fn setpoint(&self) -> Option<f64> {
        match self {
            ControllerSpec::Adaptive { setpoint, .. }
            | ControllerSpec::FixedGain { setpoint, .. }
            | ControllerSpec::QuasiAdaptive { setpoint, .. } => Some(*setpoint),
            ControllerSpec::RuleBased { high, low, .. } => Some((high + low) / 2.0),
            ControllerSpec::Static => None,
        }
    }

    /// Instantiate the controller with `u_init` as its initial actuator
    /// value. Returns `None` for [`ControllerSpec::Static`].
    pub fn build(&self, u_init: f64) -> Option<Box<dyn Controller>> {
        match *self {
            ControllerSpec::Adaptive {
                setpoint,
                gamma,
                l_min,
                l_max,
                gain_memory,
            } => Some(Box::new(AdaptiveController::new(AdaptiveConfig {
                setpoint,
                gamma,
                l_min,
                l_max,
                l_init: l_min,
                u_init,
                gain_memory,
                memory_len: 32,
            }))),
            ControllerSpec::FixedGain {
                setpoint,
                gain,
                dead_band,
            } => Some(Box::new(FixedGainController::new(FixedGainConfig {
                setpoint,
                gain,
                dead_band,
                u_init,
            }))),
            ControllerSpec::QuasiAdaptive {
                setpoint,
                forgetting,
            } => Some(Box::new(QuasiAdaptiveController::new(
                QuasiAdaptiveConfig {
                    setpoint,
                    forgetting,
                    u_init,
                    ..Default::default()
                },
            ))),
            ControllerSpec::RuleBased {
                high,
                low,
                breach_count,
                cooldown_steps,
            } => Some(Box::new(RuleBasedController::new(RuleBasedConfig {
                high,
                low,
                breach_count,
                step_up: (u_init * 0.5).max(1.0),
                step_down: (u_init * 0.25).max(1.0),
                cooldown_steps,
                u_init,
            }))),
            ControllerSpec::Static => None,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ControllerSpec::Adaptive { .. } => "adaptive",
            ControllerSpec::FixedGain { .. } => "fixed-gain",
            ControllerSpec::QuasiAdaptive { .. } => "quasi-adaptive",
            ControllerSpec::RuleBased { .. } => "rule-based",
            ControllerSpec::Static => "static",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_expected_setpoints() {
        assert_eq!(ControllerSpec::adaptive(60.0).setpoint(), Some(60.0));
        assert_eq!(ControllerSpec::fixed_gain(70.0).setpoint(), Some(70.0));
        assert_eq!(ControllerSpec::quasi_adaptive(50.0).setpoint(), Some(50.0));
        assert_eq!(ControllerSpec::rule_based(60.0).setpoint(), Some(55.0));
        assert_eq!(ControllerSpec::Static.setpoint(), None);
    }

    #[test]
    fn build_instantiates_each_kind() {
        for spec in [
            ControllerSpec::adaptive(60.0),
            ControllerSpec::fixed_gain(60.0),
            ControllerSpec::quasi_adaptive(60.0),
            ControllerSpec::rule_based(60.0),
        ] {
            let c = spec.build(4.0).expect("non-static builds");
            assert_eq!(c.actuator(), 4.0);
            assert_eq!(c.name(), spec.name());
        }
        assert!(ControllerSpec::Static.build(4.0).is_none());
        assert_eq!(ControllerSpec::Static.name(), "static");
    }

    #[test]
    fn rule_based_steps_scale_with_initial_units() {
        // A layer starting at 100 units should take bigger rule-based
        // steps than one starting at 2.
        let big = ControllerSpec::rule_based(60.0).build(100.0).unwrap();
        let small = ControllerSpec::rule_based(60.0).build(2.0).unwrap();
        let drive = |mut c: Box<dyn flower_control::Controller>| {
            for _ in 0..2 {
                c.step(95.0);
            }
            c.actuator()
        };
        let big_delta = drive(big) - 100.0;
        let small_delta = drive(small) - 2.0;
        assert!(big_delta > small_delta, "{big_delta} vs {small_delta}");
    }
}
