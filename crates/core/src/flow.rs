//! Flow definition — the programmatic equivalent of the demo's drag-and-
//! drop **Flow Builder** (§4 step 1, Fig. 5).
//!
//! A flow names one platform per layer; [`FlowBuilder`] validates the
//! combination and [`FlowSpec::engine_config`] materializes the simulated
//! cloud deployment the elasticity manager runs against.

use flower_cloud::{CacheConfig, DynamoConfig, EngineConfig, KinesisConfig, StormConfig, Topology};

use crate::error::FlowerError;

/// A layer of a data analytics flow.
///
/// This is [`flower_cloud::LayerId`] — an open identity, not a closed
/// enum. The paper's three layers are `Layer::INGESTION`,
/// `Layer::ANALYTICS`, and `Layer::STORAGE`; extensions (like the cache
/// tier, `Layer::CACHE`) and custom layers minted with [`Layer::new`]
/// slot into the same ordering.
pub type Layer = flower_cloud::LayerId;

/// A platform dropped onto the canvas: which service, its name, and its
/// initial capacity.
#[derive(Debug, Clone, PartialEq)]
pub enum Platform {
    /// A Kinesis-like stream with an initial shard count.
    Kinesis {
        /// Stream name.
        name: String,
        /// Initial shards.
        shards: u32,
    },
    /// A Storm-like cluster with an initial VM count.
    Storm {
        /// Cluster name.
        name: String,
        /// Initial VMs.
        vms: u32,
    },
    /// A DynamoDB-like table with initial write capacity.
    Dynamo {
        /// Table name.
        name: String,
        /// Initial write capacity units.
        wcu: f64,
    },
    /// An ElastiCache-like cluster with an initial node count.
    Cache {
        /// Cluster name.
        name: String,
        /// Initial cache nodes.
        nodes: u32,
    },
}

impl Platform {
    /// A Kinesis-like stream.
    pub fn kinesis(name: impl Into<String>, shards: u32) -> Platform {
        Platform::Kinesis {
            name: name.into(),
            shards,
        }
    }

    /// A Storm-like cluster.
    pub fn storm(name: impl Into<String>, vms: u32) -> Platform {
        Platform::Storm {
            name: name.into(),
            vms,
        }
    }

    /// A DynamoDB-like table.
    pub fn dynamo(name: impl Into<String>, wcu: f64) -> Platform {
        Platform::Dynamo {
            name: name.into(),
            wcu,
        }
    }

    /// An ElastiCache-like cluster.
    pub fn cache(name: impl Into<String>, nodes: u32) -> Platform {
        Platform::Cache {
            name: name.into(),
            nodes,
        }
    }

    /// Which layer this platform can serve.
    pub fn layer(&self) -> Layer {
        match self {
            Platform::Kinesis { .. } => Layer::INGESTION,
            Platform::Storm { .. } => Layer::ANALYTICS,
            Platform::Dynamo { .. } => Layer::STORAGE,
            Platform::Cache { .. } => Layer::CACHE,
        }
    }

    /// The platform's display name.
    pub fn name(&self) -> &str {
        match self {
            Platform::Kinesis { name, .. }
            | Platform::Storm { name, .. }
            | Platform::Dynamo { name, .. }
            | Platform::Cache { name, .. } => name,
        }
    }
}

/// A validated flow: the paper's three layers, plus an optional cache
/// tier.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Flow name.
    pub name: String,
    /// Ingestion platform.
    pub ingestion: Platform,
    /// Analytics platform.
    pub analytics: Platform,
    /// Storage platform.
    pub storage: Platform,
    /// Cache tier, when deployed.
    pub cache: Option<Platform>,
}

impl FlowSpec {
    /// The platform serving `layer`, if the flow populates it.
    pub fn platform(&self, layer: Layer) -> Option<&Platform> {
        [&self.ingestion, &self.analytics, &self.storage]
            .into_iter()
            .chain(self.cache.as_ref())
            .find(|p| p.layer() == layer)
    }

    /// The layers this flow populates, in ascending order.
    pub fn layers(&self) -> Vec<Layer> {
        let mut layers = vec![
            self.ingestion.layer(),
            self.analytics.layer(),
            self.storage.layer(),
        ];
        if let Some(cache) = &self.cache {
            layers.push(cache.layer());
        }
        layers.sort();
        layers
    }

    /// Materialize the simulated cloud deployment for this flow.
    pub fn engine_config(&self) -> EngineConfig {
        let (stream_name, shards) = match &self.ingestion {
            Platform::Kinesis { name, shards } => (name.clone(), *shards),
            _ => unreachable!("validated by the builder"),
        };
        let (cluster_name, vms) = match &self.analytics {
            Platform::Storm { name, vms } => (name.clone(), *vms),
            _ => unreachable!("validated by the builder"),
        };
        let (table_name, wcu) = match &self.storage {
            Platform::Dynamo { name, wcu } => (name.clone(), *wcu),
            _ => unreachable!("validated by the builder"),
        };
        let cache = self.cache.as_ref().map(|platform| match platform {
            Platform::Cache { name, nodes } => CacheConfig {
                name: name.clone(),
                initial_nodes: *nodes,
                ..Default::default()
            },
            _ => unreachable!("validated by the builder"),
        });
        EngineConfig {
            kinesis: KinesisConfig {
                name: stream_name,
                initial_shards: shards,
                ..Default::default()
            },
            storm: StormConfig {
                name: cluster_name,
                initial_vms: vms,
                ..Default::default()
            },
            dynamo: DynamoConfig {
                name: table_name,
                initial_wcu: wcu,
                ..Default::default()
            },
            topology: Topology::clickstream(),
            cache,
            ..Default::default()
        }
    }
}

/// Fluent builder mirroring the demo's drag-and-drop canvas.
#[derive(Debug, Clone, Default)]
pub struct FlowBuilder {
    name: String,
    ingestion: Option<Platform>,
    analytics: Option<Platform>,
    storage: Option<Platform>,
    cache: Option<Platform>,
}

impl FlowBuilder {
    /// Start a flow with the given name.
    pub fn new(name: impl Into<String>) -> FlowBuilder {
        FlowBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Drop a platform onto the ingestion layer.
    pub fn ingestion(mut self, platform: Platform) -> FlowBuilder {
        self.ingestion = Some(platform);
        self
    }

    /// Drop a platform onto the analytics layer.
    pub fn analytics(mut self, platform: Platform) -> FlowBuilder {
        self.analytics = Some(platform);
        self
    }

    /// Drop a platform onto the storage layer.
    pub fn storage(mut self, platform: Platform) -> FlowBuilder {
        self.storage = Some(platform);
        self
    }

    /// Drop a platform onto the optional cache tier.
    pub fn cache(mut self, platform: Platform) -> FlowBuilder {
        self.cache = Some(platform);
        self
    }

    /// Validate and produce the flow.
    ///
    /// Checks: every layer is populated, each platform sits on a layer it
    /// can serve, names are non-empty and unique, and initial capacities
    /// are positive.
    pub fn build(self) -> Result<FlowSpec, FlowerError> {
        if self.name.trim().is_empty() {
            return Err(FlowerError::InvalidFlow("flow name is empty".into()));
        }
        let ingestion = self
            .ingestion
            .ok_or_else(|| FlowerError::InvalidFlow("ingestion layer is empty".into()))?;
        let analytics = self
            .analytics
            .ok_or_else(|| FlowerError::InvalidFlow("analytics layer is empty".into()))?;
        let storage = self
            .storage
            .ok_or_else(|| FlowerError::InvalidFlow("storage layer is empty".into()))?;

        let mut placements = vec![
            (Layer::INGESTION, &ingestion),
            (Layer::ANALYTICS, &analytics),
            (Layer::STORAGE, &storage),
        ];
        if let Some(cache) = &self.cache {
            placements.push((Layer::CACHE, cache));
        }
        for (expected, platform) in &placements {
            if platform.layer() != *expected {
                return Err(FlowerError::InvalidFlow(format!(
                    "platform '{}' cannot serve the {expected} layer",
                    platform.name()
                )));
            }
            if platform.name().trim().is_empty() {
                return Err(FlowerError::InvalidFlow(format!(
                    "{expected} platform has an empty name"
                )));
            }
        }
        let names: Vec<&str> = placements.iter().map(|(_, p)| p.name()).collect();
        if names
            .iter()
            .enumerate()
            .any(|(i, n)| names.iter().skip(i + 1).any(|m| m == n))
        {
            return Err(FlowerError::InvalidFlow(
                "platform names must be unique".into(),
            ));
        }
        if let Platform::Kinesis { shards: 0, .. } = ingestion {
            return Err(FlowerError::InvalidFlow(
                "stream needs at least one shard".into(),
            ));
        }
        if let Platform::Storm { vms: 0, .. } = analytics {
            return Err(FlowerError::InvalidFlow(
                "cluster needs at least one VM".into(),
            ));
        }
        if let Platform::Dynamo { wcu, .. } = storage {
            if wcu < 1.0 {
                return Err(FlowerError::InvalidFlow(
                    "table needs at least 1 WCU".into(),
                ));
            }
        }
        if let Some(Platform::Cache { nodes: 0, .. }) = self.cache {
            return Err(FlowerError::InvalidFlow(
                "cache needs at least one node".into(),
            ));
        }

        Ok(FlowSpec {
            name: self.name,
            ingestion,
            analytics,
            storage,
            cache: self.cache,
        })
    }
}

/// The paper's demo flow (Fig. 1): Kinesis → Storm → DynamoDB with small
/// initial capacities.
#[allow(clippy::expect_used)] // invariant stated in the expect message
pub fn clickstream_flow() -> FlowSpec {
    FlowBuilder::new("clickstream-analytics")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .build()
        .expect("the reference flow is valid")
}

/// The demo flow extended with a fourth tier: a cache on the storage
/// read path, proving the layer registry is open beyond the paper's
/// three layers.
#[allow(clippy::expect_used)] // invariant stated in the expect message
pub fn cached_clickstream_flow() -> FlowSpec {
    FlowBuilder::new("clickstream-analytics-cached")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .cache(Platform::cache("hot-aggregates", 1))
        .build()
        .expect("the reference flow is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_flow_builds() {
        let flow = clickstream_flow();
        assert_eq!(flow.name, "clickstream-analytics");
        assert_eq!(flow.platform(Layer::INGESTION).unwrap().name(), "clicks");
        assert_eq!(flow.platform(Layer::ANALYTICS).unwrap().name(), "counter");
        assert_eq!(flow.platform(Layer::STORAGE).unwrap().name(), "aggregates");
        assert!(flow.platform(Layer::CACHE).is_none());
        assert_eq!(flow.layers(), Layer::ALL.to_vec());
    }

    #[test]
    fn cached_flow_adds_a_fourth_layer() {
        let flow = cached_clickstream_flow();
        assert_eq!(
            flow.platform(Layer::CACHE).unwrap().name(),
            "hot-aggregates"
        );
        assert_eq!(
            flow.layers(),
            vec![
                Layer::INGESTION,
                Layer::ANALYTICS,
                Layer::STORAGE,
                Layer::CACHE
            ]
        );
        let cfg = flow.engine_config();
        let cache = cfg.cache.expect("cache tier configured");
        assert_eq!(cache.name, "hot-aggregates");
        assert_eq!(cache.initial_nodes, 1);
    }

    #[test]
    fn cache_validation() {
        let base = || {
            FlowBuilder::new("x")
                .ingestion(Platform::kinesis("a", 1))
                .analytics(Platform::storm("b", 1))
                .storage(Platform::dynamo("c", 10.0))
        };
        assert!(base().cache(Platform::cache("d", 0)).build().is_err());
        assert!(base().cache(Platform::cache("c", 1)).build().is_err());
        assert!(base().cache(Platform::kinesis("d", 1)).build().is_err());
        assert!(base().cache(Platform::cache("d", 1)).build().is_ok());
    }

    #[test]
    fn engine_config_propagates_capacities() {
        let cfg = clickstream_flow().engine_config();
        assert_eq!(cfg.kinesis.initial_shards, 2);
        assert_eq!(cfg.kinesis.name, "clicks");
        assert_eq!(cfg.storm.initial_vms, 2);
        assert_eq!(cfg.dynamo.initial_wcu, 100.0);
    }

    #[test]
    fn missing_layers_rejected() {
        let err = FlowBuilder::new("x")
            .ingestion(Platform::kinesis("a", 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowerError::InvalidFlow(ref m) if m.contains("analytics")));
    }

    #[test]
    fn wrong_layer_platform_rejected() {
        let err = FlowBuilder::new("x")
            .ingestion(Platform::storm("a", 1))
            .analytics(Platform::storm("b", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowerError::InvalidFlow(ref m) if m.contains("cannot serve")));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = FlowBuilder::new("x")
            .ingestion(Platform::kinesis("same", 1))
            .analytics(Platform::storm("same", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowerError::InvalidFlow(ref m) if m.contains("unique")));
    }

    #[test]
    fn zero_capacities_rejected() {
        let base = || {
            FlowBuilder::new("x")
                .ingestion(Platform::kinesis("a", 1))
                .analytics(Platform::storm("b", 1))
                .storage(Platform::dynamo("c", 10.0))
        };
        assert!(base().ingestion(Platform::kinesis("a", 0)).build().is_err());
        assert!(base().analytics(Platform::storm("b", 0)).build().is_err());
        assert!(base().storage(Platform::dynamo("c", 0.5)).build().is_err());
    }

    #[test]
    fn empty_names_rejected() {
        assert!(FlowBuilder::new("  ")
            .ingestion(Platform::kinesis("a", 1))
            .analytics(Platform::storm("b", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .is_err());
        assert!(FlowBuilder::new("x")
            .ingestion(Platform::kinesis("", 1))
            .analytics(Platform::storm("b", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .is_err());
    }

    #[test]
    fn layer_metadata() {
        assert_eq!(Layer::INGESTION.resource_unit(), "shards");
        assert_eq!(Layer::ANALYTICS.resource_unit(), "VMs");
        assert_eq!(Layer::STORAGE.resource_unit(), "write capacity units");
        assert_eq!(Layer::CACHE.resource_unit(), "cache nodes");
        assert_eq!(Layer::ALL.len(), 3);
        assert_eq!(Layer::ANALYTICS.to_string(), "analytics");
    }
}
