//! Flow definition — the programmatic equivalent of the demo's drag-and-
//! drop **Flow Builder** (§4 step 1, Fig. 5).
//!
//! A flow names one platform per layer; [`FlowBuilder`] validates the
//! combination and [`FlowSpec::engine_config`] materializes the simulated
//! cloud deployment the elasticity manager runs against.

use flower_cloud::{DynamoConfig, EngineConfig, KinesisConfig, StormConfig, Topology};

use crate::error::FlowerError;

/// The three layers of a data analytics flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Stream ingestion (Kinesis in the paper's demo).
    Ingestion,
    /// Stream analytics (Storm on EC2).
    Analytics,
    /// Result storage (DynamoDB).
    Storage,
}

impl Layer {
    /// All layers in pipeline order.
    pub const ALL: [Layer; 3] = [Layer::Ingestion, Layer::Analytics, Layer::Storage];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Ingestion => "ingestion",
            Layer::Analytics => "analytics",
            Layer::Storage => "storage",
        }
    }

    /// The resource unit this layer scales, as the paper names them.
    pub fn resource_unit(self) -> &'static str {
        match self {
            Layer::Ingestion => "shards",
            Layer::Analytics => "VMs",
            Layer::Storage => "write capacity units",
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A platform dropped onto the canvas: which service, its name, and its
/// initial capacity.
#[derive(Debug, Clone, PartialEq)]
pub enum Platform {
    /// A Kinesis-like stream with an initial shard count.
    Kinesis {
        /// Stream name.
        name: String,
        /// Initial shards.
        shards: u32,
    },
    /// A Storm-like cluster with an initial VM count.
    Storm {
        /// Cluster name.
        name: String,
        /// Initial VMs.
        vms: u32,
    },
    /// A DynamoDB-like table with initial write capacity.
    Dynamo {
        /// Table name.
        name: String,
        /// Initial write capacity units.
        wcu: f64,
    },
}

impl Platform {
    /// A Kinesis-like stream.
    pub fn kinesis(name: impl Into<String>, shards: u32) -> Platform {
        Platform::Kinesis {
            name: name.into(),
            shards,
        }
    }

    /// A Storm-like cluster.
    pub fn storm(name: impl Into<String>, vms: u32) -> Platform {
        Platform::Storm {
            name: name.into(),
            vms,
        }
    }

    /// A DynamoDB-like table.
    pub fn dynamo(name: impl Into<String>, wcu: f64) -> Platform {
        Platform::Dynamo {
            name: name.into(),
            wcu,
        }
    }

    /// Which layer this platform can serve.
    pub fn layer(&self) -> Layer {
        match self {
            Platform::Kinesis { .. } => Layer::Ingestion,
            Platform::Storm { .. } => Layer::Analytics,
            Platform::Dynamo { .. } => Layer::Storage,
        }
    }

    /// The platform's display name.
    pub fn name(&self) -> &str {
        match self {
            Platform::Kinesis { name, .. }
            | Platform::Storm { name, .. }
            | Platform::Dynamo { name, .. } => name,
        }
    }
}

/// A validated three-layer flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Flow name.
    pub name: String,
    /// Ingestion platform.
    pub ingestion: Platform,
    /// Analytics platform.
    pub analytics: Platform,
    /// Storage platform.
    pub storage: Platform,
}

impl FlowSpec {
    /// The platform serving `layer`.
    pub fn platform(&self, layer: Layer) -> &Platform {
        match layer {
            Layer::Ingestion => &self.ingestion,
            Layer::Analytics => &self.analytics,
            Layer::Storage => &self.storage,
        }
    }

    /// Materialize the simulated cloud deployment for this flow.
    pub fn engine_config(&self) -> EngineConfig {
        let (stream_name, shards) = match &self.ingestion {
            Platform::Kinesis { name, shards } => (name.clone(), *shards),
            _ => unreachable!("validated by the builder"),
        };
        let (cluster_name, vms) = match &self.analytics {
            Platform::Storm { name, vms } => (name.clone(), *vms),
            _ => unreachable!("validated by the builder"),
        };
        let (table_name, wcu) = match &self.storage {
            Platform::Dynamo { name, wcu } => (name.clone(), *wcu),
            _ => unreachable!("validated by the builder"),
        };
        EngineConfig {
            kinesis: KinesisConfig {
                name: stream_name,
                initial_shards: shards,
                ..Default::default()
            },
            storm: StormConfig {
                name: cluster_name,
                initial_vms: vms,
                ..Default::default()
            },
            dynamo: DynamoConfig {
                name: table_name,
                initial_wcu: wcu,
                ..Default::default()
            },
            topology: Topology::clickstream(),
            ..Default::default()
        }
    }
}

/// Fluent builder mirroring the demo's drag-and-drop canvas.
#[derive(Debug, Clone, Default)]
pub struct FlowBuilder {
    name: String,
    ingestion: Option<Platform>,
    analytics: Option<Platform>,
    storage: Option<Platform>,
}

impl FlowBuilder {
    /// Start a flow with the given name.
    pub fn new(name: impl Into<String>) -> FlowBuilder {
        FlowBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Drop a platform onto the ingestion layer.
    pub fn ingestion(mut self, platform: Platform) -> FlowBuilder {
        self.ingestion = Some(platform);
        self
    }

    /// Drop a platform onto the analytics layer.
    pub fn analytics(mut self, platform: Platform) -> FlowBuilder {
        self.analytics = Some(platform);
        self
    }

    /// Drop a platform onto the storage layer.
    pub fn storage(mut self, platform: Platform) -> FlowBuilder {
        self.storage = Some(platform);
        self
    }

    /// Validate and produce the flow.
    ///
    /// Checks: every layer is populated, each platform sits on a layer it
    /// can serve, names are non-empty and unique, and initial capacities
    /// are positive.
    pub fn build(self) -> Result<FlowSpec, FlowerError> {
        if self.name.trim().is_empty() {
            return Err(FlowerError::InvalidFlow("flow name is empty".into()));
        }
        let ingestion = self
            .ingestion
            .ok_or_else(|| FlowerError::InvalidFlow("ingestion layer is empty".into()))?;
        let analytics = self
            .analytics
            .ok_or_else(|| FlowerError::InvalidFlow("analytics layer is empty".into()))?;
        let storage = self
            .storage
            .ok_or_else(|| FlowerError::InvalidFlow("storage layer is empty".into()))?;

        for (expected, platform) in [
            (Layer::Ingestion, &ingestion),
            (Layer::Analytics, &analytics),
            (Layer::Storage, &storage),
        ] {
            if platform.layer() != expected {
                return Err(FlowerError::InvalidFlow(format!(
                    "platform '{}' cannot serve the {expected} layer",
                    platform.name()
                )));
            }
            if platform.name().trim().is_empty() {
                return Err(FlowerError::InvalidFlow(format!(
                    "{expected} platform has an empty name"
                )));
            }
        }
        let (n_ingest, n_analytics, n_storage) =
            (ingestion.name(), analytics.name(), storage.name());
        if n_ingest == n_analytics || n_ingest == n_storage || n_analytics == n_storage {
            return Err(FlowerError::InvalidFlow(
                "platform names must be unique".into(),
            ));
        }
        if let Platform::Kinesis { shards: 0, .. } = ingestion {
            return Err(FlowerError::InvalidFlow(
                "stream needs at least one shard".into(),
            ));
        }
        if let Platform::Storm { vms: 0, .. } = analytics {
            return Err(FlowerError::InvalidFlow(
                "cluster needs at least one VM".into(),
            ));
        }
        if let Platform::Dynamo { wcu, .. } = storage {
            if wcu < 1.0 {
                return Err(FlowerError::InvalidFlow(
                    "table needs at least 1 WCU".into(),
                ));
            }
        }

        Ok(FlowSpec {
            name: self.name,
            ingestion,
            analytics,
            storage,
        })
    }
}

/// The paper's demo flow (Fig. 1): Kinesis → Storm → DynamoDB with small
/// initial capacities.
#[allow(clippy::expect_used)] // invariant stated in the expect message
pub fn clickstream_flow() -> FlowSpec {
    FlowBuilder::new("clickstream-analytics")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .build()
        .expect("the reference flow is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_flow_builds() {
        let flow = clickstream_flow();
        assert_eq!(flow.name, "clickstream-analytics");
        assert_eq!(flow.platform(Layer::Ingestion).name(), "clicks");
        assert_eq!(flow.platform(Layer::Analytics).name(), "counter");
        assert_eq!(flow.platform(Layer::Storage).name(), "aggregates");
    }

    #[test]
    fn engine_config_propagates_capacities() {
        let cfg = clickstream_flow().engine_config();
        assert_eq!(cfg.kinesis.initial_shards, 2);
        assert_eq!(cfg.kinesis.name, "clicks");
        assert_eq!(cfg.storm.initial_vms, 2);
        assert_eq!(cfg.dynamo.initial_wcu, 100.0);
    }

    #[test]
    fn missing_layers_rejected() {
        let err = FlowBuilder::new("x")
            .ingestion(Platform::kinesis("a", 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowerError::InvalidFlow(ref m) if m.contains("analytics")));
    }

    #[test]
    fn wrong_layer_platform_rejected() {
        let err = FlowBuilder::new("x")
            .ingestion(Platform::storm("a", 1))
            .analytics(Platform::storm("b", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowerError::InvalidFlow(ref m) if m.contains("cannot serve")));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = FlowBuilder::new("x")
            .ingestion(Platform::kinesis("same", 1))
            .analytics(Platform::storm("same", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowerError::InvalidFlow(ref m) if m.contains("unique")));
    }

    #[test]
    fn zero_capacities_rejected() {
        let base = || {
            FlowBuilder::new("x")
                .ingestion(Platform::kinesis("a", 1))
                .analytics(Platform::storm("b", 1))
                .storage(Platform::dynamo("c", 10.0))
        };
        assert!(base().ingestion(Platform::kinesis("a", 0)).build().is_err());
        assert!(base().analytics(Platform::storm("b", 0)).build().is_err());
        assert!(base().storage(Platform::dynamo("c", 0.5)).build().is_err());
    }

    #[test]
    fn empty_names_rejected() {
        assert!(FlowBuilder::new("  ")
            .ingestion(Platform::kinesis("a", 1))
            .analytics(Platform::storm("b", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .is_err());
        assert!(FlowBuilder::new("x")
            .ingestion(Platform::kinesis("", 1))
            .analytics(Platform::storm("b", 1))
            .storage(Platform::dynamo("c", 10.0))
            .build()
            .is_err());
    }

    #[test]
    fn layer_metadata() {
        assert_eq!(Layer::Ingestion.resource_unit(), "shards");
        assert_eq!(Layer::Analytics.resource_unit(), "VMs");
        assert_eq!(Layer::Storage.resource_unit(), "write capacity units");
        assert_eq!(Layer::ALL.len(), 3);
        assert_eq!(Layer::Analytics.to_string(), "analytics");
    }
}
