//! Text dashboards — the simulated stand-in for the demo GUI's live
//! charts (Fig. 6: "Elasticity control and monitoring interface").
//!
//! Renders time series as Unicode sparklines and block charts so the
//! examples and experiment binaries can show controller behaviour in a
//! terminal.

use flower_sim::SimTime;

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render values as a one-line sparkline. Empty input yields an empty
/// string; a constant series renders at the lowest level.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            let idx = if span <= 0.0 {
                0
            } else {
                (((v - lo) / span) * 7.0).round() as usize
            };
            SPARK_LEVELS[idx.min(7)]
        })
        .collect()
}

/// Downsample a series to at most `width` points by bucket-averaging
/// (keeps the shape when traces are long).
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    assert!(width > 0, "width must be positive");
    if values.len() <= width {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    let chunk = values.len() as f64 / width as f64;
    for i in 0..width {
        let start = (i as f64 * chunk) as usize;
        let end = (((i + 1) as f64 * chunk) as usize)
            .min(values.len())
            .max(start + 1);
        let bucket = &values[start..end];
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

/// A labelled chart panel of one `(time, value)` trace.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title (e.g. "analytics CPU %").
    pub title: String,
    /// The trace.
    pub trace: Vec<(SimTime, f64)>,
    /// Optional reference line (the controller setpoint).
    pub reference: Option<f64>,
}

impl Panel {
    /// Create a panel.
    pub fn new(title: impl Into<String>, trace: Vec<(SimTime, f64)>) -> Panel {
        Panel {
            title: title.into(),
            trace,
            reference: None,
        }
    }

    /// Attach a reference (setpoint) line.
    pub fn with_reference(mut self, reference: f64) -> Panel {
        self.reference = Some(reference);
        self
    }

    /// Render to a fixed character width: title, summary line, sparkline.
    pub fn render(&self, width: usize) -> String {
        let values: Vec<f64> = self.trace.iter().map(|&(_, v)| v).collect();
        if values.is_empty() {
            return format!("{}\n  (no data)\n", self.title);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        #[allow(clippy::expect_used)] // invariant stated in the expect message
        let last = *values.last().expect("values verified non-empty above");
        let reference = self
            .reference
            .map(|r| format!("  setpoint={r:.1}"))
            .unwrap_or_default();
        let spark = sparkline(&downsample(&values, width));
        format!(
            "{}  [min={lo:.1} max={hi:.1} last={last:.1}{reference}]\n  {spark}\n",
            self.title
        )
    }
}

/// A multi-panel dashboard.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    panels: Vec<Panel>,
}

impl Dashboard {
    /// An empty dashboard.
    pub fn new() -> Dashboard {
        Dashboard::default()
    }

    /// Add a panel (builder style).
    pub fn panel(mut self, panel: Panel) -> Dashboard {
        self.panels.push(panel);
        self
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// Whether the dashboard has no panels.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// Render every panel at the given width.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        for p in &self.panels {
            out.push_str(&p.render(width));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(values: &[f64]) -> Vec<(SimTime, f64)> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime::from_secs(i as u64), v))
            .collect()
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        // Extremes map to extremes.
        let s2 = sparkline(&[10.0, 0.0, 10.0]);
        assert_eq!(s2.chars().next(), Some('█'));
        assert_eq!(s2.chars().nth(1), Some('▁'));
    }

    #[test]
    fn downsample_preserves_short_series() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(downsample(&v, 10), v);
    }

    #[test]
    fn downsample_buckets_long_series() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        // Monotone input stays monotone after bucket-averaging.
        assert!(d.windows(2).all(|w| w[0] < w[1]));
        // Overall mean is preserved for equal buckets.
        let mean_in = v.iter().sum::<f64>() / v.len() as f64;
        let mean_out = d.iter().sum::<f64>() / d.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn panel_renders_summary_and_reference() {
        let p = Panel::new("cpu", trace(&[10.0, 50.0, 90.0])).with_reference(60.0);
        let r = p.render(40);
        assert!(r.contains("cpu"));
        assert!(r.contains("min=10.0"));
        assert!(r.contains("max=90.0"));
        assert!(r.contains("last=90.0"));
        assert!(r.contains("setpoint=60.0"));
        assert!(r.lines().count() == 2);
    }

    #[test]
    fn empty_panel_renders_no_data() {
        let p = Panel::new("empty", vec![]);
        assert!(p.render(40).contains("no data"));
    }

    #[test]
    fn dashboard_concatenates_panels() {
        let d = Dashboard::new()
            .panel(Panel::new("a", trace(&[1.0, 2.0])))
            .panel(Panel::new("b", trace(&[3.0, 4.0])));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        let r = d.render(20);
        assert!(r.contains('a') && r.contains('b'));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_downsample_panics() {
        downsample(&[1.0], 0);
    }
}
