//! The crate-wide error type.

use flower_stats::StatsError;

/// Errors surfaced by Flower's components.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowerError {
    /// A flow definition was structurally invalid.
    InvalidFlow(String),
    /// A configuration value was out of range or inconsistent.
    InvalidConfig(String),
    /// The dependency analyzer could not fit a model.
    Analysis(StatsError),
    /// A requested metric does not exist (yet).
    UnknownMetric(String),
    /// The share analyzer found no feasible provisioning plan.
    NoFeasiblePlan,
}

impl std::fmt::Display for FlowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowerError::InvalidFlow(msg) => write!(f, "invalid flow: {msg}"),
            FlowerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FlowerError::Analysis(e) => write!(f, "dependency analysis failed: {e}"),
            FlowerError::UnknownMetric(id) => write!(f, "unknown metric: {id}"),
            FlowerError::NoFeasiblePlan => {
                write!(f, "no feasible provisioning plan within the budget")
            }
        }
    }
}

impl std::error::Error for FlowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowerError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for FlowerError {
    fn from(e: StatsError) -> Self {
        FlowerError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FlowerError::InvalidFlow("no ingestion".into())
            .to_string()
            .contains("no ingestion"));
        assert!(FlowerError::NoFeasiblePlan.to_string().contains("budget"));
        let err: FlowerError = StatsError::ZeroVariance.into();
        assert!(err.to_string().contains("zero variance"));
    }

    #[test]
    fn source_is_wired() {
        use std::error::Error;
        let err: FlowerError = StatsError::ZeroVariance.into();
        assert!(err.source().is_some());
        assert!(FlowerError::NoFeasiblePlan.source().is_none());
    }
}
