//! CSV export of episode artifacts.
//!
//! Experiment binaries and downstream plotting tools consume episodes as
//! flat CSV: one row per simulated second with every trace column, plus
//! a compact summary. Hand-rolled writers keep the dependency set small;
//! the format round-trips through [`flower_workload::RateTrace`]-style
//! parsing and ordinary spreadsheet tools.

use std::io::Write;

use crate::elasticity::EpisodeReport;
use crate::flow::Layer;

/// Write the per-tick traces of an episode as CSV.
///
/// Columns: `t_seconds, arrival_rate, ingest_util_pct, shards,
/// cpu_pct, vms, write_util_pct, wcu, read_util_pct, rcu`.
pub fn episode_to_csv<W: Write>(report: &EpisodeReport, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "t_seconds,arrival_rate,ingest_util_pct,shards,cpu_pct,vms,write_util_pct,wcu,read_util_pct,rcu"
    )?;
    let n = report.arrival_trace.len();
    for i in 0..n {
        let (t, arrival) = report.arrival_trace[i];
        let get = |trace: &[(flower_sim::SimTime, f64)]| {
            trace.get(i).map(|&(_, v)| v).unwrap_or(f64::NAN)
        };
        writeln!(
            w,
            "{},{arrival},{},{},{},{},{},{},{},{}",
            t.as_secs(),
            get(report.measurements(Layer::INGESTION)),
            get(report.actuators(Layer::INGESTION)),
            get(report.measurements(Layer::ANALYTICS)),
            get(report.actuators(Layer::ANALYTICS)),
            get(report.measurements(Layer::STORAGE)),
            get(report.actuators(Layer::STORAGE)),
            get(&report.read_utilization_trace),
            get(&report.rcu_trace),
        )?;
    }
    Ok(())
}

/// Write the episode's scalar summary as a two-column `key,value` CSV.
pub fn summary_to_csv<W: Write>(report: &EpisodeReport, mut w: W) -> std::io::Result<()> {
    writeln!(w, "key,value")?;
    writeln!(w, "offered_records,{}", report.offered_records)?;
    writeln!(w, "accepted_records,{}", report.accepted_records)?;
    writeln!(w, "throttled_ingest,{}", report.throttled_ingest)?;
    writeln!(w, "throttled_storage,{}", report.throttled_storage)?;
    writeln!(w, "throttled_reads,{}", report.throttled_reads)?;
    writeln!(w, "dropped_tuples,{}", report.dropped_tuples)?;
    writeln!(w, "total_cost_dollars,{}", report.total_cost_dollars)?;
    writeln!(w, "ingest_loss_rate,{}", report.ingest_loss_rate())?;
    for (layer, actions) in report.layers.iter().zip(&report.scaling_actions) {
        writeln!(w, "scaling_actions_{},{actions}", layer.label())?;
    }
    writeln!(w, "rcu_actions,{}", report.rcu_actions)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerSpec;
    use crate::flow::clickstream_flow;
    use crate::prelude::*;

    fn small_report() -> EpisodeReport {
        let mut manager = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::constant(800.0))
            .all_controllers(ControllerSpec::Static)
            .seed(3)
            .build()
            .unwrap();
        manager.run_for_mins(2)
    }

    #[test]
    fn episode_csv_has_header_and_all_rows() {
        let report = small_report();
        let mut buf = Vec::new();
        episode_to_csv(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 120, "header + one row per second");
        assert!(lines[0].starts_with("t_seconds,arrival_rate"));
        assert_eq!(lines[0].split(',').count(), 10);
        // Every data row parses as numbers.
        for row in &lines[1..] {
            for cell in row.split(',') {
                cell.parse::<f64>()
                    .unwrap_or_else(|_| panic!("bad cell {cell}"));
            }
        }
        // Time column counts up in seconds.
        assert!(lines[1].starts_with("0,"));
        assert!(lines[120].starts_with("119,"));
    }

    #[test]
    fn ragged_traces_round_trip_nan_cells() {
        let t = |s: u64| flower_sim::SimTime::from_secs(s);
        // A hand-built report whose traces are shorter than the arrival
        // trace (a ragged episode): missing cells take the NaN fill and
        // must survive a CSV round-trip.
        let report = EpisodeReport {
            layers: Layer::ALL.to_vec(),
            arrival_trace: vec![(t(0), 100.0), (t(1), 110.0), (t(2), 120.0)],
            measurement_traces: vec![
                vec![(t(0), 50.0), (t(1), 55.0)], // one short
                vec![(t(0), 40.0)],               // two short
                Vec::new(),                       // empty
            ],
            actuator_traces: vec![
                vec![(t(0), 2.0), (t(1), 2.0), (t(2), 3.0)],
                vec![(t(0), 2.0)],
                Vec::new(),
            ],
            read_utilization_trace: Vec::new(),
            rcu_trace: vec![(t(0), 100.0), (t(1), 100.0)],
            total_cost_dollars: 0.0,
            throttled_ingest: 0,
            throttled_storage: 0,
            stored_items: 0,
            dropped_tuples: 0,
            offered_records: 0,
            accepted_records: 0,
            scaling_actions: vec![0; 3],
            rejected_actuations: vec![0; 3],
            throttled_reads: 0,
            rcu_actions: 0,
            events_executed: 0,
            queue_high_water: 0,
        };
        let mut buf = Vec::new();
        episode_to_csv(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3, "header + one row per arrival tick");
        assert_eq!(
            lines[0],
            "t_seconds,arrival_rate,ingest_util_pct,shards,cpu_pct,vms,write_util_pct,wcu,read_util_pct,rcu"
        );
        let rows: Vec<Vec<f64>> = lines[1..]
            .iter()
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        for row in &rows {
            assert_eq!(row.len(), 10, "every row carries every column");
        }
        // Present cells survive verbatim...
        assert_eq!(rows[0][0], 0.0);
        assert_eq!(rows[2][1], 120.0);
        assert_eq!(rows[1][2], 55.0);
        assert_eq!(rows[2][3], 3.0);
        // ...and cells past a trace's end round-trip as NaN.
        assert!(rows[2][2].is_nan(), "ingest_util past its trace end");
        assert!(rows[1][4].is_nan() && rows[2][4].is_nan(), "cpu_pct tail");
        assert!(rows[1][5].is_nan(), "vms tail");
        assert!(rows.iter().all(|r| r[6].is_nan()), "empty write_util trace");
        assert!(rows.iter().all(|r| r[7].is_nan()), "empty wcu trace");
        assert!(rows.iter().all(|r| r[8].is_nan()), "empty read_util trace");
        assert!(rows[2][9].is_nan() && !rows[0][9].is_nan(), "rcu tail only");
    }

    #[test]
    fn summary_csv_contains_all_keys() {
        let report = small_report();
        let mut buf = Vec::new();
        summary_to_csv(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for key in [
            "offered_records",
            "accepted_records",
            "throttled_ingest",
            "throttled_storage",
            "throttled_reads",
            "dropped_tuples",
            "total_cost_dollars",
            "ingest_loss_rate",
            "scaling_actions_ingestion",
            "scaling_actions_analytics",
            "scaling_actions_storage",
            "rcu_actions",
        ] {
            assert!(text.contains(&format!("{key},")), "missing {key}");
        }
        assert_eq!(text.lines().count(), 13);
    }

    #[test]
    fn csv_values_match_report() {
        let report = small_report();
        let mut buf = Vec::new();
        summary_to_csv(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let line = text
            .lines()
            .find(|l| l.starts_with("offered_records,"))
            .unwrap();
        let value: u64 = line.split(',').nth(1).unwrap().parse().unwrap();
        assert_eq!(value, report.offered_records);
    }
}
