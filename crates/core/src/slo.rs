//! Service Level Objectives.
//!
//! The paper frames the whole system around SLOs: "Resource allocation
//! thus needs to cater for diverse resource requirements and their cost
//! dimensions to meet the users' Service Level Objectives (SLOs)" (§1),
//! and the demo lets attendees "compare their impacts on SLOs" (§4).
//! This module makes the objective a first-class value: an [`SloSpec`]
//! declares what the user promises, [`SloSpec::evaluate`] scores a
//! finished [`EpisodeReport`] against it, and the resulting [`SloReport`]
//! says which objectives held, which broke, and by how much.

use crate::elasticity::EpisodeReport;
use crate::flow::Layer;

/// One service-level objective over an episode.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// At most this fraction of offered records may be lost at ingestion
    /// (e.g. `0.01` = 99 % delivery).
    MaxIngestLossRate(f64),
    /// At most this fraction of storage writes may be throttled.
    MaxStorageThrottleRate(f64),
    /// A layer's measurement must stay within `setpoint ± band` for at
    /// least `min_attainment` of the episode (utilization SLO).
    UtilizationBand {
        /// The layer measured.
        layer: Layer,
        /// Band centre.
        setpoint: f64,
        /// Band half-width.
        band: f64,
        /// Required in-band fraction of samples (e.g. 0.9).
        min_attainment: f64,
    },
    /// Total episode cost must not exceed this many dollars.
    MaxCost(f64),
    /// The analytics backlog must never exceed this many tuples
    /// (a processing-latency proxy).
    MaxBacklog(u64),
}

impl Objective {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Objective::MaxIngestLossRate(r) => format!("ingest loss <= {:.2}%", r * 100.0),
            Objective::MaxStorageThrottleRate(r) => {
                format!("storage throttle <= {:.2}%", r * 100.0)
            }
            Objective::UtilizationBand {
                layer,
                setpoint,
                band,
                min_attainment,
            } => format!(
                "{layer} within {setpoint}±{band} for >= {:.0}%",
                min_attainment * 100.0
            ),
            Objective::MaxCost(d) => format!("cost <= ${d:.2}"),
            Objective::MaxBacklog(n) => format!("backlog <= {n} tuples"),
        }
    }
}

/// The outcome of evaluating one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveOutcome {
    /// The objective.
    pub objective: Objective,
    /// Whether it held.
    pub met: bool,
    /// The measured value the objective was compared against.
    pub measured: f64,
    /// The threshold it was compared to.
    pub threshold: f64,
}

impl ObjectiveOutcome {
    /// Margin to the threshold: positive = headroom, negative = breach
    /// magnitude (in the objective's own unit).
    pub fn margin(&self) -> f64 {
        self.threshold - self.measured
    }
}

/// A set of objectives — the user's service promise for a flow.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    objectives: Vec<Objective>,
}

impl SloSpec {
    /// An empty spec (always met).
    pub fn new() -> SloSpec {
        SloSpec::default()
    }

    /// Add an objective (builder style).
    pub fn with(mut self, objective: Objective) -> SloSpec {
        self.objectives.push(objective);
        self
    }

    /// A sensible default promise for the click-stream demo flow:
    /// 99 % ingest delivery, 98 % storage writes, analytics CPU within
    /// 60 ± 25 for 80 % of the episode.
    pub fn clickstream_default() -> SloSpec {
        SloSpec::new()
            .with(Objective::MaxIngestLossRate(0.01))
            .with(Objective::MaxStorageThrottleRate(0.02))
            .with(Objective::UtilizationBand {
                layer: Layer::ANALYTICS,
                setpoint: 60.0,
                band: 25.0,
                min_attainment: 0.8,
            })
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Whether the spec is empty.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Score an episode against every objective.
    pub fn evaluate(&self, report: &EpisodeReport) -> SloReport {
        let outcomes = self
            .objectives
            .iter()
            .map(|o| evaluate_objective(o, report))
            .collect();
        SloReport { outcomes }
    }
}

fn evaluate_objective(objective: &Objective, report: &EpisodeReport) -> ObjectiveOutcome {
    let (measured, threshold) = match objective {
        Objective::MaxIngestLossRate(r) => (report.ingest_loss_rate(), *r),
        Objective::MaxStorageThrottleRate(r) => {
            // Throttle rate over attempted writes.
            let attempted = report.stored_items + report.throttled_storage;
            let rate = if attempted == 0 {
                0.0
            } else {
                report.throttled_storage as f64 / attempted as f64
            };
            (rate, *r)
        }
        Objective::UtilizationBand {
            layer,
            setpoint,
            band,
            min_attainment,
        } => {
            let samples = report.measurements(*layer);
            if samples.is_empty() {
                (0.0, *min_attainment)
            } else {
                let in_band = samples
                    .iter()
                    .filter(|&&(_, v)| (v - setpoint).abs() <= *band)
                    .count();
                (in_band as f64 / samples.len() as f64, *min_attainment)
            }
        }
        Objective::MaxCost(d) => (report.total_cost_dollars, *d),
        Objective::MaxBacklog(limit) => {
            // Backlog is not traced directly in the report; the latency
            // proxy is dropped tuples (backlog bound breaches).
            (report.dropped_tuples as f64, *limit as f64)
        }
    };
    let met = match objective {
        // "At most" objectives: measured must not exceed the threshold.
        Objective::MaxIngestLossRate(_)
        | Objective::MaxStorageThrottleRate(_)
        | Objective::MaxCost(_) => measured <= threshold + 1e-12,
        // Attainment objectives: measured must reach the threshold.
        Objective::UtilizationBand { .. } => measured >= threshold - 1e-12,
        // Backlog: any drop is a breach.
        Objective::MaxBacklog(limit) => report.dropped_tuples <= *limit,
    };
    ObjectiveOutcome {
        objective: objective.clone(),
        met,
        measured,
        threshold,
    }
}

/// The scored promise.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// One outcome per objective, in spec order.
    pub outcomes: Vec<ObjectiveOutcome>,
}

impl SloReport {
    /// Whether every objective held.
    pub fn all_met(&self) -> bool {
        self.outcomes.iter().all(|o| o.met)
    }

    /// The objectives that broke.
    pub fn breaches(&self) -> Vec<&ObjectiveOutcome> {
        self.outcomes.iter().filter(|o| !o.met).collect()
    }

    /// Render as an aligned text summary.
    pub fn to_table(&self) -> String {
        let mut out = String::from("SLO report:\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "  [{}] {:<45} measured {:.4} vs {:.4}\n",
                if o.met { "MET " } else { "MISS" },
                o.objective.label(),
                o.measured,
                o.threshold
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerSpec;
    use crate::flow::clickstream_flow;
    use crate::prelude::*;

    fn run(rate: f64, spec: ControllerSpec, minutes: u64) -> EpisodeReport {
        let mut manager = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::constant(rate))
            .all_controllers(spec)
            .seed(7)
            .build()
            .unwrap();
        manager.run_for_mins(minutes)
    }

    #[test]
    fn healthy_episode_meets_the_default_slo() {
        let report = run(1_200.0, ControllerSpec::adaptive(60.0), 20);
        let slo = SloSpec::clickstream_default();
        assert_eq!(slo.len(), 3);
        assert!(!slo.is_empty());
        let scored = slo.evaluate(&report);
        assert!(
            scored.all_met(),
            "healthy flow should meet the default promise:\n{}",
            scored.to_table()
        );
        assert!(scored.breaches().is_empty());
    }

    #[test]
    fn starved_static_episode_breaks_delivery() {
        // 2 shards cannot carry 5,000 rec/s; the static flow loses >1 %.
        let report = run(5_000.0, ControllerSpec::Static, 10);
        let scored = SloSpec::new()
            .with(Objective::MaxIngestLossRate(0.01))
            .evaluate(&report);
        assert!(!scored.all_met());
        let breach = &scored.breaches()[0];
        assert!(breach.measured > 0.01);
        assert!(breach.margin() < 0.0);
    }

    #[test]
    fn cost_objective_binds() {
        let report = run(1_000.0, ControllerSpec::adaptive(60.0), 20);
        let generous = SloSpec::new()
            .with(Objective::MaxCost(10.0))
            .evaluate(&report);
        assert!(generous.all_met());
        let stingy = SloSpec::new()
            .with(Objective::MaxCost(0.0001))
            .evaluate(&report);
        assert!(!stingy.all_met());
    }

    #[test]
    fn utilization_band_attainment() {
        let report = run(1_200.0, ControllerSpec::adaptive(60.0), 20);
        // A generous band is attained; an impossible band is not.
        let wide = SloSpec::new()
            .with(Objective::UtilizationBand {
                layer: Layer::ANALYTICS,
                setpoint: 60.0,
                band: 60.0,
                min_attainment: 0.9,
            })
            .evaluate(&report);
        assert!(wide.all_met());
        let impossible = SloSpec::new()
            .with(Objective::UtilizationBand {
                layer: Layer::ANALYTICS,
                setpoint: 60.0,
                band: 0.01,
                min_attainment: 0.99,
            })
            .evaluate(&report);
        assert!(!impossible.all_met());
    }

    #[test]
    fn backlog_objective_counts_drops() {
        let report = run(800.0, ControllerSpec::adaptive(60.0), 5);
        assert_eq!(report.dropped_tuples, 0);
        let scored = SloSpec::new()
            .with(Objective::MaxBacklog(0))
            .evaluate(&report);
        assert!(scored.all_met());
    }

    #[test]
    fn empty_spec_is_always_met() {
        let report = run(500.0, ControllerSpec::Static, 2);
        assert!(SloSpec::new().evaluate(&report).all_met());
    }

    #[test]
    fn table_renders_outcomes() {
        let report = run(800.0, ControllerSpec::adaptive(60.0), 5);
        let scored = SloSpec::clickstream_default().evaluate(&report);
        let table = scored.to_table();
        assert!(table.contains("SLO report"));
        assert!(table.contains("ingest loss"));
        assert_eq!(table.lines().count(), 1 + scored.outcomes.len());
    }

    #[test]
    fn labels_are_readable() {
        assert!(Objective::MaxIngestLossRate(0.01).label().contains("1.00%"));
        assert!(Objective::MaxCost(2.5).label().contains("$2.50"));
        assert!(Objective::MaxBacklog(10).label().contains("10 tuples"));
        assert!(Objective::UtilizationBand {
            layer: Layer::ANALYTICS,
            setpoint: 60.0,
            band: 15.0,
            min_attainment: 0.8
        }
        .label()
        .contains("analytics"));
    }
}
