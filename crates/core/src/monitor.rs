//! Cross-Platform Monitoring — paper §3.4.
//!
//! "Flower introduces a module called all-in-one-place visualizer, which
//! allows users to visually define a monitoring layer on top of multiple
//! systems. The module calls the APIs of the systems, such as CloudWatch
//! and Storm, and consolidates diverse performance measures in an
//! integrated user interface."
//!
//! [`CrossPlatformMonitor`] is that consolidation layer: it snapshots
//! every registered metric across all service namespaces in one call and
//! renders the result as a text table (the simulated stand-in for the
//! demo GUI of Fig. 6).

use flower_cloud::alarms::{Alarm, AlarmSet, AlarmTransition, Comparison};
use flower_cloud::{MetricId, MetricsStore, Statistic};
use flower_sim::{SimDuration, SimTime};

use crate::flow::Layer;

/// One consolidated row: a metric's window statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorRow {
    /// The layer the metric belongs to.
    pub layer: Layer,
    /// The metric.
    pub metric: MetricId,
    /// Most recent value.
    pub latest: f64,
    /// Window average.
    pub average: f64,
    /// Window minimum.
    pub minimum: f64,
    /// Window maximum.
    pub maximum: f64,
    /// Datapoints in the window.
    pub samples: usize,
}

/// A point-in-time consolidated view across all layers.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Window the statistics cover.
    pub window: SimDuration,
    /// One row per metric with data.
    pub rows: Vec<MonitorRow>,
}

impl MonitorSnapshot {
    /// Rows of one layer.
    pub fn layer_rows(&self, layer: Layer) -> Vec<&MonitorRow> {
        self.rows.iter().filter(|r| r.layer == layer).collect()
    }

    /// Find a row by metric name (first match).
    pub fn row(&self, metric_name: &str) -> Option<&MonitorRow> {
        self.rows.iter().find(|r| r.metric.metric == metric_name)
    }

    /// Render as an aligned text table — the all-in-one-place view.
    /// Every attached alarm is appended below the metric rows with its
    /// current state (`OK`, `INSUFFICIENT_DATA`, or `ALARM`) — a healthy
    /// alarm is information too, not just a firing one.
    pub fn to_table_with_alarms(&self, alarms: &AlarmSet) -> String {
        let mut out = self.to_table();
        if !alarms.is_empty() {
            out.push_str("alarms:\n");
            for (name, state) in alarms.states() {
                out.push_str(&format!("  {name} -> {state}\n"));
            }
        }
        out
    }

    /// Render as an aligned text table — the all-in-one-place view.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Flower cross-platform monitor @ {} (window {}) ===\n",
            self.at, self.window
        ));
        out.push_str(&format!(
            "{:<10} {:<45} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
            "layer", "metric", "latest", "avg", "min", "max", "samples"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<45} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>8}\n",
                row.layer.label(),
                row.metric.to_string(),
                row.latest,
                row.average,
                row.minimum,
                row.maximum,
                row.samples
            ));
        }
        out
    }
}

/// The consolidating monitor.
#[derive(Debug, Clone)]
pub struct CrossPlatformMonitor {
    registered: Vec<(Layer, MetricId)>,
    alarms: AlarmSet,
}

impl CrossPlatformMonitor {
    /// An empty monitor.
    pub fn new() -> CrossPlatformMonitor {
        CrossPlatformMonitor {
            registered: Vec::new(),
            alarms: AlarmSet::new(),
        }
    }

    /// Attach a metric alarm to the consolidated view; alarms are
    /// evaluated on every [`CrossPlatformMonitor::observe`] call.
    pub fn add_alarm(&mut self, alarm: Alarm) {
        self.alarms.add(alarm);
    }

    /// The alarm set (states, firing list, transition history).
    pub fn alarms(&self) -> &AlarmSet {
        &self.alarms
    }

    /// Evaluate all attached alarms at `now`, returning this round's
    /// state transitions.
    pub fn observe(&mut self, store: &MetricsStore, now: SimTime) -> Vec<AlarmTransition> {
        self.alarms.evaluate(store, now)
    }

    /// Register a metric under a layer. Returns `true` when the metric
    /// is new; re-registering an already-known metric updates its layer
    /// (last wins — previously a conflicting layer was silently dropped)
    /// and returns `false`.
    pub fn register(&mut self, layer: Layer, metric: MetricId) -> bool {
        match self.registered.iter_mut().find(|(_, m)| *m == metric) {
            Some(entry) => {
                entry.0 = layer;
                false
            }
            None => {
                self.registered.push((layer, metric));
                true
            }
        }
    }

    /// Register every headline metric of the click-stream flow.
    pub fn for_clickstream(stream: &str, cluster: &str, table: &str) -> CrossPlatformMonitor {
        use flower_cloud::engine::metric_names::*;
        let mut monitor = CrossPlatformMonitor::new();
        for name in [
            INCOMING_RECORDS,
            WRITE_THROTTLED,
            SHARD_UTILIZATION,
            OPEN_SHARDS,
        ] {
            monitor.register(Layer::INGESTION, MetricId::new(NS_KINESIS, name, stream));
        }
        for name in [
            CPU_UTILIZATION,
            TUPLES_PROCESSED,
            BACKLOG,
            PROCESS_LATENCY,
            RUNNING_VMS,
        ] {
            monitor.register(Layer::ANALYTICS, MetricId::new(NS_STORM, name, cluster));
        }
        for name in [
            CONSUMED_WCU,
            DYNAMO_THROTTLED,
            WRITE_UTILIZATION,
            PROVISIONED_WCU,
            CONSUMED_RCU,
            DYNAMO_READ_THROTTLED,
            READ_UTILIZATION,
            PROVISIONED_RCU,
        ] {
            monitor.register(Layer::STORAGE, MetricId::new(NS_DYNAMO, name, table));
        }
        // Default health alarms, one per layer (1-minute average over two
        // consecutive evaluations, CloudWatch-style).
        let minute = SimDuration::from_secs(60);
        monitor.add_alarm(Alarm::new(
            "ingestion-throttling",
            MetricId::new(NS_KINESIS, WRITE_THROTTLED, stream),
            Statistic::Sum,
            minute,
            Comparison::GreaterThan,
            0.0,
            2,
        ));
        monitor.add_alarm(Alarm::new(
            "analytics-cpu-high",
            MetricId::new(NS_STORM, CPU_UTILIZATION, cluster),
            Statistic::Average,
            minute,
            Comparison::GreaterThan,
            85.0,
            2,
        ));
        monitor.add_alarm(Alarm::new(
            "storage-throttling",
            MetricId::new(NS_DYNAMO, DYNAMO_THROTTLED, table),
            Statistic::Sum,
            minute,
            Comparison::GreaterThan,
            0.0,
            2,
        ));
        monitor
    }

    /// Registered metric count.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// Take a consolidated snapshot over `[now − window, now)`. Metrics
    /// without datapoints in the window are omitted.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn snapshot(
        &self,
        store: &MetricsStore,
        now: SimTime,
        window: SimDuration,
    ) -> MonitorSnapshot {
        let from = now - window;
        let mut rows = Vec::new();
        for (layer, metric) in &self.registered {
            let pts = store.raw(metric, from, now);
            if pts.is_empty() {
                continue;
            }
            let avg = store
                .window_stat(metric, Statistic::Average, from, now)
                .expect("pts guarded non-empty, so the window has datapoints");
            let min = store
                .window_stat(metric, Statistic::Minimum, from, now)
                .expect("pts guarded non-empty, so the window has datapoints");
            let max = store
                .window_stat(metric, Statistic::Maximum, from, now)
                .expect("pts guarded non-empty, so the window has datapoints");
            rows.push(MonitorRow {
                layer: *layer,
                metric: metric.clone(),
                latest: pts
                    .last()
                    .expect("pts guarded non-empty before this push")
                    .1,
                average: avg,
                minimum: min,
                maximum: max,
                samples: pts.len(),
            });
        }
        MonitorSnapshot {
            at: now,
            window,
            rows,
        }
    }
}

impl Default for CrossPlatformMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_cloud::{CloudEngine, EngineConfig};
    use flower_sim::SimRng;
    use flower_workload::{ClickStreamConfig, ClickStreamGenerator, ConstantRate};

    fn populated_engine() -> CloudEngine {
        let mut e = CloudEngine::new(EngineConfig::default());
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(1));
        let mut process = ConstantRate::new(1_000.0);
        for s in 0..120u64 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            e.tick(&records, now, SimDuration::from_secs(1));
        }
        e
    }

    #[test]
    fn clickstream_monitor_covers_all_layers() {
        let m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        assert_eq!(m.len(), 17);
        assert!(!m.is_empty());
        let e = populated_engine();
        let snap = m.snapshot(
            e.metrics(),
            SimTime::from_secs(120),
            SimDuration::from_mins(2),
        );
        assert_eq!(snap.rows.len(), 17, "all metrics have data");
        assert_eq!(snap.layer_rows(Layer::INGESTION).len(), 4);
        assert_eq!(snap.layer_rows(Layer::ANALYTICS).len(), 5);
        assert_eq!(snap.layer_rows(Layer::STORAGE).len(), 8);
    }

    #[test]
    fn snapshot_statistics_are_consistent() {
        let m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        let e = populated_engine();
        let snap = m.snapshot(
            e.metrics(),
            SimTime::from_secs(120),
            SimDuration::from_mins(1),
        );
        for row in &snap.rows {
            assert!(row.minimum <= row.average + 1e-9, "{row:?}");
            assert!(row.average <= row.maximum + 1e-9, "{row:?}");
            assert!(row.latest >= row.minimum - 1e-9 && row.latest <= row.maximum + 1e-9);
            assert_eq!(row.samples, 60);
        }
    }

    #[test]
    fn row_lookup_by_name() {
        let m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        let e = populated_engine();
        let snap = m.snapshot(
            e.metrics(),
            SimTime::from_secs(120),
            SimDuration::from_mins(1),
        );
        let cpu = snap.row("CpuUtilization").expect("cpu row");
        assert!(cpu.average > 4.8);
        assert!(snap.row("NoSuchMetric").is_none());
    }

    #[test]
    fn empty_window_omits_rows() {
        let m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        let e = populated_engine();
        // A window entirely in the future of the data.
        let snap = m.snapshot(
            e.metrics(),
            SimTime::from_hours(3),
            SimDuration::from_mins(1),
        );
        assert!(snap.rows.is_empty());
    }

    #[test]
    fn duplicate_registration_is_deduplicated() {
        let mut m = CrossPlatformMonitor::new();
        let id = MetricId::new("ns", "m", "r");
        assert!(m.register(Layer::INGESTION, id.clone()));
        assert!(!m.register(Layer::INGESTION, id));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn conflicting_layer_registration_replaces() {
        // Regression: re-registering a metric under a *different* layer
        // used to be silently dropped, leaving the metric filed under
        // the stale layer forever. Last registration must win.
        let mut m = CrossPlatformMonitor::new();
        let id = MetricId::new("ns", "m", "r");
        assert!(m.register(Layer::INGESTION, id.clone()));
        assert!(!m.register(Layer::STORAGE, id.clone()));
        assert_eq!(m.len(), 1, "still one registration");
        let mut store = MetricsStore::new();
        store.put(id, SimTime::from_secs(1), 42.0);
        let snap = m.snapshot(&store, SimTime::from_secs(2), SimDuration::from_secs(10));
        assert!(snap.layer_rows(Layer::INGESTION).is_empty());
        assert_eq!(snap.layer_rows(Layer::STORAGE).len(), 1);
    }

    #[test]
    fn default_alarms_fire_under_stress() {
        use flower_cloud::alarms::AlarmState;
        // An overloaded tiny deployment: ingestion throttles immediately.
        let mut e = CloudEngine::new(EngineConfig {
            kinesis: flower_cloud::KinesisConfig {
                initial_shards: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut generator =
            ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(2));
        let mut process = ConstantRate::new(3_000.0);
        let mut m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        let mut transitions = Vec::new();
        for s in 0..300u64 {
            let now = SimTime::from_secs(s);
            let records = generator.tick(&mut process, now, 1.0);
            e.tick(&records, now, SimDuration::from_secs(1));
            if s % 60 == 59 {
                transitions.extend(m.observe(e.metrics(), now + SimDuration::from_secs(1)));
            }
        }
        assert_eq!(
            m.alarms().state("ingestion-throttling"),
            Some(AlarmState::Alarm),
            "throttling alarm must fire"
        );
        assert!(!transitions.is_empty());
        let table = {
            let snap = m.snapshot(
                e.metrics(),
                SimTime::from_secs(300),
                SimDuration::from_mins(2),
            );
            snap.to_table_with_alarms(m.alarms())
        };
        assert!(table.contains("ingestion-throttling -> ALARM"), "{table}");
    }

    #[test]
    fn healthy_flow_keeps_alarms_ok() {
        use flower_cloud::alarms::AlarmState;
        let e = populated_engine(); // 1,000 rec/s on the default deployment
        let mut m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        for minute in 1..=2u64 {
            m.observe(e.metrics(), SimTime::from_secs(minute * 60));
        }
        assert_eq!(m.alarms().state("analytics-cpu-high"), Some(AlarmState::Ok));
        assert!(m.alarms().firing().is_empty());
        let snap = m.snapshot(
            e.metrics(),
            SimTime::from_secs(120),
            SimDuration::from_mins(2),
        );
        // Every attached alarm is listed with its (healthy) state.
        let table = snap.to_table_with_alarms(m.alarms());
        assert!(table.contains("ingestion-throttling -> OK"), "{table}");
        assert!(table.contains("analytics-cpu-high -> OK"), "{table}");
        assert!(table.contains("storage-throttling -> OK"), "{table}");
        assert!(!table.contains("-> ALARM"), "{table}");
    }

    #[test]
    fn table_renders_every_row() {
        let m = CrossPlatformMonitor::for_clickstream(
            "clickstream",
            "storm-cluster",
            "click-aggregates",
        );
        let e = populated_engine();
        let snap = m.snapshot(
            e.metrics(),
            SimTime::from_secs(120),
            SimDuration::from_mins(1),
        );
        let table = snap.to_table();
        assert!(table.contains("CpuUtilization"));
        assert!(table.contains("ingestion"));
        assert!(table.contains("storage"));
        assert_eq!(table.lines().count(), 2 + snap.rows.len());
    }
}
