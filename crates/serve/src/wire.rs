//! The versioned `flower-wire/v1` socket protocol and the
//! `flower-record/v1` command recording it produces.
//!
//! `flower-wire/v1` is newline-delimited JSON, one frame per line:
//!
//! - **Server → client**: `{"frame":"hello","proto":"flower-wire/v1",
//!   "t_ms":…,"episode":{…}}` on connect; `{"frame":"event",
//!   "event":{…}}` for each `flower-obs` event (the nested object is
//!   *exactly* the `flower-trace/v1` event line); `{"frame":"snapshot",
//!   "t_ms":…,"counters":{…},"gauges":{…}}` on the snapshot grid;
//!   `{"frame":"ack","id":…,"ok":…}` answering each command;
//!   `{"frame":"bye","reason":"…"}` before close.
//! - **Client → server**: `{"frame":"subscribe"}` to start the event
//!   stream; `{"frame":"command","id":…,"cmd":"…",…}` for live
//!   commands (`inject-fault`, `set-budget`, `force-replan`, `pause`,
//!   `resume`, `shutdown`).
//!
//! `flower-record/v1` is the replayable residue of a live session: a
//! header line `{"schema":"flower-record/v1","proto":"flower-wire/v1",
//!   "episode":{…}}` whose `episode` map holds the CLI flags that
//! rebuild the manager, then one line per *applied* state-affecting
//! command `{"t_ms":…,"cmd":"…",…}` stamped with the sim time (a tick
//! boundary) at which it was applied. Pause/resume shape wall-clock
//! only, so they are not recorded; shutdown is, because it truncates
//! the episode. `cargo xtask wire` validates these documents.

use std::collections::BTreeMap;

use flower_chaos::{FaultClause, FaultKind};
use flower_obs::{json_f64, json_str, parse_json, JsonValue};
use flower_sim::{SimDuration, SimTime};

/// The wire-protocol identifier sent in every hello frame.
pub const PROTO: &str = "flower-wire/v1";

/// The schema identifier of a command recording.
pub const RECORD_SCHEMA: &str = "flower-record/v1";

/// A live command, parsed from a command frame or a record line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Inject a chaos fault clause into the running episode.
    InjectFault(FaultCommand),
    /// Change the replanner's hourly budget.
    SetBudget {
        /// The new budget (finite, positive — validated on apply).
        budget: f64,
    },
    /// Make the next replanning round due immediately.
    ForceReplan,
    /// Stop ticking (wall-clock only; the sim clock freezes with it).
    Pause,
    /// Resume ticking after a pause.
    Resume,
    /// End the episode at the current tick boundary.
    Shutdown,
}

/// The parameters of an `inject-fault` command. The clause's active
/// window is anchored at apply time ([`FaultCommand::clause_at`]), so
/// the record line plus its `t_ms` stamp reproduces the exact clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCommand {
    /// Seed for the injector installed on first use (ignored when an
    /// injector is already running).
    pub seed: u64,
    /// Target layer name, `None` for all layers.
    pub layer: Option<String>,
    /// Fault kind name: `reject`, `short`, `delay`, `dropout`, `storm`.
    pub kind: String,
    /// Per-call probability (kinds with an RNG draw).
    pub p: f64,
    /// Landed fraction of the requested delta (`short`).
    pub fraction: f64,
    /// Landing delay in seconds (`delay`).
    pub delay_s: u64,
    /// Storm cycle length in seconds (`storm`).
    pub period_s: u64,
    /// Throttled prefix of each storm cycle in seconds (`storm`).
    pub burst_s: u64,
    /// Clause lifetime in seconds from apply time; `None` = until the
    /// end of the episode.
    pub for_s: Option<u64>,
}

impl FaultCommand {
    /// Build the fault clause this command injects when applied at
    /// `now`.
    ///
    /// # Errors
    ///
    /// Rejects unknown kinds, probabilities outside `[0, 1]`, and
    /// degenerate kind parameters before they can poison the injector.
    pub fn clause_at(&self, now: SimTime) -> Result<FaultClause, String> {
        if !(0.0..=1.0).contains(&self.p) {
            return Err(format!("p must be in [0, 1]: {}", self.p));
        }
        let kind = match self.kind.as_str() {
            "reject" => FaultKind::Reject { p: self.p },
            "short" => {
                if !(self.fraction > 0.0 && self.fraction < 1.0) {
                    return Err(format!("fraction must be in (0, 1): {}", self.fraction));
                }
                FaultKind::Short {
                    p: self.p,
                    fraction: self.fraction,
                }
            }
            "delay" => {
                if self.delay_s == 0 {
                    return Err("delay_s must be positive".to_owned());
                }
                FaultKind::Delay {
                    p: self.p,
                    delay: SimDuration::from_secs(self.delay_s),
                }
            }
            "dropout" => FaultKind::Dropout { p: self.p },
            "storm" => {
                if self.burst_s == 0 || self.burst_s > self.period_s {
                    return Err(format!(
                        "storm needs 0 < burst_s <= period_s: burst_s={}, period_s={}",
                        self.burst_s, self.period_s
                    ));
                }
                FaultKind::Storm {
                    period: SimDuration::from_secs(self.period_s),
                    burst: SimDuration::from_secs(self.burst_s),
                }
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        let until = match self.for_s {
            Some(s) => now + SimDuration::from_secs(s),
            None => SimTime::MAX,
        };
        Ok(FaultClause {
            layer: self.layer.clone(),
            from: now,
            until,
            kind,
        })
    }
}

impl Command {
    /// The wire name of this command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::InjectFault(_) => "inject-fault",
            Command::SetBudget { .. } => "set-budget",
            Command::ForceReplan => "force-replan",
            Command::Pause => "pause",
            Command::Resume => "resume",
            Command::Shutdown => "shutdown",
        }
    }

    /// Whether an applied instance of this command belongs in the
    /// record file: everything that shapes the deterministic episode.
    /// Pause/resume only stretch wall-clock, so they are omitted.
    pub fn is_recorded(&self) -> bool {
        !matches!(self, Command::Pause | Command::Resume)
    }

    /// The command's argument fields as a JSON fragment (leading comma
    /// included; empty for argument-less commands). Field order is
    /// fixed so record files are deterministic.
    fn args_json(&self) -> String {
        match self {
            Command::InjectFault(f) => {
                let mut out = format!(",\"seed\":{}", f.seed);
                if let Some(layer) = &f.layer {
                    out.push_str(&format!(",\"layer\":{}", json_str(layer)));
                }
                out.push_str(&format!(",\"kind\":{}", json_str(&f.kind)));
                match f.kind.as_str() {
                    "short" => out.push_str(&format!(
                        ",\"p\":{},\"fraction\":{}",
                        json_f64(f.p),
                        json_f64(f.fraction)
                    )),
                    "delay" => {
                        out.push_str(&format!(
                            ",\"p\":{},\"delay_s\":{}",
                            json_f64(f.p),
                            f.delay_s
                        ));
                    }
                    "storm" => out.push_str(&format!(
                        ",\"period_s\":{},\"burst_s\":{}",
                        f.period_s, f.burst_s
                    )),
                    _ => out.push_str(&format!(",\"p\":{}", json_f64(f.p))),
                }
                if let Some(for_s) = f.for_s {
                    out.push_str(&format!(",\"for_s\":{for_s}"));
                }
                out
            }
            Command::SetBudget { budget } => format!(",\"budget\":{}", json_f64(*budget)),
            Command::ForceReplan | Command::Pause | Command::Resume | Command::Shutdown => {
                String::new()
            }
        }
    }

    /// Parse a command from the fields of a command frame or record
    /// line (everything but the envelope keys).
    ///
    /// # Errors
    ///
    /// Rejects unknown command names and missing or mistyped arguments.
    pub fn from_obj(obj: &BTreeMap<String, JsonValue>) -> Result<Command, String> {
        let cmd = obj
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing string `cmd`".to_owned())?;
        let num = |key: &str| obj.get(key).and_then(JsonValue::as_num);
        match cmd {
            "inject-fault" => {
                let kind = obj
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "inject-fault: missing string `kind`".to_owned())?
                    .to_owned();
                Ok(Command::InjectFault(FaultCommand {
                    seed: num("seed").map_or(0, |n| n as u64),
                    layer: obj
                        .get("layer")
                        .and_then(JsonValue::as_str)
                        .map(str::to_owned),
                    kind,
                    p: num("p").unwrap_or(1.0),
                    fraction: num("fraction").unwrap_or(0.5),
                    delay_s: num("delay_s").map_or(0, |n| n as u64),
                    period_s: num("period_s").map_or(0, |n| n as u64),
                    burst_s: num("burst_s").map_or(0, |n| n as u64),
                    for_s: num("for_s").map(|n| n as u64),
                }))
            }
            "set-budget" => {
                let budget = num("budget")
                    .ok_or_else(|| "set-budget: missing numeric `budget`".to_owned())?;
                Ok(Command::SetBudget { budget })
            }
            "force-replan" => Ok(Command::ForceReplan),
            "pause" => Ok(Command::Pause),
            "resume" => Ok(Command::Resume),
            "shutdown" => Ok(Command::Shutdown),
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// A parsed client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Start streaming event/snapshot frames to this client.
    Subscribe,
    /// A live command; `id` correlates the ack.
    Command {
        /// Client-chosen correlation id, echoed in the ack.
        id: u64,
        /// The command itself.
        command: Command,
    },
}

/// Parse one client line.
///
/// # Errors
///
/// Rejects malformed JSON, unknown frame kinds, and command frames
/// without an `id`.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, String> {
    let value = parse_json(line)?;
    let obj = value
        .as_obj()
        .ok_or_else(|| "frame is not an object".to_owned())?;
    let frame = obj
        .get("frame")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string `frame`".to_owned())?;
    match frame {
        "subscribe" => Ok(ClientFrame::Subscribe),
        "command" => {
            let id = obj
                .get("id")
                .and_then(JsonValue::as_num)
                .ok_or_else(|| "command frame: missing numeric `id`".to_owned())?
                as u64;
            let command = Command::from_obj(obj)?;
            Ok(ClientFrame::Command { id, command })
        }
        other => Err(format!("unknown frame `{other}`")),
    }
}

fn string_map_json(map: &BTreeMap<String, String>) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(key), json_str(value)));
    }
    out.push('}');
    out
}

/// The hello frame greeting every new connection.
#[must_use]
pub fn hello_frame(episode: &BTreeMap<String, String>, t_ms: u64) -> String {
    format!(
        "{{\"frame\":\"hello\",\"proto\":{},\"t_ms\":{t_ms},\"episode\":{}}}",
        json_str(PROTO),
        string_map_json(episode)
    )
}

/// The ack frame answering command `id`.
#[must_use]
pub fn ack_frame(id: u64, result: &Result<(), String>) -> String {
    match result {
        Ok(()) => format!("{{\"frame\":\"ack\",\"id\":{id},\"ok\":true}}"),
        Err(error) => format!(
            "{{\"frame\":\"ack\",\"id\":{id},\"ok\":false,\"error\":{}}}",
            json_str(error)
        ),
    }
}

/// An event frame wrapping one `flower-trace/v1` event line verbatim.
#[must_use]
pub fn event_frame(event_line: &str) -> String {
    format!("{{\"frame\":\"event\",\"event\":{event_line}}}")
}

/// A snapshot frame carrying the live counter/gauge state.
#[must_use]
pub fn snapshot_frame(
    t_ms: u64,
    counters: &[(&'static str, u64)],
    gauges: &[(&'static str, f64)],
) -> String {
    let mut out = format!("{{\"frame\":\"snapshot\",\"t_ms\":{t_ms},\"counters\":{{");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", json_str(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(name), json_f64(*value)));
    }
    out.push_str("}}");
    out
}

/// The bye frame sent before the server closes a connection.
#[must_use]
pub fn bye_frame(reason: &str) -> String {
    format!("{{\"frame\":\"bye\",\"reason\":{}}}", json_str(reason))
}

/// The `flower-record/v1` header line.
#[must_use]
pub fn record_header(episode: &BTreeMap<String, String>) -> String {
    format!(
        "{{\"schema\":{},\"proto\":{},\"episode\":{}}}",
        json_str(RECORD_SCHEMA),
        json_str(PROTO),
        string_map_json(episode)
    )
}

/// One `flower-record/v1` command line: the command as applied at sim
/// time `t_ms`.
#[must_use]
pub fn record_line(t_ms: u64, command: &Command) -> String {
    format!(
        "{{\"t_ms\":{t_ms},\"cmd\":{}{}}}",
        json_str(command.name()),
        command.args_json()
    )
}

/// A parsed `flower-record/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The episode flag map that rebuilds the manager.
    pub episode: BTreeMap<String, String>,
    /// Applied commands, in application order, stamped with the sim
    /// time of their tick boundary.
    pub commands: Vec<(u64, Command)>,
}

/// Parse a `flower-record/v1` document.
///
/// # Errors
///
/// Rejects a missing or mis-schema'd header, malformed command lines,
/// and `t_ms` stamps that go backwards.
pub fn parse_recording(text: &str) -> Result<Recording, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header_line)) = lines.next() else {
        return Err("empty document: missing header line".to_owned());
    };
    let header = parse_json(header_line).map_err(|e| format!("line 1 (header): {e}"))?;
    let header = header
        .as_obj()
        .ok_or_else(|| "line 1 (header): not an object".to_owned())?;
    let schema = header
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "header: missing string `schema`".to_owned())?;
    if schema != RECORD_SCHEMA {
        return Err(format!(
            "header: schema is `{schema}`, expected `{RECORD_SCHEMA}`"
        ));
    }
    let proto = header
        .get("proto")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "header: missing string `proto`".to_owned())?;
    if proto != PROTO {
        return Err(format!("header: proto is `{proto}`, expected `{PROTO}`"));
    }
    let episode_obj = header
        .get("episode")
        .and_then(JsonValue::as_obj)
        .ok_or_else(|| "header: missing object `episode`".to_owned())?;
    let mut episode = BTreeMap::new();
    for (key, value) in episode_obj {
        let value = value
            .as_str()
            .ok_or_else(|| format!("header: episode.{key} is not a string"))?;
        episode.insert(key.clone(), value.to_owned());
    }
    let mut commands = Vec::new();
    let mut last_t = 0u64;
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| format!("line {lineno}: not an object"))?;
        let t_ms = obj
            .get("t_ms")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("line {lineno}: missing numeric `t_ms`"))?
            as u64;
        if t_ms < last_t {
            return Err(format!(
                "line {lineno}: t_ms {t_ms} goes backwards (previous {last_t})"
            ));
        }
        last_t = t_ms;
        let command = Command::from_obj(obj).map_err(|e| format!("line {lineno}: {e}"))?;
        if !command.is_recorded() {
            return Err(format!(
                "line {lineno}: `{}` is wall-clock-only and never recorded",
                command.name()
            ));
        }
        commands.push((t_ms, command));
    }
    Ok(Recording { episode, commands })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault() -> FaultCommand {
        FaultCommand {
            seed: 7,
            layer: Some("counter".to_owned()),
            kind: "reject".to_owned(),
            p: 1.0,
            fraction: 0.5,
            delay_s: 0,
            period_s: 0,
            burst_s: 0,
            for_s: Some(120),
        }
    }

    #[test]
    fn command_frames_round_trip() {
        let line = "{\"frame\":\"command\",\"id\":3,\"cmd\":\"inject-fault\",\
                    \"seed\":7,\"layer\":\"counter\",\"kind\":\"reject\",\"p\":1,\"for_s\":120}";
        let frame = parse_client_frame(line).unwrap();
        assert_eq!(
            frame,
            ClientFrame::Command {
                id: 3,
                command: Command::InjectFault(fault())
            }
        );
        assert_eq!(
            parse_client_frame("{\"frame\":\"subscribe\"}").unwrap(),
            ClientFrame::Subscribe
        );
        assert!(parse_client_frame("{\"frame\":\"command\",\"cmd\":\"pause\"}").is_err());
        assert!(parse_client_frame("{\"frame\":\"nope\"}").is_err());
    }

    #[test]
    fn record_documents_round_trip() {
        let mut episode = BTreeMap::new();
        episode.insert("seed".to_owned(), "5".to_owned());
        episode.insert("minutes".to_owned(), "45".to_owned());
        let mut doc = record_header(&episode);
        doc.push('\n');
        doc.push_str(&record_line(60_000, &Command::InjectFault(fault())));
        doc.push('\n');
        doc.push_str(&record_line(60_000, &Command::SetBudget { budget: 2.5 }));
        doc.push('\n');
        doc.push_str(&record_line(120_000, &Command::Shutdown));
        doc.push('\n');
        let recording = parse_recording(&doc).unwrap();
        assert_eq!(recording.episode.get("seed").map(String::as_str), Some("5"));
        assert_eq!(recording.commands.len(), 3);
        assert_eq!(recording.commands[0].0, 60_000);
        assert_eq!(recording.commands[2].1, Command::Shutdown);

        // Wall-clock-only commands are rejected as record lines.
        let bad = format!(
            "{}\n{{\"t_ms\":0,\"cmd\":\"pause\"}}\n",
            record_header(&episode)
        );
        assert!(parse_recording(&bad).is_err());
        // Backwards time is rejected.
        let bad = format!(
            "{}\n{{\"t_ms\":9000,\"cmd\":\"force-replan\"}}\n{{\"t_ms\":0,\"cmd\":\"shutdown\"}}\n",
            record_header(&episode)
        );
        assert!(parse_recording(&bad).is_err());
    }

    #[test]
    fn clauses_anchor_at_apply_time() {
        let clause = fault().clause_at(SimTime::from_secs(60)).unwrap();
        assert_eq!(clause.from, SimTime::from_secs(60));
        assert_eq!(clause.until, SimTime::from_secs(180));
        assert_eq!(clause.kind, FaultKind::Reject { p: 1.0 });

        let mut open_ended = fault();
        open_ended.for_s = None;
        let clause = open_ended.clause_at(SimTime::ZERO).unwrap();
        assert_eq!(clause.until, SimTime::MAX);

        let mut bad = fault();
        bad.kind = "gremlins".to_owned();
        assert!(bad.clause_at(SimTime::ZERO).is_err());
        let mut bad = fault();
        bad.p = 1.5;
        assert!(bad.clause_at(SimTime::ZERO).is_err());
        let mut bad = fault();
        bad.kind = "storm".to_owned();
        assert!(bad.clause_at(SimTime::ZERO).is_err(), "zero-length storm");
    }

    #[test]
    fn frames_serialize_deterministically() {
        let mut episode = BTreeMap::new();
        episode.insert("seed".to_owned(), "5".to_owned());
        assert_eq!(
            hello_frame(&episode, 0),
            "{\"frame\":\"hello\",\"proto\":\"flower-wire/v1\",\"t_ms\":0,\"episode\":{\"seed\":\"5\"}}"
        );
        assert_eq!(
            ack_frame(1, &Ok(())),
            "{\"frame\":\"ack\",\"id\":1,\"ok\":true}"
        );
        assert_eq!(
            ack_frame(2, &Err("no replanner attached".to_owned())),
            "{\"frame\":\"ack\",\"id\":2,\"ok\":false,\"error\":\"no replanner attached\"}"
        );
        assert_eq!(
            event_frame("{\"seq\":0,\"t_ms\":0,\"kind\":\"a\",\"fields\":{}}"),
            "{\"frame\":\"event\",\"event\":{\"seq\":0,\"t_ms\":0,\"kind\":\"a\",\"fields\":{}}}"
        );
        assert_eq!(
            snapshot_frame(60_000, &[("ticks", 60)], &[("shards", 2.0)]),
            "{\"frame\":\"snapshot\",\"t_ms\":60000,\"counters\":{\"ticks\":60},\"gauges\":{\"shards\":2}}"
        );
        assert_eq!(
            bye_frame("episode-complete"),
            "{\"frame\":\"bye\",\"reason\":\"episode-complete\"}"
        );
    }
}
