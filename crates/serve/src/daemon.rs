//! The live daemon: a thin I/O shell over the deterministic episode.
//!
//! Architecture (one episode per [`Daemon::run`]):
//!
//! - An **accept thread** owns the listener; each connection gets a
//!   **reader thread** (lines → control channel) and a **writer
//!   thread** (outbound frame channel → socket), so a slow client can
//!   never stall the control loop.
//! - The **control loop** (the calling thread) owns the
//!   [`ElasticityManager`] outright. It advances the event-driven core
//!   in 1-second `run_until` strides; between strides it drains the
//!   control channel, applies commands at the current second boundary,
//!   and appends each applied state-affecting command to the record
//!   file stamped with the sim time. The deterministic core never sees
//!   a socket.
//! - A buffering [`EventSink`] taps the recorder; after every stride
//!   the loop drains it and broadcasts one `event` frame per event to
//!   subscribed clients — the nested object is byte-identical to the
//!   `flower-trace/v1` event line.
//!
//! Because commands only land on whole-second boundaries and
//! everything else is the untouched deterministic core, [`replay`] of
//! a `flower-record/v1` file reproduces the live session's trace
//! byte-for-byte — no sockets required.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::rc::Rc;
use std::sync::mpsc;
use std::time::Duration;

use flower_core::elasticity::{ElasticityManager, EpisodeReport};
use flower_obs::{Event, EventSink};
use flower_sim::{SimDuration, SimTime};

use crate::wire::{self, ClientFrame, Command};

/// Daemon configuration (everything beyond the manager itself).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7733` (`:0` for an ephemeral
    /// port — read it back from [`Daemon::local_addr`]).
    pub listen: String,
    /// Episode length in sim time.
    pub duration: SimDuration,
    /// Wall-clock delay per 1-second sim tick; `None` runs flat out.
    pub pace: Option<Duration>,
    /// Start paused (clients attach, then send `resume`).
    pub hold: bool,
    /// Sim-time grid for `snapshot` frames.
    pub snapshot_every: SimDuration,
    /// Record applied commands to this file (`flower-record/v1`).
    pub record: Option<std::path::PathBuf>,
    /// The episode flag map, echoed in hello frames and the record
    /// header so a recording rebuilds the same manager.
    pub episode: BTreeMap<String, String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            duration: SimDuration::from_mins(30),
            pace: None,
            hold: false,
            snapshot_every: SimDuration::from_mins(1),
            record: None,
            episode: BTreeMap::new(),
        }
    }
}

/// What one served episode produced, beyond the report.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The episode's cumulative report.
    pub report: EpisodeReport,
    /// Commands applied (acked ok), including wall-clock-only ones.
    pub commands_applied: u64,
    /// Connections accepted over the session.
    pub clients_served: u64,
    /// Whether a `shutdown` command truncated the episode.
    pub shut_down: bool,
}

/// Buffered recorder tap: the control loop drains it after each tick.
#[derive(Debug, Clone, Default)]
struct BufferSink {
    buffer: Rc<RefCell<VecDeque<Event>>>,
}

impl EventSink for BufferSink {
    fn on_event(&mut self, event: &Event) {
        self.buffer.borrow_mut().push_back(event.clone());
    }
}

enum ControlMsg {
    Connected { id: u64, tx: mpsc::Sender<String> },
    Line { id: u64, line: String },
    Disconnected { id: u64 },
}

struct Client {
    id: u64,
    tx: mpsc::Sender<String>,
    subscribed: bool,
}

/// The bound-but-not-yet-running daemon.
#[derive(Debug)]
pub struct Daemon {
    listener: TcpListener,
    config: ServeConfig,
}

impl Daemon {
    /// Bind the listen address.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(config: ServeConfig) -> Result<Daemon, String> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("bind {}: {e}", config.listen))?;
        Ok(Daemon { listener, config })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serve one episode to completion (or `shutdown`): advance the
    /// manager one sim-second at a time, stream events, apply live
    /// commands at second boundaries, and record the applied command
    /// stream.
    ///
    /// # Errors
    ///
    /// Fails only on record-file I/O errors; client failures just drop
    /// the client.
    pub fn run(self, manager: &mut ElasticityManager) -> Result<ServeOutcome, String> {
        let Daemon { listener, config } = self;
        let (control_tx, control_rx) = mpsc::channel::<ControlMsg>();
        spawn_accept_thread(listener, control_tx);

        let mut record = match &config.record {
            Some(path) => {
                let mut file = std::fs::File::create(path)
                    .map_err(|e| format!("create {}: {e}", path.display()))?;
                writeln!(file, "{}", wire::record_header(&config.episode))
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                Some((path.clone(), file))
            }
            None => None,
        };
        let mut write_record = |t_ms: u64, command: &Command| -> Result<(), String> {
            if let Some((path, file)) = record.as_mut() {
                writeln!(file, "{}", wire::record_line(t_ms, command))
                    .and_then(|()| file.flush())
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
            Ok(())
        };

        let sink = BufferSink::default();
        let buffer = Rc::clone(&sink.buffer);
        manager.recorder().set_sink(Box::new(sink));

        let mut clients: Vec<Client> = Vec::new();
        let mut paused = config.hold;
        let mut shut_down = false;
        let mut commands_applied = 0u64;
        let mut clients_served = 0u64;

        manager.start_episode(config.duration);
        loop {
            // Between-stride command window. While paused (or pacing),
            // we block briefly instead of spinning.
            loop {
                let msg = if paused {
                    control_rx.recv_timeout(Duration::from_millis(25)).ok()
                } else {
                    control_rx.try_recv().ok()
                };
                let Some(msg) = msg else {
                    if paused && !shut_down {
                        continue;
                    }
                    break;
                };
                match msg {
                    ControlMsg::Connected { id, tx } => {
                        clients_served += 1;
                        let hello = wire::hello_frame(&config.episode, manager.now().as_millis());
                        let _ = tx.send(hello);
                        clients.push(Client {
                            id,
                            tx,
                            subscribed: false,
                        });
                    }
                    ControlMsg::Disconnected { id } => clients.retain(|c| c.id != id),
                    ControlMsg::Line { id, line } => {
                        let Some(client) = clients.iter_mut().find(|c| c.id == id) else {
                            continue;
                        };
                        match wire::parse_client_frame(&line) {
                            Ok(ClientFrame::Subscribe) => client.subscribed = true,
                            Ok(ClientFrame::Command { id, command }) => {
                                let result = match &command {
                                    Command::Pause => {
                                        paused = true;
                                        Ok(())
                                    }
                                    Command::Resume => {
                                        paused = false;
                                        Ok(())
                                    }
                                    Command::Shutdown => {
                                        shut_down = true;
                                        Ok(())
                                    }
                                    other => apply_command(manager, other),
                                };
                                if result.is_ok() {
                                    commands_applied += 1;
                                    if command.is_recorded() {
                                        write_record(manager.now().as_millis(), &command)?;
                                    }
                                }
                                let _ = client.tx.send(wire::ack_frame(id, &result));
                            }
                            Err(error) => {
                                let _ = client.tx.send(wire::ack_frame(0, &Err(error)));
                            }
                        }
                    }
                }
                if shut_down {
                    break;
                }
            }
            if shut_down {
                break;
            }
            if !manager.run_until(manager.now() + SimDuration::from_secs(1)) {
                break;
            }
            broadcast_events(&buffer, &mut clients);
            let now = manager.now();
            if on_grid(now, config.snapshot_every) {
                let frame = wire::snapshot_frame(
                    now.as_millis(),
                    &manager.recorder().counters_snapshot(),
                    &manager.recorder().gauges_snapshot(),
                );
                for client in clients.iter().filter(|c| c.subscribed) {
                    let _ = client.tx.send(frame.clone());
                }
            }
            if let Some(pace) = config.pace {
                std::thread::sleep(pace);
            }
        }
        let report = manager.finish_episode();
        broadcast_events(&buffer, &mut clients);
        manager.recorder().clear_sink();
        let reason = if shut_down {
            "shutdown"
        } else {
            "episode-complete"
        };
        for client in &clients {
            let _ = client.tx.send(wire::bye_frame(reason));
        }
        Ok(ServeOutcome {
            report,
            commands_applied,
            clients_served,
            shut_down,
        })
    }
}

fn on_grid(now: SimTime, grid: SimDuration) -> bool {
    grid.as_millis() > 0 && now.as_millis().is_multiple_of(grid.as_millis())
}

fn broadcast_events(buffer: &Rc<RefCell<VecDeque<Event>>>, clients: &mut [Client]) {
    loop {
        let Some(event) = buffer.borrow_mut().pop_front() else {
            break;
        };
        if clients.iter().all(|c| !c.subscribed) {
            continue;
        }
        let frame = wire::event_frame(&flower_obs::event_line(&event));
        for client in clients.iter().filter(|c| c.subscribed) {
            let _ = client.tx.send(frame.clone());
        }
    }
}

/// Apply one state-affecting command to the manager at its current
/// second boundary. Pause/resume/shutdown are loop states, not manager
/// state, and are handled by the caller.
fn apply_command(manager: &mut ElasticityManager, command: &Command) -> Result<(), String> {
    match command {
        Command::InjectFault(fault) => {
            let clause = fault.clause_at(manager.now())?;
            manager.inject_fault(fault.seed, clause);
            Ok(())
        }
        Command::SetBudget { budget } => {
            if !budget.is_finite() || *budget <= 0.0 {
                return Err(format!("budget must be finite and positive: {budget}"));
            }
            if manager.set_budget(*budget) {
                Ok(())
            } else {
                Err("no replanner attached".to_owned())
            }
        }
        Command::ForceReplan => {
            if manager.force_replan() {
                Ok(())
            } else {
                Err("no replanner attached".to_owned())
            }
        }
        Command::Pause | Command::Resume | Command::Shutdown => Ok(()),
    }
}

/// Replay a recorded command stream against a freshly built manager:
/// run the episode in the same 1-second strides as the live loop,
/// applying each command when the sim clock reaches its `t_ms` stamp.
/// With the same manager construction, the resulting trace is
/// byte-identical to the live session's.
///
/// # Errors
///
/// Rejects command stamps that are not second boundaries reachable by
/// the episode, and invalid commands (same validation as live).
pub fn replay(
    manager: &mut ElasticityManager,
    duration: SimDuration,
    commands: &[(u64, Command)],
) -> Result<EpisodeReport, String> {
    let mut queue = commands.iter();
    let mut next = queue.next();
    let mut shut_down = false;
    manager.start_episode(duration);
    loop {
        let now_ms = manager.now().as_millis();
        while let Some((t_ms, command)) = next {
            if *t_ms != now_ms {
                if *t_ms < now_ms {
                    return Err(format!(
                        "command `{}` stamped t_ms {t_ms} was never reached (clock at {now_ms})",
                        command.name()
                    ));
                }
                break;
            }
            match command {
                Command::Shutdown => shut_down = true,
                other => apply_command(manager, other)?,
            }
            next = queue.next();
        }
        if shut_down || !manager.run_until(manager.now() + SimDuration::from_secs(1)) {
            break;
        }
    }
    if let Some((t_ms, command)) = next {
        if !shut_down {
            return Err(format!(
                "command `{}` stamped t_ms {t_ms} lies beyond the episode end",
                command.name()
            ));
        }
    }
    Ok(manager.finish_episode())
}

fn spawn_accept_thread(listener: TcpListener, control_tx: mpsc::Sender<ControlMsg>) {
    std::thread::spawn(move || {
        for (id, stream) in (0u64..).zip(listener.incoming()) {
            let Ok(stream) = stream else { break };
            let (out_tx, out_rx) = mpsc::channel::<String>();
            if control_tx
                .send(ControlMsg::Connected { id, tx: out_tx })
                .is_err()
            {
                break;
            }
            spawn_client_threads(id, stream, control_tx.clone(), out_rx);
        }
    });
}

fn spawn_client_threads(
    id: u64,
    stream: TcpStream,
    control_tx: mpsc::Sender<ControlMsg>,
    out_rx: mpsc::Receiver<String>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Writer: drain outbound frames until the control loop drops the
    // sender (bye sent) or the socket dies.
    std::thread::spawn(move || {
        let mut write_half = write_half;
        while let Ok(frame) = out_rx.recv() {
            if writeln!(write_half, "{frame}").is_err() {
                break;
            }
        }
        let _ = write_half.shutdown(std::net::Shutdown::Both);
    });
    // Reader: forward complete lines to the control loop.
    std::thread::spawn(move || {
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if control_tx.send(ControlMsg::Line { id, line }).is_err() {
                return;
            }
        }
        let _ = control_tx.send(ControlMsg::Disconnected { id });
    });
}
