//! `flower-serve`: the live runtime daemon.
//!
//! Everything deterministic lives downstream (`flower-core` and
//! friends); this crate is the one place sockets, wall clocks, and
//! files appear. It hosts a flow episode behind a versioned
//! newline-JSON protocol ([`wire`]: `flower-wire/v1`), streams every
//! `flower-obs` event the moment it is recorded, applies live commands
//! at tick boundaries, and records the applied command stream
//! (`flower-record/v1`) so any live session [`replay`]s to a
//! byte-identical trace. The determinism lint (`cargo xtask lint`)
//! forbids the deterministic crates from depending on this one.

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
#![deny(missing_docs)]

pub mod daemon;
pub mod wire;

pub use daemon::{replay, Daemon, ServeConfig, ServeOutcome};
pub use wire::{
    parse_client_frame, parse_recording, ClientFrame, Command, FaultCommand, Recording, PROTO,
    RECORD_SCHEMA,
};
