//! Schema validation for `flower-record/v1` command recordings.
//!
//! Reuses the hand-rolled JSON parser from [`crate::benchjson`] — one
//! parse per line — so `cargo xtask wire <path>` can gate CI on the
//! shape of a recorded `flower serve` session the same way
//! `cargo xtask trace` gates on the episode trace it replays into.

use crate::benchjson::{parse, Value};

/// The schema identifier `flower serve --record` stamps into the header.
pub const SCHEMA: &str = "flower-record/v1";

/// The wire protocol the record's commands arrived over.
pub const PROTO: &str = "flower-wire/v1";

const COMMANDS: &[&str] = &["inject-fault", "set-budget", "force-replan", "shutdown"];
const FAULT_KINDS: &[&str] = &["reject", "short", "delay", "dropout", "storm"];

/// Validate a `flower-record/v1` document:
///
/// 1. a header line declaring the schema, the wire protocol, and an
///    `episode` object of string flags,
/// 2. zero or more command lines with a non-decreasing integer `t_ms`
///    stamp and a known, fully-specified `cmd` (wall-clock-only
///    commands — pause/resume — must never appear),
/// 3. at most one trailing `shutdown`.
///
/// Returns a one-line human summary on success.
pub fn validate_record_jsonl(text: &str) -> Result<String, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());

    let (_, header_line) = lines.next().ok_or("empty document: missing header line")?;
    let header = parse(header_line).map_err(|e| format!("line 1 (header): {e}"))?;
    let header = header.as_obj().ok_or("line 1 (header): not an object")?;
    let schema = header
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("header: missing string `schema`")?;
    if schema != SCHEMA {
        return Err(format!("header: schema is `{schema}`, expected `{SCHEMA}`"));
    }
    let proto = header
        .get("proto")
        .and_then(Value::as_str)
        .ok_or("header: missing string `proto`")?;
    if proto != PROTO {
        return Err(format!("header: proto is `{proto}`, expected `{PROTO}`"));
    }
    let episode = header
        .get("episode")
        .and_then(Value::as_obj)
        .ok_or("header: missing object `episode`")?;
    for (key, value) in episode {
        if value.as_str().is_none() {
            return Err(format!("header: episode.{key} is not a string"));
        }
    }

    let mut commands = 0u64;
    let mut last_t = 0.0f64;
    let mut saw_shutdown = false;
    for (i, line) in lines {
        let lineno = i + 1;
        if saw_shutdown {
            return Err(format!("line {lineno}: command after shutdown"));
        }
        let value = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| format!("line {lineno}: not an object"))?;
        let t_ms = obj
            .get("t_ms")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("line {lineno}: missing numeric `t_ms`"))?;
        // lint:allow(float-eq-typed): integer-valuedness check — fract() of a finite f64 is exactly 0.0 iff the value is an integer
        if !(t_ms.is_finite() && t_ms >= 0.0 && t_ms.fract() == 0.0) {
            return Err(format!(
                "line {lineno}: `t_ms` must be a non-negative integer"
            ));
        }
        if t_ms < last_t {
            return Err(format!(
                "line {lineno}: t_ms {t_ms} goes backwards (previous {last_t})"
            ));
        }
        last_t = t_ms;
        let cmd = obj
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string `cmd`"))?;
        match cmd {
            "inject-fault" => {
                let kind = obj
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {lineno}: inject-fault: missing string `kind`"))?;
                if !FAULT_KINDS.contains(&kind) {
                    return Err(format!(
                        "line {lineno}: inject-fault: unknown kind `{kind}` (expected {})",
                        FAULT_KINDS.join("|")
                    ));
                }
                if kind == "storm" {
                    for key in ["period_s", "burst_s"] {
                        if obj.get(key).and_then(Value::as_num).is_none() {
                            return Err(format!(
                                "line {lineno}: inject-fault storm: missing numeric `{key}`"
                            ));
                        }
                    }
                } else {
                    let p = obj.get("p").and_then(Value::as_num).ok_or_else(|| {
                        format!("line {lineno}: inject-fault: missing numeric `p`")
                    })?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("line {lineno}: inject-fault: p out of [0, 1]"));
                    }
                }
            }
            "set-budget" => {
                let budget = obj.get("budget").and_then(Value::as_num).ok_or_else(|| {
                    format!("line {lineno}: set-budget: missing numeric `budget`")
                })?;
                if !(budget.is_finite() && budget > 0.0) {
                    return Err(format!(
                        "line {lineno}: set-budget: budget must be finite and positive"
                    ));
                }
            }
            "force-replan" => {}
            "shutdown" => saw_shutdown = true,
            "pause" | "resume" => {
                return Err(format!(
                    "line {lineno}: `{cmd}` is wall-clock-only and never recorded"
                ));
            }
            other => {
                return Err(format!(
                    "line {lineno}: unknown cmd `{other}` (expected {})",
                    COMMANDS.join("|")
                ));
            }
        }
        commands += 1;
    }
    Ok(format!(
        "ok: flower-record/v1, {} episode flag(s), {commands} command(s){}",
        episode.len(),
        if saw_shutdown {
            ", shut down early"
        } else {
            ""
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"schema\":\"flower-record/v1\",\"proto\":\"flower-wire/v1\",\
                          \"episode\":{\"minutes\":\"10\",\"seed\":\"7\"}}";

    #[test]
    fn accepts_a_well_formed_record() {
        let doc = format!(
            "{HEADER}\n\
             {{\"t_ms\":0,\"cmd\":\"inject-fault\",\"seed\":11,\"layer\":\"counter\",\
              \"kind\":\"reject\",\"p\":1,\"for_s\":120}}\n\
             {{\"t_ms\":0,\"cmd\":\"set-budget\",\"budget\":2.5}}\n\
             {{\"t_ms\":60000,\"cmd\":\"force-replan\"}}\n\
             {{\"t_ms\":90000,\"cmd\":\"shutdown\"}}\n"
        );
        let summary = validate_record_jsonl(&doc).unwrap();
        assert!(summary.contains("4 command(s)"), "{summary}");
        assert!(summary.contains("shut down early"), "{summary}");
        // Commands are optional: a header-only record is a valid
        // zero-command session.
        assert!(validate_record_jsonl(HEADER).is_ok());
    }

    #[test]
    fn rejects_schema_and_shape_violations() {
        assert!(validate_record_jsonl("").is_err());
        assert!(validate_record_jsonl("{\"schema\":\"flower-trace/v1\"}").is_err());
        let bad = format!("{HEADER}\n{{\"t_ms\":0,\"cmd\":\"pause\"}}\n");
        assert!(validate_record_jsonl(&bad).is_err(), "wall-clock-only cmd");
        let bad = format!(
            "{HEADER}\n{{\"t_ms\":9000,\"cmd\":\"force-replan\"}}\n\
             {{\"t_ms\":0,\"cmd\":\"shutdown\"}}\n"
        );
        assert!(validate_record_jsonl(&bad).is_err(), "backwards t_ms");
        let bad = format!(
            "{HEADER}\n{{\"t_ms\":0,\"cmd\":\"shutdown\"}}\n\
             {{\"t_ms\":0,\"cmd\":\"force-replan\"}}\n"
        );
        assert!(
            validate_record_jsonl(&bad).is_err(),
            "command after shutdown"
        );
        let bad =
            format!("{HEADER}\n{{\"t_ms\":0,\"cmd\":\"inject-fault\",\"kind\":\"gremlins\"}}\n");
        assert!(validate_record_jsonl(&bad).is_err(), "unknown fault kind");
        let bad = format!("{HEADER}\n{{\"t_ms\":0,\"cmd\":\"set-budget\",\"budget\":-1}}\n");
        assert!(validate_record_jsonl(&bad).is_err(), "negative budget");
    }
}
