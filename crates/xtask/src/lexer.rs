//! A small Rust lexer sufficient for `flower-lint`'s pattern rules.
//!
//! The full `syn` AST is unavailable offline, and the lint rules only
//! need token-level structure: identifiers, literals, a handful of
//! multi-character operators, and comments (for `lint:allow`
//! directives). The lexer understands everything that could *hide*
//! code from a naive regex — nested block comments, raw strings,
//! lifetimes vs. char literals, byte strings — so rules never fire on
//! text inside strings or comments, and never miss code because of
//! unusual formatting.

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including suffixed, hex, octal, binary).
    Int,
    /// Float literal (including suffixed and exponent forms).
    Float,
    /// String, raw-string, byte-string, or C-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Punctuation / operator. Multi-character for `::`, `==`, `!=`,
    /// `->`, `=>`; single-character otherwise.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Exact source text (string literals keep their quotes).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its 1-indexed starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: u32,
}

/// Lex `src` into code tokens plus comment trivia.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ch if ch.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'r' | 'b' | 'c' if self.starts_raw_or_byte_literal() => {
                    self.raw_or_byte_literal(line);
                }
                '\'' => self.char_or_lifetime(line),
                ch if ch.is_ascii_digit() => self.number(line),
                ch if ch == '_' || ch.is_alphanumeric() => self.ident(line),
                _ => self.punct(line),
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment { text, line });
    }

    fn string_literal(&mut self, line: u32) {
        let mut text = String::new();
        text.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Does the cursor start `r"`, `r#`, `b"`, `b'`, `br`, `c"`, `cr`?
    fn starts_raw_or_byte_literal(&self) -> bool {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            (Some('r' | 'c'), Some('"' | '#')) => true,
            (Some('b'), Some('"' | '\'')) => true,
            (Some('b' | 'c'), Some('r')) => matches!(c2, Some('"' | '#')),
            _ => false,
        }
    }

    fn raw_or_byte_literal(&mut self, line: u32) {
        let mut text = String::new();
        // Consume the prefix letters (r / b / c / br / cr).
        while matches!(self.peek(0), Some('r' | 'b' | 'c')) {
            if matches!(self.peek(0), Some('b')) && self.peek(1) == Some('\'') {
                // Byte char literal b'x'.
                text.push('b');
                self.bump();
                self.bump(); // opening quote
                text.push('\'');
                while let Some(c) = self.bump() {
                    text.push(c);
                    match c {
                        '\\' => {
                            if let Some(esc) = self.bump() {
                                text.push(esc);
                            }
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokKind::Char, text, line);
                return;
            }
            text.push(self.peek(0).unwrap_or_default());
            self.bump();
        }
        // Count `#` guards for raw strings.
        let mut guards = 0usize;
        while self.peek(0) == Some('#') {
            guards += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r` / `b` was actually an identifier start (e.g. `radius`);
            // fall back to lexing it as an identifier continuation.
            let mut ident = text;
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    ident.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, ident, line);
            return;
        }
        text.push('"');
        self.bump();
        if guards == 0 && !text.contains('r') {
            // Plain byte/C string: honours escapes.
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '"' => break,
                    _ => {}
                }
            }
        } else {
            // Raw string: ends at `"` followed by `guards` hashes.
            loop {
                match self.bump() {
                    None => break,
                    Some('"') => {
                        text.push('"');
                        let mut matched = 0usize;
                        while matched < guards && self.peek(0) == Some('#') {
                            matched += 1;
                            text.push('#');
                            self.bump();
                        }
                        if matched == guards {
                            break;
                        }
                    }
                    Some(c) => text.push(c),
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` (lifetime) vs `'a'` (char). A lifetime is a quote followed
        // by an identifier NOT closed by another quote.
        let c1 = self.peek(1);
        let is_lifetime =
            matches!(c1, Some(c) if c == '_' || c.is_alphabetic()) && self.peek(2) != Some('\'');
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::Char, text, line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Tuple-field position: directly after a `.` punct (`self.0`,
        // `pair.0.1`) the digits are a field index, never a float — without
        // this, `pair.0.1` would mislex as `pair` `.` `0.1`.
        let after_dot = self
            .tokens
            .last()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ".");
        if after_dot {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        // Hex / octal / binary prefixes never form floats.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            text.push(self.bump().unwrap_or_default());
            text.push(self.bump().unwrap_or_default());
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Decimal point: only if followed by a digit or not followed
            // by another `.` / identifier (so `0..n` and `1.max(2)` lex
            // as int + punct).
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let digit_after = matches!(after, Some(c) if c.is_ascii_digit());
                let bare_dot = !matches!(
                    after,
                    Some(c) if c == '.' || c == '_' || c.is_alphabetic()
                );
                if digit_after || bare_dot {
                    is_float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let (sign, digit) = (self.peek(1), self.peek(2));
                let exp = match sign {
                    Some(c) if c.is_ascii_digit() => true,
                    Some('+' | '-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                    _ => false,
                };
                if exp {
                    is_float = true;
                    text.push(self.bump().unwrap_or_default());
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' || c == '+' || c == '-' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix (u64, f64, ...).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // `1_f64` / `1__f32`: underscores may precede the float suffix.
        if suffix.trim_start_matches('_').starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Multi-character operators, longest first (maximal munch). The
    /// parser re-splits `>>` when it closes two nested generic lists.
    const JOINED_OPS: &'static [&'static str] = &[
        "<<=", ">>=", "..=", "::", "==", "!=", "->", "=>", "<=", ">=", "&&", "||", "<<", ">>",
        "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    ];

    fn punct(&mut self, line: u32) {
        for op in Self::JOINED_OPS {
            let matches_here = op.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c));
            if matches_here {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_owned(), line);
                return;
            }
        }
        let c = self.bump().unwrap_or_default();
        self.push(TokKind::Punct, c.to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_trivia_not_tokens() {
        let (toks, comments) = lex("let x = 1; // trailing\n/* block /* nested */ */ let y = 2;");
        assert_eq!(comments.len(), 2);
        assert!(toks.iter().all(|t| !t.text.contains("trailing")));
        assert!(toks.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap::unwrap() == 1.0"; s.len()"#);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_and_guards() {
        let toks = kinds(r###"let s = r#"quote " inside"#; done()"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("inside")));
        assert!(toks.iter().any(|(_, t)| t == "done"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("let a = 1.5; let b = 1_000; for i in 0..n {} let c = 2.0e-3; let d = 3f64; let e = 1.max(2);");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5", "2.0e-3", "3f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "1_000"));
    }

    #[test]
    fn multi_char_operators_join() {
        let toks = kinds("a == b; c != d; e::f; g -> h; i => j;");
        let ops: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t.len() == 2)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::", "->", "=>"]);
    }

    #[test]
    fn identifiers_starting_with_r_and_b() {
        let toks = kinds("let radius = 1; let bytes = 2; let cr8 = 3;");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(idents.contains(&"radius"));
        assert!(idents.contains(&"bytes"));
        assert!(idents.contains(&"cr8"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let (toks, comments) = lex("a\nb\n// c\nd");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(comments[0].line, 3);
        assert_eq!(toks[2].line, 4);
    }
}
