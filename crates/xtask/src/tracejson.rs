//! Schema validation for `flower-trace/v1` JSONL documents.
//!
//! Reuses the hand-rolled JSON parser from [`crate::benchjson`] — one
//! parse per line — so `cargo xtask trace <path>` can gate CI on the
//! shape of a recorded episode the same way `cargo xtask bench` gates
//! on `BENCH_nsga2.json`.

use crate::benchjson::{parse, Value};

/// The schema identifier `flower-obs` stamps into every export.
pub const SCHEMA: &str = "flower-trace/v1";

/// Validate a JSONL trace document:
///
/// 1. a header line declaring the schema and consistent
///    capacity/events/emitted/dropped accounting,
/// 2. exactly `events` event lines with strictly increasing `seq`,
///    non-decreasing `t_ms`, a non-empty `kind`, and an object `fields`,
/// 3. a final summary line carrying `counters`/`gauges`/`histograms`/
///    `spans` objects.
///
/// Returns a one-line human summary on success.
pub fn validate_trace_jsonl(text: &str) -> Result<String, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());

    let (_, header_line) = lines.next().ok_or("empty document: missing header line")?;
    let header = parse(header_line).map_err(|e| format!("line 1 (header): {e}"))?;
    let header = header.as_obj().ok_or("line 1 (header): not an object")?;
    let schema = header
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("header: missing string `schema`")?;
    if schema != SCHEMA {
        return Err(format!("header: schema is `{schema}`, expected `{SCHEMA}`"));
    }
    let header_u64 = |key: &str| -> Result<u64, String> {
        let n = header
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("header: missing numeric `{key}`"))?;
        // lint:allow(float-eq-typed): integer-valuedness check — fract() of a finite f64 is exactly 0.0 iff the value is an integer
        if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
            return Err(format!("header: `{key}` must be a non-negative integer"));
        }
        Ok(n as u64)
    };
    let capacity = header_u64("capacity")?;
    let declared_events = header_u64("events")?;
    let emitted = header_u64("emitted")?;
    let dropped = header_u64("dropped")?;
    if declared_events > capacity {
        return Err(format!(
            "header: {declared_events} events exceed capacity {capacity}"
        ));
    }
    if emitted != declared_events + dropped {
        return Err(format!(
            "header: emitted ({emitted}) != events ({declared_events}) + dropped ({dropped})"
        ));
    }

    let mut event_count = 0u64;
    let mut last_seq: Option<u64> = None;
    let mut last_t_ms = 0.0f64;
    let mut kinds: Vec<String> = Vec::new();
    let mut summary: Option<Value> = None;
    for (i, line) in lines {
        let lineno = i + 1;
        if summary.is_some() {
            return Err(format!("line {lineno}: content after the summary line"));
        }
        let value = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| format!("line {lineno}: not an object"))?;
        if let Some(inner) = obj.get("summary") {
            let inner = inner
                .as_obj()
                .ok_or_else(|| format!("line {lineno}: `summary` is not an object"))?;
            for key in ["counters", "gauges", "histograms", "spans"] {
                if inner.get(key).and_then(Value::as_obj).is_none() {
                    return Err(format!("line {lineno}: summary missing object `{key}`"));
                }
            }
            summary = Some(value.clone());
            continue;
        }
        // An event line.
        let num = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("line {lineno}: event missing numeric `{key}`"))
        };
        let seq = num("seq")? as u64;
        if last_seq.is_some_and(|prev| seq <= prev) {
            return Err(format!("line {lineno}: `seq` {seq} is not increasing"));
        }
        last_seq = Some(seq);
        let t_ms = num("t_ms")?;
        if t_ms < last_t_ms {
            return Err(format!("line {lineno}: `t_ms` {t_ms} went backwards"));
        }
        last_t_ms = t_ms;
        let kind = obj
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: event missing string `kind`"))?;
        if kind.is_empty() {
            return Err(format!("line {lineno}: event `kind` is empty"));
        }
        let fields = obj
            .get("fields")
            .and_then(Value::as_obj)
            .ok_or_else(|| format!("line {lineno}: event missing object `fields`"))?;
        // Fault-layer events must be attributable: every `chaos.*` and
        // `resilience.*` event names the layer it hit, or the CLI's
        // fault/recovery timeline cannot line faults up with recoveries.
        if (kind.starts_with("chaos.") || kind.starts_with("resilience."))
            && fields.get("layer").and_then(Value::as_str).is_none()
        {
            return Err(format!(
                "line {lineno}: `{kind}` event missing string field `layer`"
            ));
        }
        if !kinds.iter().any(|k| k == kind) {
            kinds.push(kind.to_owned());
        }
        event_count += 1;
    }
    if summary.is_none() {
        return Err("missing final summary line".to_owned());
    }
    if event_count != declared_events {
        return Err(format!(
            "header declares {declared_events} events but {event_count} event line(s) follow"
        ));
    }

    Ok(format!(
        "{event_count} event(s) across {} kind(s), {} emitted, {} dropped",
        kinds.len(),
        emitted,
        dropped
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
{\"schema\":\"flower-trace/v1\",\"capacity\":8,\"events\":2,\"emitted\":2,\"dropped\":0}\n\
{\"seq\":0,\"t_ms\":30000,\"kind\":\"control.decision\",\"fields\":{\"accepted\":true,\"applied\":3}}\n\
{\"seq\":1,\"t_ms\":60000,\"kind\":\"cloud.resize\",\"fields\":{\"to\":4}}\n\
{\"summary\":{\"counters\":{\"control.decisions\":1},\"gauges\":{},\"histograms\":{},\"spans\":{}}}\n";

    #[test]
    fn good_document_validates() {
        let summary = validate_trace_jsonl(GOOD).unwrap();
        assert!(summary.contains("2 event(s)"), "{summary}");
        assert!(summary.contains("2 kind(s)"), "{summary}");
    }

    #[test]
    fn real_recorder_output_validates() {
        let rec = flower_obs::Recorder::with_capacity(16);
        rec.set_now(flower_sim::SimTime::from_secs(30));
        rec.emit("control.decision", &[("applied", 3u64.into())]);
        rec.count("control.decisions", 1);
        rec.observe("util", 71.5);
        let s = rec.span_enter("episode.run");
        rec.set_now(flower_sim::SimTime::from_secs(90));
        rec.span_exit(s);
        // The emit plus the span enter/exit marker events.
        let summary = validate_trace_jsonl(&rec.to_jsonl()).unwrap();
        assert!(summary.contains("3 event(s)"), "{summary}");
    }

    #[test]
    fn bad_documents_are_rejected() {
        for (mutate, why) in [
            (
                GOOD.replace("flower-trace/v1", "other/v9"),
                "schema is `other/v9`",
            ),
            (GOOD.replace("\"events\":2", "\"events\":3"), "emitted"),
            (GOOD.replace("\"seq\":1", "\"seq\":0"), "not increasing"),
            (
                GOOD.replace("\"t_ms\":60000", "\"t_ms\":1"),
                "went backwards",
            ),
            (
                GOOD.replace("\"kind\":\"cloud.resize\",", ""),
                "missing string `kind`",
            ),
            (
                GOOD.replace(",\"spans\":{}", ""),
                "summary missing object `spans`",
            ),
            (
                GOOD.lines().take(3).collect::<Vec<_>>().join("\n"),
                "missing final summary",
            ),
            (String::new(), "empty document"),
        ] {
            let err = validate_trace_jsonl(&mutate).unwrap_err();
            assert!(err.contains(why), "`{err}` should mention `{why}`");
        }
    }

    #[test]
    fn fault_events_must_name_their_layer() {
        let good = "\
{\"schema\":\"flower-trace/v1\",\"capacity\":8,\"events\":2,\"emitted\":2,\"dropped\":0}\n\
{\"seq\":0,\"t_ms\":30000,\"kind\":\"chaos.fault\",\"fields\":{\"fault\":\"reject\",\"layer\":\"analytics\"}}\n\
{\"seq\":1,\"t_ms\":35000,\"kind\":\"resilience.retry\",\"fields\":{\"attempt\":1,\"layer\":\"analytics\"}}\n\
{\"summary\":{\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{}}}\n";
        validate_trace_jsonl(good).unwrap();
        for broken in [
            good.replace(",\"layer\":\"analytics\"}}\n{\"seq\":1", "}}\n{\"seq\":1"),
            good.replace("\"attempt\":1,\"layer\":\"analytics\"", "\"attempt\":1"),
            good.replace(
                "\"layer\":\"analytics\"}}\n{\"summary",
                "\"layer\":7}}\n{\"summary",
            ),
        ] {
            let err = validate_trace_jsonl(&broken).unwrap_err();
            assert!(err.contains("missing string field `layer`"), "{err}");
        }
    }

    #[test]
    fn events_after_summary_are_rejected() {
        let doc = format!(
            "{}{}",
            GOOD, "{\"seq\":2,\"t_ms\":70000,\"kind\":\"x\",\"fields\":{}}\n"
        );
        let err = validate_trace_jsonl(&doc).unwrap_err();
        assert!(err.contains("after the summary"), "{err}");
    }
}
