//! Determinism-taint dataflow and the typed rules.
//!
//! Three rules run over the AST with the signature index and local
//! type inference behind them:
//!
//! * **`float-eq-typed`** — exact `==` / `!=` where inference says
//!   either side is `f64` / `f32`. Supersedes the old lexical
//!   `float-eq`, which only saw literal-adjacent comparisons.
//! * **`nondet-flow`** — a value originating at a nondeterminism
//!   source (`Instant::now`, `thread_rng`, `std::env`, `HashMap`
//!   iteration, thread IDs, or a call into a taint-propagating fn)
//!   flows — through any number of `let` bindings — into a
//!   deterministic-state sink: a `SimRng` seed or fork label, a
//!   `flower-obs` recorder event, or a field store. The diagnostic
//!   reports the *flow*: source, line, and sink.
//! * **`rng-provenance`** — every `SimRng::seed(..)` in non-test
//!   library code must trace its seed to a parameter, field, constant,
//!   or computed value — never a bare literal, which would hide a
//!   fixed seed outside the per-layer fork discipline.
//!
//! A `lint:allow` for the corresponding *source* rule (`nondet-time`,
//! `nondet-rng`, `nondet-env`, `hash-iteration`) on the source line
//! stops taint from seeding there, so a justified source does not
//! cascade into flow diagnostics downstream. `nondet-flow` itself is
//! suppressed at the *sink* line, like any other rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{Block, Expr, FnDef, Item, Stmt, TypeRef};
use crate::sig::SigIndex;
use crate::types::TypeEnv;

/// One typed-rule diagnostic (file attached by the caller).
#[derive(Debug, Clone)]
pub struct FlowFinding {
    /// Rule identifier from [`crate::lints::RULES`].
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable message; single-line for stable JSON.
    pub message: String,
}

/// Nondeterminism sources spelled as 2-segment path suffixes.
const SOURCE_PATHS: &[[&str; 2]] = &[
    ["Instant", "now"],
    ["SystemTime", "now"],
    ["rand", "random"],
    ["env", "var"],
    ["env", "var_os"],
    ["env", "vars"],
    ["thread", "current"],
    ["RandomState", "new"],
];

/// Single-name source fns (unambiguous spellings).
const SOURCE_FNS: &[&str] = &["thread_rng", "from_entropy", "getrandom"];

/// Iteration methods whose order is nondeterministic on hashed
/// containers.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

/// `flower_obs::Recorder` methods that persist values into the trace.
const RECORDER_SINKS: &[&str] = &[
    "emit",
    "count",
    "gauge",
    "observe",
    "span_enter",
    "span_exit",
];

/// Run the typed rules over a parsed file.
///
/// `source_allowed` holds the lines on which a justified `lint:allow`
/// suppresses nondeterminism sources (the directive line and the line
/// below it, matching the suppression scope of the token rules).
pub fn check_file(
    ast: &crate::parse::Ast,
    idx: &SigIndex,
    source_allowed: &BTreeSet<u32>,
) -> Vec<FlowFinding> {
    let mut out = Vec::new();
    check_items(&ast.items, None, false, idx, source_allowed, &mut out);
    out
}

fn check_items(
    items: &[Item],
    self_ty: Option<&str>,
    in_test: bool,
    idx: &SigIndex,
    allowed: &BTreeSet<u32>,
    out: &mut Vec<FlowFinding>,
) {
    for item in items {
        match item {
            Item::Fn(f) => {
                if !(in_test || f.is_test) {
                    check_fn(f, self_ty, idx, allowed, out);
                }
            }
            Item::Impl {
                self_ty: ty,
                items,
                is_test,
            } => check_items(items, Some(ty), in_test || *is_test, idx, allowed, out),
            Item::Mod { items, is_test, .. } => {
                check_items(items, self_ty, in_test || *is_test, idx, allowed, out);
            }
            Item::Trait { items, .. } => check_items(items, self_ty, in_test, idx, allowed, out),
            Item::Struct(_) | Item::Enum { .. } | Item::Const(_) | Item::Other => {}
        }
    }
}

fn check_fn(
    f: &FnDef,
    self_ty: Option<&str>,
    idx: &SigIndex,
    allowed: &BTreeSet<u32>,
    out: &mut Vec<FlowFinding>,
) {
    let Some(body) = &f.body else {
        return;
    };
    let mut env = TypeEnv::new(idx, self_ty);
    env.bind_params(f);
    let mut checker = Checker {
        env,
        taint: vec![BTreeMap::new()],
        prov: vec![BTreeMap::new()],
        allowed,
        self_ty,
        in_test: false,
        out,
    };
    checker.walk_block(body);
}

/// Per-fn walker: mirrors lexical scoping for taint and provenance
/// alongside [`TypeEnv`]'s binding types.
struct Checker<'a, 'o> {
    env: TypeEnv<'a>,
    /// name → `Some(origin)` when tainted, `None` when explicitly
    /// clean (so shadowing an outer tainted name works).
    taint: Vec<BTreeMap<String, Option<String>>>,
    /// name → seed-provenance flag (false only for literal-derived
    /// bindings).
    prov: Vec<BTreeMap<String, bool>>,
    allowed: &'a BTreeSet<u32>,
    self_ty: Option<&'a str>,
    in_test: bool,
    out: &'o mut Vec<FlowFinding>,
}

impl Checker<'_, '_> {
    fn push_scope(&mut self) {
        self.env.push();
        self.taint.push(BTreeMap::new());
        self.prov.push(BTreeMap::new());
    }

    fn pop_scope(&mut self) {
        self.env.pop();
        self.taint.pop();
        self.prov.pop();
    }

    fn bind_taint(&mut self, name: &str, origin: Option<String>) {
        if let Some(scope) = self.taint.last_mut() {
            scope.insert(name.to_owned(), origin);
        }
    }

    fn bind_prov(&mut self, name: &str, ok: bool) {
        if let Some(scope) = self.prov.last_mut() {
            scope.insert(name.to_owned(), ok);
        }
    }

    fn taint_lookup(&self, name: &str) -> Option<String> {
        for scope in self.taint.iter().rev() {
            if let Some(entry) = scope.get(name) {
                return entry.clone();
            }
        }
        None
    }

    fn prov_lookup(&self, name: &str) -> bool {
        for scope in self.prov.iter().rev() {
            if let Some(ok) = scope.get(name) {
                return *ok;
            }
        }
        // Unknown names (params, constants, upvars) have provenance:
        // only demonstrably literal-derived bindings lack it.
        true
    }

    /// Mutate an existing binding's taint (assignment, not `let`).
    fn assign_taint(&mut self, name: &str, origin: Option<String>) {
        for scope in self.taint.iter_mut().rev() {
            if scope.contains_key(name) {
                scope.insert(name.to_owned(), origin);
                return;
            }
        }
        self.bind_taint(name, origin);
    }

    // ---- walking -----------------------------------------------------

    fn walk_block(&mut self, b: &Block) {
        self.push_scope();
        for stmt in &b.stmts {
            self.walk_stmt(stmt);
        }
        self.pop_scope();
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { names, init, .. } => {
                let mut origin = None;
                let mut prov = true;
                if let Some(e) = init {
                    self.visit(e);
                    origin = self.taint_of(e);
                    prov = self.prov_of(e);
                }
                self.env.process_let(stmt);
                for n in names {
                    self.bind_taint(n, origin.clone());
                    self.bind_prov(n, prov);
                }
            }
            Stmt::Expr(e) => self.visit(e),
            Stmt::Item(item) => check_items(
                std::slice::from_ref(item),
                self.self_ty,
                self.in_test,
                self.env.idx,
                self.allowed,
                self.out,
            ),
        }
    }

    /// Visit an expression: recurse into children, check sinks.
    fn visit(&mut self, e: &Expr) {
        match e {
            Expr::Binary { op, lhs, rhs, line } => {
                self.visit(lhs);
                self.visit(rhs);
                if op == "==" || op == "!=" {
                    self.check_float_eq(op, lhs, rhs, *line);
                }
            }
            Expr::Assign { lhs, rhs, line } => {
                self.visit(rhs);
                let origin = self.taint_of(rhs);
                match &**lhs {
                    Expr::Path { segs, .. } if segs.len() == 1 => {
                        self.assign_taint(&segs[0], origin);
                    }
                    Expr::Field { base, name, .. } => {
                        self.visit(base);
                        if let Some(o) = origin {
                            self.out.push(FlowFinding {
                                rule: "nondet-flow",
                                line: *line,
                                message: format!(
                                    "nondeterministic value ({o}) stored into field `.{name}` \
                                     — state fed from a nondet source breaks replay"
                                ),
                            });
                        }
                    }
                    other => self.visit(other),
                }
            }
            Expr::Call { callee, args, line } => {
                for a in args {
                    self.visit(a);
                }
                if let Expr::Path { segs, .. } = &**callee {
                    self.check_call_sinks(segs, args, *line);
                }
            }
            Expr::Method {
                recv,
                name,
                args,
                line,
                ..
            } => {
                self.visit(recv);
                for a in args {
                    self.visit(a);
                }
                self.check_method_sinks(recv, name, args, *line);
            }
            Expr::If { cond, then, alt } => {
                self.walk_cond_and_block(cond, then);
                if let Some(a) = alt {
                    self.visit(a);
                }
            }
            Expr::While { cond, body } => self.walk_cond_and_block(cond, body),
            Expr::Match { scrutinee, arms } => {
                self.visit(scrutinee);
                let origin = self.taint_of(scrutinee);
                for (names, body) in arms {
                    self.push_scope();
                    for n in names {
                        self.bind_taint(n, origin.clone());
                        self.bind_prov(n, true);
                    }
                    self.visit(body);
                    self.pop_scope();
                }
            }
            Expr::For { vars, iter, body } => {
                self.visit(iter);
                let mut origin = self.taint_of(iter);
                if origin.is_none() {
                    // `for (k, v) in map` over a hashed container.
                    if let TypeRef::Path { name, .. } = self.env.type_of(iter).deref() {
                        if (name == "HashMap" || name == "HashSet")
                            && !self.allowed.contains(&iter.line())
                        {
                            origin =
                                Some(format!("`{name}` iteration order (line {})", iter.line()));
                        }
                    }
                }
                self.push_scope();
                for v in vars {
                    self.bind_taint(v, origin.clone());
                    self.bind_prov(v, true);
                }
                for stmt in &body.stmts {
                    self.walk_stmt(stmt);
                }
                self.pop_scope();
            }
            Expr::Loop { body } => self.walk_block(body),
            Expr::Block(body) => self.walk_block(body),
            Expr::Closure { params, body, .. } => {
                self.push_scope();
                for (name, ty) in params {
                    self.env.bind(name, ty.clone().unwrap_or(TypeRef::Unknown));
                    self.bind_taint(name, None);
                    self.bind_prov(name, true);
                }
                self.visit(body);
                self.pop_scope();
            }
            Expr::Field { base, .. } => self.visit(base),
            Expr::Index { base, index, .. } => {
                self.visit(base);
                self.visit(index);
            }
            Expr::Unary { inner, .. } | Expr::Try { inner } => self.visit(inner),
            Expr::Cast { inner, .. } => self.visit(inner),
            Expr::Return { value, .. } => {
                if let Some(v) = value {
                    self.visit(v);
                }
            }
            Expr::StructLit { fields, rest, .. } => {
                for (_, v) in fields {
                    self.visit(v);
                }
                if let Some(r) = rest {
                    self.visit(r);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.visit(i);
                }
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.visit(a);
                }
            }
            Expr::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.visit(l);
                }
                if let Some(h) = hi {
                    self.visit(h);
                }
            }
            Expr::LetCond { value, .. } => self.visit(value),
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        }
    }

    /// `if let` / `while let` conditions bind their pattern names over
    /// the body with the matched value's taint.
    fn walk_cond_and_block(&mut self, cond: &Expr, body: &Block) {
        if let Expr::LetCond { names, value } = cond {
            self.visit(value);
            let origin = self.taint_of(value);
            self.push_scope();
            for n in names {
                self.bind_taint(n, origin.clone());
                self.bind_prov(n, true);
            }
            for stmt in &body.stmts {
                self.walk_stmt(stmt);
            }
            self.pop_scope();
        } else {
            self.visit(cond);
            self.walk_block(body);
        }
    }

    // ---- rules -------------------------------------------------------

    fn check_float_eq(&mut self, op: &str, lhs: &Expr, rhs: &Expr, line: u32) {
        let lt = self.env.type_of(lhs);
        let ty = if lt.is_float() {
            lt
        } else {
            let rt = self.env.type_of(rhs);
            if rt.is_float() {
                rt
            } else {
                return;
            }
        };
        self.out.push(FlowFinding {
            rule: "float-eq-typed",
            line,
            message: format!(
                "exact `{op}` on `{}` values: NaN-unsafe and rounding-brittle; use \
                 f64::total_cmp or flower_stats::float::{{approx_eq, near_zero}}",
                ty.deref().display()
            ),
        });
    }

    fn check_call_sinks(&mut self, segs: &[String], args: &[Expr], line: u32) {
        let is_seed =
            segs.len() >= 2 && segs[segs.len() - 2] == "SimRng" && segs[segs.len() - 1] == "seed";
        if !is_seed {
            return;
        }
        let Some(seed_arg) = args.first() else {
            return;
        };
        if let Some(origin) = self.taint_of(seed_arg) {
            self.out.push(FlowFinding {
                rule: "nondet-flow",
                line,
                message: format!(
                    "nondeterministic value ({origin}) flows into `SimRng::seed` — \
                     the stream is unreproducible"
                ),
            });
        }
        if !self.prov_of(seed_arg) {
            self.out.push(FlowFinding {
                rule: "rng-provenance",
                line,
                message: "`SimRng::seed` with a hard-coded literal seed: seeds must trace \
                          to a seed parameter, config field, or parent stream fork"
                    .to_owned(),
            });
        }
    }

    fn check_method_sinks(&mut self, recv: &Expr, name: &str, args: &[Expr], line: u32) {
        let recv_ty = self.env.type_of(recv);
        let recv_name = match recv_ty.deref() {
            TypeRef::Path { name, .. } => {
                if name == "Self" {
                    self.self_ty.unwrap_or("Self").to_owned()
                } else {
                    name.clone()
                }
            }
            _ => String::new(),
        };
        if name == "fork" && recv_name == "SimRng" {
            if let Some(arg) = args.first() {
                if let Some(origin) = self.taint_of(arg) {
                    self.out.push(FlowFinding {
                        rule: "nondet-flow",
                        line,
                        message: format!(
                            "nondeterministic value ({origin}) used as a `SimRng::fork` \
                             label — stream assignment becomes unreproducible"
                        ),
                    });
                }
            }
        }
        if recv_name == "Recorder" && RECORDER_SINKS.contains(&name) {
            for arg in args {
                if let Some(origin) = self.taint_of(arg) {
                    self.out.push(FlowFinding {
                        rule: "nondet-flow",
                        line,
                        message: format!(
                            "nondeterministic value ({origin}) flows into \
                             `Recorder::{name}` — traces diverge across runs"
                        ),
                    });
                    break;
                }
            }
        }
    }

    // ---- taint -------------------------------------------------------

    /// Is this expression a nondeterminism source? Returns the origin
    /// description.
    fn source_of(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Call { callee, line, .. } => {
                if self.allowed.contains(line) {
                    return None;
                }
                let Expr::Path { segs, .. } = &**callee else {
                    return None;
                };
                if segs.len() >= 2 {
                    let a = &segs[segs.len() - 2];
                    let b = &segs[segs.len() - 1];
                    if SOURCE_PATHS.iter().any(|[x, y]| x == a && y == b) {
                        return Some(format!("`{a}::{b}()` (line {line})"));
                    }
                    let qualified = format!("{a}::{b}");
                    if self.env.idx.tainted_fns.contains(&qualified) {
                        return Some(format!(
                            "call to nondet-tainted `{qualified}` (line {line})"
                        ));
                    }
                }
                let last = segs.last()?;
                if SOURCE_FNS.contains(&last.as_str()) {
                    return Some(format!("`{last}()` (line {line})"));
                }
                if segs.len() == 1 && self.env.idx.tainted_fns.contains(last) {
                    return Some(format!("call to nondet-tainted `{last}` (line {line})"));
                }
                None
            }
            Expr::Method {
                recv, name, line, ..
            } => {
                if self.allowed.contains(line) {
                    return None;
                }
                let recv_ty = self.env.type_of(recv);
                if let TypeRef::Path { name: tn, .. } = recv_ty.deref() {
                    if (tn == "HashMap" || tn == "HashSet")
                        && HASH_ITER_METHODS.contains(&name.as_str())
                    {
                        return Some(format!("`{tn}` iteration order (line {line})"));
                    }
                    let owner = if tn == "Self" {
                        self.self_ty.unwrap_or("Self")
                    } else {
                        tn
                    };
                    let qualified = format!("{owner}::{name}");
                    if self.env.idx.tainted_fns.contains(&qualified) {
                        return Some(format!(
                            "call to nondet-tainted `{qualified}` (line {line})"
                        ));
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Transitive taint of an expression: source, tainted binding, or
    /// any tainted operand.
    fn taint_of(&self, e: &Expr) -> Option<String> {
        if let Some(desc) = self.source_of(e) {
            return Some(desc);
        }
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => self.taint_lookup(&segs[0]),
            Expr::Binary { lhs, rhs, .. } => self.taint_of(lhs).or_else(|| self.taint_of(rhs)),
            Expr::Unary { inner, .. } | Expr::Try { inner } => self.taint_of(inner),
            Expr::Cast { inner, .. } => self.taint_of(inner),
            Expr::Field { base, .. } => self.taint_of(base),
            Expr::Index { base, .. } => self.taint_of(base),
            Expr::Method { recv, args, .. } => self
                .taint_of(recv)
                .or_else(|| args.iter().find_map(|a| self.taint_of(a))),
            Expr::Call { args, .. } => args.iter().find_map(|a| self.taint_of(a)),
            Expr::If { then, alt, .. } => self
                .block_tail_taint(then)
                .or_else(|| alt.as_deref().and_then(|a| self.taint_of(a))),
            Expr::Block(b) => self.block_tail_taint(b),
            Expr::Match { arms, .. } => arms.iter().find_map(|(_, body)| self.taint_of(body)),
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                items.iter().find_map(|i| self.taint_of(i))
            }
            Expr::StructLit { fields, rest, .. } => fields
                .iter()
                .find_map(|(_, v)| self.taint_of(v))
                .or_else(|| rest.as_deref().and_then(|r| self.taint_of(r))),
            Expr::Return { value, .. } => value.as_deref().and_then(|v| self.taint_of(v)),
            _ => None,
        }
    }

    fn block_tail_taint(&self, b: &Block) -> Option<String> {
        match b.stmts.last() {
            Some(Stmt::Expr(e)) => self.taint_of(e),
            _ => None,
        }
    }

    // ---- provenance --------------------------------------------------

    /// Does a seed expression trace to anything beyond bare literals?
    /// `false` only when the value is demonstrably literal-derived.
    fn prov_of(&self, e: &Expr) -> bool {
        match e {
            Expr::Lit { .. } => false,
            Expr::Path { segs, .. } if segs.len() == 1 => self.prov_lookup(&segs[0]),
            Expr::Binary { lhs, rhs, .. } => self.prov_of(lhs) || self.prov_of(rhs),
            Expr::Unary { inner, .. } | Expr::Try { inner } => self.prov_of(inner),
            Expr::Cast { inner, .. } => self.prov_of(inner),
            Expr::Method { recv, args, .. } => {
                self.prov_of(recv) || args.iter().any(|a| self.prov_of(a))
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                items.iter().any(|i| self.prov_of(i))
            }
            // Paths, fields, calls, macros, blocks: assume provenance —
            // only bindings we can prove literal-only are flagged.
            _ => true,
        }
    }
}

// ---- return-taint summary for the signature pass ---------------------

/// Summarise whether a fn's returned value is fed by a nondeterminism
/// source (`direct`) and which callee keys feed it (`callees`), for the
/// cross-fn taint fixed-point in [`crate::sig`].
///
/// Runs before the signature index exists, so detection is purely
/// syntactic: path-suffix sources and call-name collection, expanded
/// through local `let` bindings. `suppressed` lines (justified source
/// allows) do not seed taint.
pub fn return_taint_summary(body: &Block, suppressed: &BTreeSet<u32>) -> (bool, Vec<String>) {
    // Binding name → initialiser, flat across the whole body.
    let mut inits: BTreeMap<&str, &Expr> = BTreeMap::new();
    collect_lets(body, &mut inits);

    // Returned expressions: the body's tail plus every `return`.
    let mut returned: Vec<&Expr> = Vec::new();
    if let Some(Stmt::Expr(tail)) = body.stmts.last() {
        returned.push(tail);
    }
    for stmt in &body.stmts {
        collect_returns_stmt(stmt, &mut returned);
    }

    let mut direct = false;
    let mut callees: BTreeSet<String> = BTreeSet::new();
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    let mut work = returned;
    while let Some(e) = work.pop() {
        let mut refs: Vec<&str> = Vec::new();
        scan_expr(e, suppressed, &mut direct, &mut callees, &mut refs);
        for name in refs {
            if visited.insert(name) {
                if let Some(init) = inits.get(name) {
                    work.push(init);
                }
            }
        }
    }
    (direct, callees.into_iter().collect())
}

fn scan_expr<'a>(
    e: &'a Expr,
    suppressed: &BTreeSet<u32>,
    direct: &mut bool,
    callees: &mut BTreeSet<String>,
    refs: &mut Vec<&'a str>,
) {
    walk_expr(e, &mut |node| match node {
        Expr::Call { callee, line, .. } => {
            let Expr::Path { segs, .. } = &**callee else {
                return;
            };
            let Some(last) = segs.last() else {
                return;
            };
            let is_source = (segs.len() >= 2
                && SOURCE_PATHS
                    .iter()
                    .any(|[x, y]| *x == segs[segs.len() - 2] && *y == segs[segs.len() - 1]))
                || SOURCE_FNS.contains(&last.as_str());
            if is_source {
                if !suppressed.contains(line) {
                    *direct = true;
                }
                return;
            }
            if segs.len() >= 2 {
                callees.insert(format!("{}::{}", segs[segs.len() - 2], last));
            }
            callees.insert(last.clone());
        }
        Expr::Method { name, .. } => {
            callees.insert(name.clone());
        }
        Expr::Path { segs, .. } if segs.len() == 1 => {
            refs.push(segs[0].as_str());
        }
        _ => {}
    });
}

/// Record every `let` binding's initialiser, recursing into nested
/// blocks.
fn collect_lets<'a>(b: &'a Block, out: &mut BTreeMap<&'a str, &'a Expr>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { names, init, .. } => {
                if let Some(e) = init {
                    for n in names {
                        out.insert(n.as_str(), e);
                    }
                    walk_blocks(e, &mut |inner| collect_lets_shallow(inner, out));
                }
            }
            Stmt::Expr(e) => walk_blocks(e, &mut |inner| collect_lets_shallow(inner, out)),
            Stmt::Item(_) => {}
        }
    }
}

fn collect_lets_shallow<'a>(b: &'a Block, out: &mut BTreeMap<&'a str, &'a Expr>) {
    for stmt in &b.stmts {
        if let Stmt::Let {
            names,
            init: Some(e),
            ..
        } = stmt
        {
            for n in names {
                out.insert(n.as_str(), e);
            }
        }
    }
}

fn collect_returns_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<&'a Expr>) {
    let scan = |e: &'a Expr, out: &mut Vec<&'a Expr>| {
        walk_expr(e, &mut |node| {
            if let Expr::Return { value: Some(v), .. } = node {
                out.push(v);
            }
        });
    };
    match stmt {
        Stmt::Let { init: Some(e), .. } | Stmt::Expr(e) => scan(e, out),
        _ => {}
    }
}

/// Visit every expression node in `e`, including statements inside
/// nested blocks.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { inner, .. } | Expr::Try { inner } => walk_expr(inner, f),
        Expr::Cast { inner, .. } => walk_expr(inner, f),
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::If { cond, then, alt } => {
            walk_expr(cond, f);
            walk_block_exprs(then, f);
            if let Some(a) = alt {
                walk_expr(a, f);
            }
        }
        Expr::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for (_, body) in arms {
                walk_expr(body, f);
            }
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block_exprs(body, f);
        }
        Expr::While { cond, body } => {
            walk_expr(cond, f);
            walk_block_exprs(body, f);
        }
        Expr::Loop { body } => walk_block_exprs(body, f),
        Expr::Block(body) => walk_block_exprs(body, f),
        Expr::Return { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
        Expr::StructLit { fields, rest, .. } => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
            if let Some(r) = rest {
                walk_expr(r, f);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for i in items {
                walk_expr(i, f);
            }
        }
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Range { lo, hi } => {
            if let Some(l) = lo {
                walk_expr(l, f);
            }
            if let Some(h) = hi {
                walk_expr(h, f);
            }
        }
        Expr::LetCond { value, .. } => walk_expr(value, f),
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
    }
}

fn walk_block_exprs<'a>(b: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } | Stmt::Expr(e) => walk_expr(e, f),
            _ => {}
        }
    }
}

/// Visit every `Block` nested anywhere inside `e`, each exactly once.
/// `walk_expr` already descends into block statements, so pairing this
/// with a shallow per-block handler gives full coverage without
/// double-visiting.
fn walk_blocks<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Block)) {
    walk_expr(e, &mut |node| match node {
        Expr::If { then, .. } => f(then),
        Expr::For { body, .. }
        | Expr::While { body, .. }
        | Expr::Loop { body }
        | Expr::Block(body) => f(body),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;
    use crate::sig::{collect_file, merge};

    fn findings(src: &str) -> Vec<(String, String)> {
        let ast = parse_source(src);
        assert_eq!(ast.recovered, 0, "fixture must parse cleanly");
        let idx = merge(&[collect_file(&ast, &BTreeSet::new(), true)]);
        check_file(&ast, &idx, &BTreeSet::new())
            .into_iter()
            .map(|f| (f.rule.to_owned(), f.message))
            .collect()
    }

    fn rules(src: &str) -> Vec<String> {
        findings(src).into_iter().map(|(r, _)| r).collect()
    }

    #[test]
    fn typed_float_eq_on_two_bindings() {
        // The acceptance fixture: the lexical rule provably misses
        // this (no literal adjacent to `==`).
        let src = r#"
            fn other_f64() -> f64 { 1.5 }
            fn f() -> bool {
                let a: f64 = 3.0_f64.sqrt();
                let b = other_f64();
                a == b
            }
        "#;
        assert_eq!(rules(src), vec!["float-eq-typed"]);
    }

    #[test]
    fn integer_eq_is_clean() {
        let src = "fn f(a: u64, b: u64) -> bool { a == b }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn taint_flows_through_bindings_into_seed() {
        let src = r#"
            fn f() {
                let t = Instant::now();
                let stamp = t.elapsed().as_nanos() as u64;
                let rng = SimRng::seed(stamp);
            }
        "#;
        let fs = findings(src);
        assert!(fs.iter().any(|(r, m)| r == "nondet-flow"
            && m.contains("Instant::now")
            && m.contains("SimRng::seed")));
    }

    #[test]
    fn seed_from_parameter_is_clean() {
        let src = "fn f(seed: u64) { let rng = SimRng::seed(seed ^ 0x9E3779B97F4A7C15); }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn literal_seed_violates_provenance() {
        let src = "fn f() { let rng = SimRng::seed(42); }";
        assert_eq!(rules(src), vec!["rng-provenance"]);
    }

    #[test]
    fn literal_seed_through_binding_violates_provenance() {
        let src = "fn f() { let s = 7 ^ 13; let rng = SimRng::seed(s); }";
        assert_eq!(rules(src), vec!["rng-provenance"]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let rng = SimRng::seed(42); }
            }
        "#;
        assert!(rules(src).is_empty());
    }

    #[test]
    fn taint_into_recorder_is_flagged() {
        let src = r#"
            fn f(rec: &Recorder) {
                let elapsed = Instant::now();
                rec.gauge("latency", elapsed.as_nanos() as u64);
            }
        "#;
        let fs = findings(src);
        assert!(fs
            .iter()
            .any(|(r, m)| r == "nondet-flow" && m.contains("Recorder::gauge")));
    }

    #[test]
    fn field_store_of_taint_is_flagged() {
        let src = r#"
            fn f(state: &mut State) {
                let id = thread::current();
                state.owner = id;
            }
        "#;
        assert_eq!(rules(src), vec!["nondet-flow"]);
    }

    #[test]
    fn shadowing_clears_taint() {
        // Rebinding `t` to a clean value severs the flow; the recorder
        // sink must not report the earlier, dead source.
        let src = r#"
            fn f(rec: &Recorder) {
                let t = Instant::now();
                let t = 5u64;
                rec.emit(t);
            }
        "#;
        assert!(rules(src).is_empty());
    }

    #[test]
    fn cross_fn_taint_via_index() {
        let src = r#"
            fn now_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }
            fn g() {
                let stamp = now_ms();
                let rng = SimRng::seed(stamp);
            }
        "#;
        let fs = findings(src);
        assert!(fs
            .iter()
            .any(|(r, m)| r == "nondet-flow" && m.contains("now_ms")));
    }

    #[test]
    fn hash_iteration_taints_loop_vars() {
        let src = r#"
            fn f(m: HashMap<u64, u64>, rec: &Recorder) {
                for k in m.keys() {
                    rec.count("seen", 1);
                    let rng = SimRng::seed(*k);
                }
            }
        "#;
        let fs = findings(src);
        assert!(fs
            .iter()
            .any(|(r, m)| r == "nondet-flow" && m.contains("iteration order")));
    }

    #[test]
    fn return_summary_detects_direct_and_callees() {
        let ast = parse_source(
            "fn f() -> u64 { let t = Instant::now(); t.elapsed().as_millis() as u64 }",
        );
        let crate::parse::Item::Fn(f) = &ast.items[0] else {
            panic!()
        };
        let (direct, callees) = return_taint_summary(f.body.as_ref().unwrap(), &BTreeSet::new());
        assert!(direct);
        assert!(callees.contains(&"elapsed".to_owned()));
    }

    #[test]
    fn suppressed_source_does_not_seed_taint() {
        let src = r#"
            fn f() {
                let t = Instant::now();
                let rng = SimRng::seed(t.elapsed().as_nanos() as u64);
            }
        "#;
        let ast = parse_source(src);
        let idx = merge(&[collect_file(&ast, &BTreeSet::new(), true)]);
        // Allow covering the source line: no taint, no findings.
        let allowed: BTreeSet<u32> = [3u32].into_iter().collect();
        let fs = check_file(&ast, &idx, &allowed);
        assert!(fs.is_empty(), "unexpected findings: {fs:?}");
    }
}
